"""Ablation benches for the design choices DESIGN.md section 5 calls out.

1. Linear vs logarithmic frontier projection (Eq 5 vs Eq 6).
2. Transistor budget with vs without TDP capping (Fig 3d power zones).
3. Scheduler with vs without fusion (heterogeneity) and with vs without
   parallel scratchpad banking (partitioning).
4. Synthetic vs curated-only datasheet population for the Fig 3b/3c fits.
"""

import pytest
from conftest import emit

from repro.accel.design import DesignPoint
from repro.accel.power import evaluate_design
from repro.cmos.transistors import fit_transistor_count
from repro.datasheets.curated import curated_database
from repro.datasheets.reference import reference_database
from repro.reporting.tables import render_rows
from repro.wall import wall_report_all_domains
from repro.workloads import s3d


def test_ablation_projection_models(benchmark, paper_model):
    reports = benchmark(wall_report_all_domains, paper_model)
    rows = [
        {
            "domain": r.domain,
            "metric": r.metric,
            "log_model": r.log_fit.describe(),
            "linear_model": r.linear_fit.describe(),
            "spread_x": r.projected_linear / r.projected_log,
        }
        for r in reports
    ]
    emit("Ablation: Eq 5 (linear) vs Eq 6 (log) projections", render_rows(rows))
    # The models bracket a real uncertainty band: linear >= log everywhere.
    for r in reports:
        assert r.projected_linear >= r.projected_log * 0.999


def test_ablation_tdp_capping(benchmark, paper_model):
    def both():
        capped = paper_model.evaluate(5, 1000, area_mm2=800, tdp_w=800)
        uncapped = paper_model.evaluate(5, 1000, area_mm2=800)
        return capped, uncapped

    capped, uncapped = benchmark(both)
    emit(
        "Ablation: TDP capping on an 800mm^2 5nm chip",
        f"uncapped active fraction {uncapped.active_fraction:.2f}, "
        f"capped {capped.active_fraction:.2f} -> throughput drops "
        f"{1 - capped.throughput / uncapped.throughput:.0%} "
        "(paper: ~70% under an 800W envelope)",
    )
    assert 0.5 <= 1 - capped.throughput / uncapped.throughput <= 0.85


@pytest.mark.parametrize(
    "label,design",
    [
        ("baseline (no concepts)", DesignPoint(5, 1, 1, heterogeneity=False)),
        ("partitioning only", DesignPoint(5, 256, 1, heterogeneity=False)),
        ("fusion only", DesignPoint(5, 1, 1, heterogeneity=True)),
        ("both", DesignPoint(5, 256, 1, heterogeneity=True)),
    ],
)
def test_ablation_scheduler_concepts(benchmark, label, design):
    kernel = s3d.build()
    report = benchmark.pedantic(
        evaluate_design, args=(kernel, design), rounds=1, iterations=1
    )
    emit(
        f"Ablation: scheduler [{label}]",
        f"{report.cycles} cycles, {report.runtime_s * 1e9:.1f} ns, "
        f"{report.power_w:.3f} W",
    )
    assert report.cycles > 0


def test_ablation_banked_vs_pooled_scratchpad(benchmark):
    """Memory partitioning realism: hashed single-port banks vs an
    idealised conflict-free multi-port scratchpad."""
    from repro.accel.resources import ResourceLibrary
    from repro.accel.scheduler import schedule

    kernel = s3d.build()
    lib = ResourceLibrary()

    def run():
        rows = []
        for p in (4, 16, 64, 256):
            pooled = schedule(kernel.dfg, partition=p, library=lib).cycles
            banked = schedule(
                kernel.dfg, partition=p, library=lib, banked_memory=True
            ).cycles
            rows.append(
                {"partition": p, "pooled_cycles": pooled,
                 "banked_cycles": banked,
                 "conflict_overhead": f"{banked / pooled - 1:+.0%}"}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: banked vs pooled scratchpad (S3D)", render_rows(rows))
    total_pooled = sum(r["pooled_cycles"] for r in rows)
    total_banked = sum(r["banked_cycles"] for r in rows)
    assert total_banked >= total_pooled


def test_ablation_population_choice(benchmark):
    def fits():
        return (
            fit_transistor_count(curated_database()),
            fit_transistor_count(reference_database()),
        )

    curated_fit, full_fit = benchmark(fits)
    emit(
        "Ablation: Fig 3b fit population",
        f"curated-only: {curated_fit.describe()}\n"
        f"full population: {full_fit.describe()}",
    )
    # The fitted exponent is robust to the population choice within ~20%.
    assert curated_fit.exponent == pytest.approx(full_fit.exponent, rel=0.2)
