"""Extension benches: algorithmic CSR, the mining core, streaming mode.

These go beyond the paper's evaluation section, exercising the discussion
points its Section IV draws: the algorithm layer of the specialization
stack (Winograd), the confined SHA-256 computation behind the Bitcoin
study, and pipelined execution (Table I's systolic data reuse).
"""

from conftest import emit

from repro.accel.design import DesignPoint
from repro.accel.power import evaluate_design
from repro.accel.streaming import evaluate_streaming
from repro.reporting.tables import render_rows
from repro.workloads import conv, sha256


def test_algorithmic_csr_winograd(benchmark):
    """Algorithm-layer CSR: same physical budget, better algorithm."""

    def run():
        design = DesignPoint(node_nm=28, partition=16)
        direct = evaluate_design(conv.build_direct(), design)
        winograd = evaluate_design(conv.build_winograd(), design)
        return direct, winograd

    direct, winograd = benchmark.pedantic(run, rounds=1, iterations=1)
    mul_ratio = conv.multiply_count(conv.build_direct()) / conv.multiply_count(
        conv.build_winograd()
    )
    emit(
        "Algorithmic CSR: direct vs Winograd 3x3 convolution",
        render_rows([
            {
                "algorithm": "direct",
                "multiplies": conv.multiply_count(conv.build_direct()),
                "runtime_ns": direct.runtime_s * 1e9,
                "energy_nj": direct.dynamic_energy_nj,
            },
            {
                "algorithm": "winograd F(2x2,3x3)",
                "multiplies": conv.multiply_count(conv.build_winograd()),
                "runtime_ns": winograd.runtime_s * 1e9,
                "energy_nj": winograd.dynamic_energy_nj,
            },
        ])
        + f"\nmultiply reduction {mul_ratio:.2f}x (theory: 2.25x) — a pure "
        "algorithm-layer CSR gain at a fixed physical budget",
    )
    assert winograd.dynamic_energy_nj < direct.dynamic_energy_nj


def test_confined_computation_sha256(benchmark):
    """The Bitcoin core is ALU-only: partitioning is the *only* lever."""

    def run():
        kernel = sha256.build(rounds=32)
        rows = []
        for p in (1, 4, 16, 64, 256):
            report = evaluate_design(
                kernel, DesignPoint(node_nm=16, partition=p)
            )
            rows.append(
                {"partition": p, "cycles": report.cycles,
                 "runtime_ns": report.runtime_s * 1e9}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Confined computation: SHA-256 compression partitioning sweep",
        render_rows(rows)
        + "\nlong dependence chains cap the benefit: the hash's serial "
        "rounds bound parallel speedup, matching the paper's confined-"
        "domain stagnation",
    )
    # Speedup saturates well below the partition factor.
    first, last = rows[0]["cycles"], rows[-1]["cycles"]
    assert first / last < 64


def test_table1_tpu_case_study(benchmark):
    """Table I quantified: every concept applied at a fixed 28nm budget."""
    from repro.studies.tpu import CONCEPT_MAPPING, tpu_case_study

    case = benchmark.pedantic(tpu_case_study, rounds=1, iterations=1)
    emit(
        "Table I worked example: DNN inference layer at 28nm",
        render_rows([
            {"design": "CPU baseline",
             "ops_per_j_rel": 1.0,
             "note": f"{case.cpu.overhead_share:.0%} of energy is overhead"},
            {"design": "plain spatial mapping",
             "ops_per_j_rel": case.generic.energy_efficiency
             / case.cpu.energy_efficiency,
             "note": "no concepts applied"},
            {"design": "all Table I concepts",
             "ops_per_j_rel": case.specialized.energy_efficiency
             / case.cpu.energy_efficiency,
             "note": "partition+simplify+fuse"},
            {"design": "  + pipelined (systolic)",
             "ops_per_j_rel": case.efficiency_gain_vs_cpu,
             "note": "paper's TPU: ~80x vs CPU"},
        ])
        + "\nconcept mapping: "
        + "; ".join(sorted(CONCEPT_MAPPING)),
    )
    assert case.efficiency_gain_vs_cpu > 15


def test_surmounting_the_wall_with_mcm(benchmark, paper_model):
    """The conclusion's question, quantified: chiplets move the performance
    wall but not the efficiency wall."""
    from repro.wall.surmount import mcm_walls_all_domains

    walls = benchmark.pedantic(
        mcm_walls_all_domains, args=(4, paper_model), rounds=1, iterations=1
    )
    emit(
        "Surmounting the wall: 4-chiplet MCM per domain",
        render_rows([
            {
                "domain": w.domain,
                "monolithic_wall": f"{w.monolithic.projected_linear:.4g}",
                "mcm_wall": f"{w.mcm_projected_linear:.4g}",
                "extra_headroom": f"{w.extra_headroom:.2f}x",
                "efficiency": f"x{w.efficiency_factor:.2f}",
            }
            for w in walls
        ]),
    )
    for wall in walls:
        assert not wall.moves_efficiency_wall


def test_dennard_gap_and_wall_cost(benchmark):
    """Why the wall exists: the Dennard gap; what it costs: beyond-5nm."""
    from repro.cmos.history import cost_of_the_wall, dennard_gap_series

    def run():
        return dennard_gap_series(), cost_of_the_wall(beyond_node=3.0)

    series, cost = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Dennard gap (vs ideal scaling from 45nm)",
        render_rows([
            {"node": f"{node:g}nm",
             "freq_shortfall_x": gap.frequency_shortfall,
             "power_density_excess_x": gap.power_density_excess}
            for node, gap in series.items()
        ]),
    )
    emit(
        "Counterfactual: one more node past 5nm (400mm^2, 300W)",
        f"transistor potential +{(cost['uncapped_throughput_gain'] - 1):.0%}, "
        f"but TDP-capped throughput x{cost['capped_throughput_gain']:.2f} "
        f"(active fraction {cost['active_fraction_at_wall']:.2f} -> "
        f"{cost['active_fraction_beyond']:.2f}) — the wall is a power wall "
        "as much as a lithography wall",
    )
    assert cost["uncapped_throughput_gain"] > 1.0


def test_streaming_mode(benchmark):
    """Pipelined miners: throughput set by the II, not the latency."""

    def run():
        kernel = sha256.build(rounds=32)
        return evaluate_streaming(kernel, DesignPoint(node_nm=16, partition=64))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Streaming SHA-256 accelerator",
        f"II {report.initiation_interval} cycles vs fill latency "
        f"{report.fill_latency_cycles}; pipelining speedup "
        f"{report.speedup_over_latency_mode:.1f}x; bottleneck "
        f"{report.bottleneck.value}",
    )
    assert report.speedup_over_latency_mode > 1.0
