"""E-F1: Fig 1 — evolution of Bitcoin mining ASIC chips.

Regenerates the per-area performance / transistor-performance / CSR series,
checking the paper's headline split (performance ~510x, transistor
performance ~307x, CSR flat over the last generations).
"""

from conftest import emit

from repro.reporting.figures import fig1_bitcoin_evolution
from repro.reporting.tables import render_rows


def test_fig1_bitcoin_evolution(benchmark, paper_model):
    rows = benchmark(fig1_bitcoin_evolution, paper_model)
    emit(
        "Fig 1: Bitcoin ASIC evolution (vs 130nm ASIC)",
        render_rows(rows),
    )
    best = max(rows, key=lambda r: r["performance"])
    emit(
        "Fig 1 headline",
        f"performance {best['performance']:.0f}x, transistor performance "
        f"{best['transistor_performance']:.0f}x, CSR {best['csr']:.2f}x "
        "(paper: 510x / 307x / ~1.7x)",
    )
    assert best["performance"] > 100
    assert best["transistor_performance"] > 10
    assert best["csr"] < best["performance"] / 10
