"""E-F3a..E-F3d: regenerate the CMOS potential model figures (Fig 3).

Covers: device scaling curves (3a), the density regression fitted over the
full chip population (3b), the per-era TDP budget fits (3c), and the
physical chip-gains grid (3d).
"""

from conftest import emit

from repro.cmos.model import CmosPotentialModel
from repro.datasheets.reference import reference_database
from repro.reporting.figures import (
    fig3a_device_scaling,
    fig3b_transistor_density,
    fig3c_tdp_budget,
    fig3d_chip_gains,
)
from repro.reporting.tables import render_rows


def test_fig3a_device_scaling(benchmark):
    series = benchmark(fig3a_device_scaling)
    rows = [
        {"node": f"{node:g}nm", **{name: panel[node] for name, panel in series.items()}}
        for node in sorted(next(iter(series.values())), reverse=True)
    ]
    emit("Fig 3a: device scaling (relative to 45nm)", render_rows(rows))


def test_fig3b_density_fit_from_population(benchmark):
    def refit():
        return CmosPotentialModel.from_database(reference_database())

    model = benchmark(refit)
    data = fig3b_transistor_density(model)
    emit(
        "Fig 3b: transistor count vs density factor",
        data["equation"]
        + "\n"
        + render_rows(
            [{"D": d, "transistors_1e9": tc / 1e9} for d, tc in data["curve"].items()]
        ),
    )


def test_fig3c_tdp_budget(benchmark, paper_model):
    data = benchmark(fig3c_tdp_budget, paper_model)
    emit("Fig 3c: per-era TDP transistor-budget fits", "\n".join(data["fits"]))


def test_fig3d_chip_gains(benchmark, paper_model):
    grid = benchmark(fig3d_chip_gains, paper_model)
    rows = []
    ordered = sorted(
        grid.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2] or 0.0)
    )
    for (node, die, tdp), gains in ordered:
        if die in (25.0, 800.0) and tdp in (None, 800.0):
            rows.append(
                {
                    "node": f"{node:g}nm",
                    "die_mm2": die,
                    "tdp": "none" if tdp is None else f"{tdp:g}W",
                    "throughput_x": gains["throughput"],
                    "efficiency_x": gains["energy_efficiency"],
                }
            )
    emit("Fig 3d: physical chip gains (selected corners)", render_rows(rows))
