"""E-F4: Fig 4 — ASIC video decoders (performance, budget, efficiency)."""

from conftest import emit

from repro.reporting.figures import fig4_video_decoders
from repro.reporting.tables import render_rows


def test_fig4_video_decoders(benchmark, paper_model):
    data = benchmark(fig4_video_decoders, paper_model)
    emit("Fig 4a: decoding throughput and CSR", render_rows(data["performance"]))
    emit("Fig 4b: transistor budget and clock", render_rows(data["budget"]))
    emit("Fig 4c: energy efficiency and CSR", render_rows(data["efficiency"]))

    max_perf = max(r["gain"] for r in data["performance"])
    max_eff = max(r["gain"] for r in data["efficiency"])
    best = data["performance"][-1]
    emit(
        "Fig 4 headline",
        f"throughput up {max_perf:.0f}x (paper ~64x); efficiency up "
        f"{max_eff:.0f}x (paper ~34x); best performer CSR {best['csr']:.2f} "
        "(paper: < 1)",
    )
    assert best["csr"] < 1.0
