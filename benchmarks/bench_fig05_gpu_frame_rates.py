"""E-F5: Fig 5 — GPU frame rates over five applications (2011-2017)."""

from conftest import emit

from repro.reporting.figures import fig5_gpu_frame_rates
from repro.reporting.tables import render_rows


def test_fig5_gpu_frame_rates(benchmark, paper_model):
    data = benchmark(fig5_gpu_frame_rates, paper_model)
    summary_rows = []
    for app, series in data.items():
        perf = series["performance"]
        eff = series["efficiency"]
        summary_rows.append(
            {
                "application": app,
                "gpus": len(perf),
                "max_fps_gain_x": max(r["gain"] for r in perf),
                "final_perf_csr_x": perf[-1]["csr"],
                "max_eff_gain_x": max(r["gain"] for r in eff),
                "final_eff_csr_x": eff[-1]["csr"],
            }
        )
    emit(
        "Fig 5: per-application gains (paper: 4-6x fps, 4.5-7.5x "
        "frames/J; CSR ~0.95-1.47)",
        render_rows(summary_rows),
    )
    for row in summary_rows:
        assert 3.0 <= row["max_fps_gain_x"] <= 8.0
        assert 0.7 <= row["final_perf_csr_x"] <= 1.7
