"""E-F67: Figs 6-7 — GPU architecture + CMOS scaling (Eqs 3-4 relations)."""

from conftest import emit

from repro.reporting.figures import fig6_7_architecture_scaling
from repro.reporting.tables import render_rows


def test_fig6_7_architecture_scaling(benchmark, paper_model):
    rows = benchmark(fig6_7_architecture_scaling, paper_model)
    ordered = sorted(rows, key=lambda r: (-r["node_nm"], r["architecture"]))
    emit(
        "Figs 6-7: per-architecture gains vs Tesla and CSR "
        "(paper: 13-16x absolute, CSR 1.0-1.6x)",
        render_rows(ordered),
    )
    by_arch = {r["architecture"]: r for r in rows}
    # First-on-node dip and Pascal~Tesla parity, as in the paper.
    assert by_arch["Fermi"]["csr"] < by_arch["Tesla 2"]["csr"]
    assert abs(by_arch["Pascal"]["csr"] - by_arch["Tesla"]["csr"]) < 0.3
    assert by_arch["Pascal"]["gain_vs_tesla"] > 5
