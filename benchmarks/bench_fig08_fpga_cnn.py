"""E-F8: Fig 8 — FPGA implementations of AlexNet and VGG-16."""

from conftest import emit

from repro.reporting.figures import fig8_fpga_cnn
from repro.reporting.tables import render_rows


def test_fig8_fpga_cnn(benchmark, paper_model):
    data = benchmark(fig8_fpga_cnn, paper_model)
    for cnn, series in data.items():
        emit(f"Fig 8a [{cnn}]: GOPS and CSR", render_rows(series["performance"]))
        emit(f"Fig 8b [{cnn}]: utilisation/clock", render_rows(series["utilization"]))
        emit(f"Fig 8c [{cnn}]: GOPS/J and CSR", render_rows(series["efficiency"]))

    alexnet_gain = max(r["gain"] for r in data["alexnet"]["performance"])
    vgg_gain = max(r["gain"] for r in data["vgg16"]["performance"])
    alexnet_csr = max(r["csr"] for r in data["alexnet"]["performance"])
    emit(
        "Fig 8 headline",
        f"AlexNet {alexnet_gain:.0f}x (paper ~24x), VGG-16 {vgg_gain:.0f}x "
        f"(paper ~9x), CSR up to {alexnet_csr:.1f}x (paper: up to ~6x)",
    )
    assert alexnet_gain > vgg_gain
    assert alexnet_csr > 2.0
