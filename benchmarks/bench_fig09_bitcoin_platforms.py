"""E-F9: Fig 9 — Bitcoin mining across CPU/GPU/FPGA/ASIC platforms."""

from conftest import emit

from repro.reporting.figures import fig9_bitcoin_platforms
from repro.reporting.tables import render_rows


def test_fig9_bitcoin_platforms(benchmark, paper_model):
    data = benchmark(fig9_bitcoin_platforms, paper_model)
    emit("Fig 9a: GHash/s/mm^2 and CSR vs CPU", render_rows(data["performance"]))
    emit("Fig 9b: GHash/J and CSR vs CPU", render_rows(data["efficiency"]))

    max_gain = max(r["gain"] for r in data["performance"])
    max_csr = max(r["csr"] for r in data["performance"])
    emit(
        "Fig 9 headline",
        f"ASIC/CPU per-area gain {max_gain:,.0f}x (paper ~600,000x); "
        f"max CSR {max_csr:,.0f}x — the platform jump dominates CSR, the "
        "rest is physical",
    )
    assert max_gain > 1e5
    assert max_csr < max_gain
