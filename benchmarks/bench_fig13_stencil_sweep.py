"""E-F13: Fig 13 — 3D stencil power/timing/CMOS design-space sweep.

Sweeps the full Table III partitioning range with a representative set of
simplification degrees and nodes, and reports the runtime-power Pareto
frontier and the energy-efficiency optimum (paper: 5nm, high partitioning,
high-but-not-extreme simplification).

The sweep runs through :class:`repro.accel.engine.SweepEngine` with a
fresh persistent cache: the benchmarked run is cold, then a warm rerun
checks the acceptance property that cached schedules make the same sweep
measurably cheaper (hit rate > 0, zero scheduler time).  A second cold
run through the per-point scalar oracle (``vectorize=False``) pins the
zero-drift contract — the batched numpy path must reproduce the scalar
reports bit-for-bit — and reports the cold-sweep speedup.
"""

from time import perf_counter

from conftest import emit

from repro.accel.engine import SweepEngine
from repro.accel.sweep import default_design_grid, table3_partitions
from repro.reporting.tables import render_rows
from repro.workloads import s3d

NODES = (45.0, 32.0, 22.0, 14.0, 10.0, 7.0, 5.0)
SIMPLIFICATIONS = (1, 3, 5, 7, 9, 11, 13)


def test_fig13_stencil_sweep(benchmark, tmp_path):
    kernel = s3d.build()
    cache_dir = tmp_path / "dse-cache"
    grid = default_design_grid(
        nodes=NODES,
        partitions=table3_partitions(4096),
        simplifications=SIMPLIFICATIONS,
    )

    def run_cold():
        return SweepEngine(jobs=1, cache_dir=cache_dir).sweep(kernel, grid)

    result = benchmark.pedantic(run_cold, rounds=1, iterations=1)

    # Warm rerun: same engine config, populated cache. The schedules all
    # come from disk, so scheduler time collapses and wall time drops.
    warm_start = perf_counter()
    warm = SweepEngine(jobs=1, cache_dir=cache_dir).sweep(kernel, grid)
    warm_wall = perf_counter() - warm_start
    assert warm.reports == result.reports
    assert warm.stats.cache_hits > 0
    assert warm.stats.hit_rate == 1.0
    assert warm.stats.schedule_s < result.stats.schedule_s
    emit(
        "Fig 13 engine stats",
        f"cold: {result.stats.describe()}\n"
        f"warm: {warm.stats.describe()}\n"
        f"warm-cache speedup: {result.stats.elapsed_s / warm_wall:.1f}x",
    )

    # Scalar-oracle cold run: the vectorized path (the engine default,
    # benchmarked above) must be bit-identical and measurably faster.
    scalar_start = perf_counter()
    scalar = SweepEngine(
        jobs=1, cache_dir=tmp_path / "dse-cache-scalar", vectorize=False
    ).sweep(kernel, grid)
    scalar_wall = perf_counter() - scalar_start
    assert scalar.reports == result.reports  # zero drift vs the oracle
    speedup = scalar.stats.elapsed_s / result.stats.elapsed_s
    emit(
        "Fig 13 vectorized vs scalar oracle",
        f"scalar cold: {scalar.stats.describe()}\n"
        f"cold-sweep speedup (scalar wall {scalar_wall:.3f}s): {speedup:.1f}x",
    )
    assert speedup > 2.0

    frontier = result.pareto_frontier()
    emit(
        f"Fig 13: {len(result)} design points; runtime-power frontier",
        render_rows([
            {
                "design": r.design.describe(),
                "runtime_ns": r.runtime_s * 1e9,
                "power_w": r.power_w,
            }
            for r in frontier
        ]),
    )
    best = result.best_energy_efficiency()
    emit(
        "Fig 13 optimum",
        f"best energy efficiency at {best.design.describe()} "
        "(paper: 5nm, highest non-tapering partitioning, highest "
        "non-diminishing simplification)",
    )
    assert best.design.node_nm == 5.0
    assert best.design.simplification >= 5

    # CMOS advancement reduces power at a fixed design point.
    by_key = {
        (r.design.node_nm, r.design.partition, r.design.simplification): r
        for r in result
    }
    assert by_key[(5.0, 64, 1)].power_w < by_key[(45.0, 64, 1)].power_w
    # Partitioning improves runtime until the parallelism plateau.
    assert by_key[(45.0, 64, 1)].runtime_s < by_key[(45.0, 1, 1)].runtime_s
    assert (
        by_key[(45.0, 4096, 1)].runtime_s
        == by_key[(45.0, 2048, 1)].runtime_s
    )
