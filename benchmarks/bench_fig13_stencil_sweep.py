"""E-F13: Fig 13 — 3D stencil power/timing/CMOS design-space sweep.

Sweeps the full Table III partitioning range with a representative set of
simplification degrees and nodes, and reports the runtime-power Pareto
frontier and the energy-efficiency optimum (paper: 5nm, high partitioning,
high-but-not-extreme simplification).
"""

from conftest import emit

from repro.accel.sweep import default_design_grid, sweep, table3_partitions
from repro.reporting.figures import fig13_stencil_sweep
from repro.reporting.tables import render_rows
from repro.workloads import s3d

NODES = (45.0, 32.0, 22.0, 14.0, 10.0, 7.0, 5.0)
SIMPLIFICATIONS = (1, 3, 5, 7, 9, 11, 13)


def test_fig13_stencil_sweep(benchmark):
    kernel = s3d.build()

    def run():
        grid = default_design_grid(
            nodes=NODES,
            partitions=table3_partitions(4096),
            simplifications=SIMPLIFICATIONS,
        )
        return sweep(kernel, grid)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    frontier = result.pareto_frontier()
    emit(
        f"Fig 13: {len(result)} design points; runtime-power frontier",
        render_rows([
            {
                "design": r.design.describe(),
                "runtime_ns": r.runtime_s * 1e9,
                "power_w": r.power_w,
            }
            for r in frontier
        ]),
    )
    best = result.best_energy_efficiency()
    emit(
        "Fig 13 optimum",
        f"best energy efficiency at {best.design.describe()} "
        "(paper: 5nm, highest non-tapering partitioning, highest "
        "non-diminishing simplification)",
    )
    assert best.design.node_nm == 5.0
    assert best.design.simplification >= 5

    # CMOS advancement reduces power at a fixed design point.
    by_key = {
        (r.design.node_nm, r.design.partition, r.design.simplification): r
        for r in result
    }
    assert by_key[(5.0, 64, 1)].power_w < by_key[(45.0, 64, 1)].power_w
    # Partitioning improves runtime until the parallelism plateau.
    assert by_key[(45.0, 64, 1)].runtime_s < by_key[(45.0, 1, 1)].runtime_s
    assert (
        by_key[(45.0, 4096, 1)].runtime_s
        == by_key[(45.0, 2048, 1)].runtime_s
    )
