"""E-F14: Fig 14 — specialization and CMOS accelerator gains, all kernels.

Attributes each Table IV kernel's best-design gains (throughput and energy
efficiency) to CMOS saving / heterogeneity / simplification / partitioning.
Paper shapes asserted: partitioning dominates performance on average, CMOS
saving dominates energy efficiency, and CSR is low for both.
"""

import math
import os

import pytest

from conftest import emit

from repro.accel.engine import SweepEngine
from repro.reporting.figures import fig14_gain_attribution
from repro.reporting.tables import render_rows

# Representative Table III sub-grid (full grid works; this keeps the bench
# under a minute for all 16 kernels x 2 metrics).
PARTITIONS = (1, 4, 16, 64, 256, 1024, 4096)
SIMPLIFICATIONS = (1, 3, 5, 7, 9, 11, 13)

#: Kernels fan out across worker processes; attribution values are
#: identical to the serial loop (tested in tests/accel/test_engine.py).
JOBS = min(4, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    """One engine for both metrics: 14b reuses every schedule 14a cached."""
    return SweepEngine(jobs=JOBS, cache_dir=tmp_path_factory.mktemp("dse-cache"))


def _rows(metric, engine=None):
    return fig14_gain_attribution(
        metric=metric,
        partitions=PARTITIONS,
        simplifications=SIMPLIFICATIONS,
        engine=engine,
    )


def _render(rows):
    flat = []
    for row in rows:
        flat.append(
            {
                "kernel": row["workload"],
                "gain_x": row["total_gain"],
                "csr_x": row["csr"],
                **{k: f"{v:.0f}%" for k, v in row["shares"].items()},
            }
        )
    return render_rows(flat)


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_fig14a_performance(benchmark, engine):
    rows = benchmark.pedantic(
        _rows, args=("throughput", engine), rounds=1, iterations=1
    )
    emit("Fig 14a: performance gain attribution", _render(rows))
    emit("Fig 14a engine stats", engine.last_stats.describe())
    avg_partition_share = _geomean(
        [max(r["shares"]["partitioning"], 1.0) for r in rows]
    )
    emit(
        "Fig 14a headline",
        f"geomean partitioning share {avg_partition_share:.0f}% "
        "(paper: partitioning is the primary performance source)",
    )
    assert avg_partition_share > 40
    # CSR is low: orders below the total gain for every kernel.
    for row in rows:
        assert row["csr"] < row["total_gain"] / 3, row["workload"]


def test_fig14b_energy_efficiency(benchmark, engine):
    rows = benchmark.pedantic(
        _rows, args=("energy_efficiency", engine), rounds=1, iterations=1
    )
    emit("Fig 14b: energy-efficiency gain attribution", _render(rows))
    stats = engine.last_stats
    emit("Fig 14b engine stats", stats.describe())
    # 14a populated the schedule cache; 14b's structural grid is identical,
    # so the warm pass must hit it.
    assert stats.cache_hits > 0
    cmos_dominant = sum(
        1
        for r in rows
        if r["shares"]["cmos_saving"] == max(r["shares"].values())
    )
    emit(
        "Fig 14b headline",
        f"CMOS saving is the dominant efficiency source for "
        f"{cmos_dominant}/{len(rows)} kernels (paper: dominating factor)",
    )
    assert cmos_dominant >= len(rows) * 0.6
