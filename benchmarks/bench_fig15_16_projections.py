"""E-F15/E-F16/E-T5: Figs 15-16 + Table V — the accelerator wall.

Regenerates the per-domain Pareto-frontier projections at the final 5nm
node, reporting projected limits and remaining headroom per domain and
metric against the paper's ranges.
"""

from conftest import emit

from repro.reporting.figures import fig15_16_projections
from repro.reporting.tables import render_rows, table5_wall_parameters

#: Paper's projected headroom ranges, (metric, domain) -> (low, high).
PAPER_RANGES = {
    ("performance", "video_decoding"): (3.0, 130.0),
    ("efficiency", "video_decoding"): (1.2, 14.0),
    ("performance", "gaming_graphics"): (1.4, 2.5),
    ("efficiency", "gaming_graphics"): (1.4, 1.7),
    ("performance", "convolutional_nn"): (2.1, 3.4),
    ("efficiency", "convolutional_nn"): (2.7, 3.5),
    ("performance", "bitcoin_mining"): (2.0, 20.0),
    ("efficiency", "bitcoin_mining"): (1.4, 5.0),
}


def test_table5_parameters(benchmark):
    rows = benchmark(table5_wall_parameters)
    emit("Table V: accelerator wall physical parameters", render_rows(rows))
    assert len(rows) == 4


def test_fig15_16_wall_projections(benchmark, paper_model):
    rows = benchmark(fig15_16_projections, paper_model)
    table = []
    for row in rows:
        low, high = row["headroom"]
        paper_low, paper_high = PAPER_RANGES[(row["metric"], row["domain"])]
        table.append(
            {
                "domain": row["domain"],
                "metric": row["metric"],
                "best_today": f"{row['current_best']:.4g} {row['unit']}",
                "wall_log": f"{row['projected_log']:.4g}",
                "wall_linear": f"{row['projected_linear']:.4g}",
                "headroom": f"{low:.1f}-{high:.1f}x",
                "paper": f"{paper_low:g}-{paper_high:g}x",
            }
        )
    emit("Figs 15-16: accelerator wall projections vs paper", render_rows(table))

    for row in rows:
        low, high = row["headroom"]
        paper_low, paper_high = PAPER_RANGES[(row["metric"], row["domain"])]
        # Shape check: measured headroom band overlaps the paper's band
        # within a 3x tolerance on each end.
        assert low <= paper_high * 3
        assert high >= paper_low / 3
