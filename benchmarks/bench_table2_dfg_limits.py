"""E-T2: Table II — theoretical limits of chip-specialization concepts.

Evaluates the nine closed-form limits over every Table IV kernel's dynamic
DFG and reports the spread — quantifying how much runtime headroom each
concept has per kernel.
"""

from conftest import emit

from repro.dfg.analysis import analyze
from repro.dfg.complexity import Component, speedup_bound
from repro.reporting.tables import render_rows, table2_concept_limits
from repro.workloads import WORKLOADS, s3d


def test_table2_example_kernel(benchmark):
    stats = analyze(s3d.build().dfg)
    rows = benchmark(table2_concept_limits, stats)
    emit(f"Table II on {stats.describe()}", render_rows(rows))


def test_table2_speedup_bounds_all_kernels(benchmark):
    def compute():
        table = []
        for workload in WORKLOADS:
            stats = analyze(workload.build().dfg)
            table.append(
                {
                    "kernel": workload.abbrev,
                    "memory_bound_x": speedup_bound(stats, Component.MEMORY),
                    "comm_bound_x": speedup_bound(stats, Component.COMMUNICATION),
                    "compute_bound_x": speedup_bound(stats, Component.COMPUTATION),
                }
            )
        return table

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("Table II: per-kernel concept speedup bounds", render_rows(rows))
    for row in rows:
        assert row["memory_bound_x"] >= 1.0
