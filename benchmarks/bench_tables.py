"""E-T1/E-T3/E-T4: regenerate the remaining paper tables.

Table II has its own bench (``bench_table2_dfg_limits.py``) and Table V is
covered with the projections (``bench_fig15_16_projections.py``).
"""

from conftest import emit

from repro.reporting.tables import (
    render_rows,
    table1_specialization_concepts,
    table3_sweep_parameters,
    table4_applications,
)


def test_table1_concepts(benchmark):
    rows = benchmark(table1_specialization_concepts)
    emit("Table I: chip specialization concepts (TPU examples)", render_rows(rows))
    assert len(rows) == 9


def test_table3_sweep_parameters(benchmark):
    rows = benchmark(table3_sweep_parameters)
    emit("Table III: CMOS-specialization sweep parameters", render_rows(rows))
    assert len(rows) == 3


def test_table4_applications(benchmark):
    rows = benchmark(table4_applications)
    emit("Table IV: evaluated applications and domains", render_rows(rows))
    assert len(rows) == 16
