"""Ablation: sensitivity of the accelerator wall to Table V assumptions.

Perturbs each domain's assumed end-of-scaling die size and power budget by
2x in both directions and reports how far the projected headroom band can
move — quantifying the robustness of the Section VII conclusions.
"""

from conftest import emit

from repro.reporting.tables import render_rows
from repro.wall.limits import _limits, accelerator_wall
from repro.wall.sensitivity import headroom_spread, wall_sensitivity


def test_wall_sensitivity_all_domains(benchmark, paper_model):
    def run():
        rows = []
        for domain in _limits():
            for metric in ("performance", "efficiency"):
                points = wall_sensitivity(domain, paper_model, metric=metric)
                nominal = next(
                    p for p in points
                    if p.die_scale == 1.0 and p.tdp_scale == 1.0
                )
                low, high = headroom_spread(points)
                rows.append(
                    {
                        "domain": domain,
                        "metric": metric,
                        "nominal": f"{nominal.headroom_low:.1f}-"
                                   f"{nominal.headroom_high:.1f}x",
                        "across_2x_perturbations": f"{low:.1f}-{high:.1f}x",
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Wall sensitivity to Table V parameters (die, TDP +/-2x)",
        render_rows(rows),
    )
    for row in rows:
        assert "x" in row["across_2x_perturbations"]


def test_wall_projection_uncertainty(benchmark, paper_model):
    """Bootstrap CIs on the projected walls: how sure are the headrooms?"""
    from repro.cmos.bootstrap import bootstrap_projection
    from repro.wall.projection import ProjectionKind

    def run():
        rows = []
        for domain in _limits():
            report = accelerator_wall(domain, paper_model)
            study = _limits()[domain].study_factory()
            series = study.performance_series(paper_model)
            base = study.chips[0].metric(study.performance_metric)
            points = [(p.physical, p.gain * base) for p in series]
            interval = bootstrap_projection(
                points,
                report.physical_limit,
                kind=ProjectionKind.LINEAR,
                n_resamples=150,
                seed=3,
            )
            rows.append(
                {
                    "domain": domain,
                    "linear_wall": report.projected_linear,
                    "bootstrap_90pct_ci": f"[{interval.low:.3g}, "
                                          f"{interval.high:.3g}]",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Bootstrap uncertainty of the linear wall projections", render_rows(rows))
    assert len(rows) == 4
