"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*`` module regenerates one paper table or figure and prints
the same rows/series the paper reports (run with ``-s`` to see them).
Absolute numbers are not expected to match the authors' testbed — the
*shape* is asserted by the test suite; the benches record regeneration cost
and emit the data.
"""

from __future__ import annotations

import pytest

from repro.cmos.model import CmosPotentialModel


def emit(title: str, body: str) -> None:
    """Print a labelled report block."""
    print(f"\n==== {title} ====")
    print(body)


@pytest.fixture(scope="session")
def paper_model() -> CmosPotentialModel:
    return CmosPotentialModel.paper()
