"""Record one small-grid Fig 13 sweep as a ``BENCH_*.json`` entry.

CI's benchmark smoke job runs this after the shape-asserting benches: it
executes the representative (fast) Fig 13 grid through the parallel
engine with the observability layer on, then writes one self-contained
JSON entry — engine stats, per-stage span times, and the metrics
snapshot — so the perf trajectory of the DSE pipeline accumulates one
point per commit.  The Chrome trace goes next to it for the artifact
upload.

``--mode scalar`` records the same grid through the per-point scalar
oracle instead of the vectorized batch path, and ``--baseline`` compares
the freshly recorded entry against a previous ``BENCH_*.json`` under the
perf-threshold flags (:func:`repro.provenance.drift.compare_bench_entries`),
exiting non-zero on a regression.  CI's perf-smoke gate records a scalar
baseline and then requires the vectorized entry to beat it by at least 2x
(``--elapsed-threshold -0.5``).

Usage::

    python benchmarks/record_bench.py --out-dir bench-results \
        --trace-out bench-results/fig13-trace.json --jobs 2

    # perf gate: vectorized must be at least 2x faster than scalar
    python benchmarks/record_bench.py --mode scalar --jobs 1 --out-dir r
    python benchmarks/record_bench.py --mode vectorized --jobs 1 --out-dir r \
        --baseline r/BENCH_fig13_smoke_scalar_local.json --elapsed-threshold -0.5
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.accel.engine import SweepEngine
from repro.accel.sweep import default_design_grid
from repro.obs.metrics import metrics, reset_metrics
from repro.obs.trace import Tracer, set_tracer
from repro.provenance.manifest import SCHEMA_VERSION, RunLedger, capture
from repro.workloads import s3d

#: The CLI's fast Fig 13 sub-grid (see repro.reporting.export).
PARTITIONS = (1, 4, 16, 64, 256, 1024)
SIMPLIFICATIONS = (1, 3, 5, 7, 9, 11, 13)


def run(jobs: int, vectorize: bool = True) -> dict:
    """One cold small-grid sweep under a fresh tracer and metrics registry."""
    kernel = s3d.build()
    grid = default_design_grid(
        partitions=PARTITIONS, simplifications=SIMPLIFICATIONS
    )
    tracer = Tracer()
    reset_metrics()
    set_tracer(tracer)
    try:
        engine = SweepEngine(jobs=jobs, use_cache=False, vectorize=vectorize)
        result = engine.sweep(kernel, grid)
    finally:
        set_tracer(None)
    stats = result.stats
    manifest = capture("bench")
    manifest.metrics = metrics().snapshot()
    manifest.stages = tracer.stage_rows()
    manifest.engine = engine.provenance()
    manifest.elapsed_s = stats.elapsed_s
    try:
        RunLedger().record(manifest)
    except OSError:
        pass  # ledger is best-effort; the bench entry itself still lands
    return {
        "bench": "fig13_smoke",
        "mode": "vectorized" if vectorize else "scalar",
        "schema_version": SCHEMA_VERSION,
        "run_id": manifest.run_id,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": os.environ.get("GITHUB_SHA", "local"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "stats": {
            "design_points": stats.design_points,
            "jobs": stats.jobs,
            "chunks": stats.chunks,
            "elapsed_s": stats.elapsed_s,
            "schedule_s": stats.schedule_s,
            "evaluate_s": stats.evaluate_s,
            "memo_hits": stats.memo_hits,
            "memo_misses": stats.memo_misses,
        },
        "stages": tracer.stage_rows(),
        "metrics": metrics().snapshot(),
        "_tracer": tracer,  # stripped before serialisation
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", type=Path, default=Path("bench-results"),
        help="directory for the BENCH_*.json entry (default: bench-results)",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="also write the run's Chrome trace-event JSON here",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the sweep (default: 2)",
    )
    parser.add_argument(
        "--mode", choices=("vectorized", "scalar"), default="vectorized",
        help="evaluation path: batched numpy (default) or per-point scalar oracle",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="previous BENCH_*.json to compare against under perf-threshold flags",
    )
    parser.add_argument(
        "--elapsed-threshold", type=float, default=None,
        help="allowed elapsed_s ratio slack vs the baseline; negative values "
        "demand a speedup (e.g. -0.5 fails unless at least 2x faster)",
    )
    args = parser.parse_args(argv)

    entry = run(args.jobs, vectorize=args.mode != "scalar")
    tracer = entry.pop("_tracer")
    if args.trace_out is not None:
        tracer.export_chrome(args.trace_out)
        print(f"wrote trace {args.trace_out} ({len(tracer)} spans)")

    label = entry["commit"][:12]
    suffix = "" if entry["mode"] == "vectorized" else f"_{entry['mode']}"
    args.out_dir.mkdir(parents=True, exist_ok=True)
    path = args.out_dir / f"BENCH_fig13_smoke{suffix}_{label}.json"
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2)
    stats = entry["stats"]
    print(
        f"wrote {path}: {stats['design_points']} points in "
        f"{stats['elapsed_s']:.3f}s (jobs={stats['jobs']}, mode={entry['mode']})"
    )

    if args.baseline is not None:
        from repro.provenance.drift import compare_bench_entries

        with open(args.baseline) as handle:
            baseline = json.load(handle)
        kwargs = {}
        if args.elapsed_threshold is not None:
            kwargs["elapsed_threshold"] = args.elapsed_threshold
        flags = compare_bench_entries(baseline, entry, **kwargs)
        regressed = [flag for flag in flags if flag.regressed]
        for flag in flags:
            print(flag.describe())
        if regressed:
            print(f"perf gate FAILED vs {args.baseline} ({len(regressed)} flag(s))")
            return 1
        print(f"perf gate ok vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
