"""Load-test the serving layer and record a ``BENCH_*.json`` entry.

Starts an in-process server (:class:`repro.serve.ServerHandle`), drives
it with N concurrent clients sending a mixed traffic pattern (evaluate,
what-if, CMOS gains, CSR series), and records per-endpoint p50/p95/p99
latency and aggregate throughput.  The evaluate endpoint is additionally
measured **twice** — once with micro-batching on and once with it off —
so each entry carries the batched-vs-unbatched throughput ratio the
acceptance criterion tracks.

A final phase repeats the mixed pattern against ``repro serve
--workers N`` (the forking supervisor) for each worker count, recording
p50/p95/p99 and throughput per count plus the max-vs-1 ``workers_speedup``
— the horizontal-scaling curve.  The curve only rises with multiple CPU
cores; on a single-core machine it honestly records ~1x.

Usage::

    python benchmarks/serve_load.py --out-dir bench-results \
        --clients 8 --requests 40 --worker-counts 1,2,4
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import statistics
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.provenance.manifest import SCHEMA_VERSION
from repro.serve import ServeConfig, ServerHandle, SupervisorHandle

#: Design points the mixed-traffic phase cycles through (warmed up, so the
#: phase measures steady-state request handling).
EVALUATE_POINTS = (
    {"workload": "FFT", "node_nm": 5.0, "partition": 64, "simplification": 9},
    {"workload": "FFT", "node_nm": 7.0, "partition": 16, "simplification": 5},
    {"workload": "GMM", "node_nm": 5.0, "partition": 256, "simplification": 13},
    {"workload": "S3D", "node_nm": 10.0, "partition": 4, "simplification": 3},
)

#: Cold design points for the batched-vs-unbatched comparison: every
#: (partition, simplification) pair schedules from scratch (~10ms), and all
#: clients request the *same* point at the same step — the concurrent-
#: duplicate pattern of a dashboard fanning one query out.  Batching
#: coalesces each point onto one schedule; without it every client pays
#: the full scheduling cost redundantly.
COLD_POINTS = tuple(
    {"workload": "FFT", "node_nm": 5.0, "partition": p, "simplification": s}
    for s in (3, 5, 7, 9, 11)
    for p in (2, 8, 32, 128, 512)
)

#: Kernel-trace warmup only — not part of any phase's design cycle, so the
#: phases stay schedule-cold while workload tracing happens up front.
TRACE_WARMUP = (
    {"workload": "FFT", "node_nm": 45.0, "partition": 1, "simplification": 1},
    {"workload": "GMM", "node_nm": 45.0, "partition": 1, "simplification": 1},
    {"workload": "S3D", "node_nm": 45.0, "partition": 1, "simplification": 1},
)

WHATIF_BODIES = (
    {"domain": "video_decoding", "die_scale": 2.0},
    {"domain": "bitcoin_mining", "metric": "efficiency", "tdp_scale": 4.0},
)

GET_TARGETS = (
    "/cmos/gains?node=5",
    "/cmos/gains?node=7&frequency_mhz=2000",
    "/csr/video",
    "/wall/projections",
)


class Client:
    """One load-generating thread with a keep-alive connection."""

    def __init__(self, port: int, client_id: str):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        self.headers = {"X-Client-Id": client_id}
        self.latencies: Dict[str, List[float]] = {}
        self.errors = 0

    def request(
        self, method: str, target: str, body: Optional[dict], family: str
    ) -> None:
        payload = json.dumps(body).encode() if body is not None else None
        start = time.perf_counter()
        try:
            self.conn.request(method, target, body=payload, headers=self.headers)
            response = self.conn.getresponse()
            response.read()
            ok = response.status == 200
        except (http.client.HTTPException, OSError):
            self.conn.close()
            ok = False
        elapsed = time.perf_counter() - start
        if ok:
            self.latencies.setdefault(family, []).append(elapsed)
        else:
            self.errors += 1

    def close(self) -> None:
        self.conn.close()


def percentile(values: List[float], q: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def summarise(values: List[float]) -> Dict[str, float]:
    return {
        "count": len(values),
        "p50_ms": percentile(values, 0.50) * 1e3,
        "p95_ms": percentile(values, 0.95) * 1e3,
        "p99_ms": percentile(values, 0.99) * 1e3,
        "mean_ms": (statistics.fmean(values) * 1e3) if values else float("nan"),
    }


def mixed_phase(port: int, clients: int, requests: int) -> Dict[str, Any]:
    """Mixed-traffic phase: every client interleaves all endpoint families."""

    def worker(client: Client, index: int) -> None:
        # Per-family turn counters: `(index + i) % 4` alone would always
        # select variant 0 of each family (both moduli in lock-step).
        turns = [0, 0, 0, 0]
        for i in range(requests):
            family = (index + i) % 4
            turn = turns[family]
            turns[family] += 1
            if family == 0:
                body = EVALUATE_POINTS[(index + turn) % len(EVALUATE_POINTS)]
                client.request("POST", "/evaluate", body, "evaluate")
            elif family == 1:
                body = WHATIF_BODIES[(index + turn) % len(WHATIF_BODIES)]
                client.request("POST", "/wall/whatif", body, "whatif")
            elif family == 2:
                target = GET_TARGETS[(index + turn) % len(GET_TARGETS)]
                name = target.split("?")[0].split("/")[1]
                client.request("GET", target, None, name)
            else:
                client.request("GET", "/healthz", None, "healthz")

    return run_phase(port, clients, worker)


def evaluate_phase(port: int, clients: int, requests: int) -> Dict[str, Any]:
    """Evaluate-only phase used for the batched-vs-unbatched comparison.

    All clients walk :data:`COLD_POINTS` in the *same* order (no per-client
    offset), so at any instant the in-flight requests are concurrent
    duplicates of a schedule-cold design point.
    """

    def worker(client: Client, index: int) -> None:
        for i in range(min(requests, len(COLD_POINTS))):
            client.request("POST", "/evaluate", COLD_POINTS[i], "evaluate")

    return run_phase(port, clients, worker)


def run_phase(port: int, clients: int, worker) -> Dict[str, Any]:
    pool = [Client(port, f"load-{i}") for i in range(clients)]
    threads = [
        threading.Thread(target=worker, args=(client, i))
        for i, client in enumerate(pool)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    latencies: Dict[str, List[float]] = {}
    errors = 0
    for client in pool:
        for family, values in client.latencies.items():
            latencies.setdefault(family, []).extend(values)
        errors += client.errors
        client.close()
    total = sum(len(v) for v in latencies.values())
    return {
        "clients": clients,
        "requests_ok": total,
        "errors": errors,
        "elapsed_s": elapsed,
        "throughput_rps": total / elapsed if elapsed > 0 else float("nan"),
        "latency": {family: summarise(v) for family, v in sorted(latencies.items())},
    }


def telemetry_sample(port: int) -> Dict[str, Any]:
    """The server's own view of the load it just took.

    Scrapes the ``serve.latency_s`` histogram family from ``/metrics``
    and the slowest retained flight-recorder rows from ``/debug/slow``,
    so each entry records what the always-on telemetry measured server-
    side next to the client-side percentiles.  (The acceptance gate
    holds client-side mixed p50 with telemetry on against the
    pre-histogram baseline — telemetry must stay cheap enough to never
    turn off.)
    """
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    headers = {"X-Client-Id": "bench-telemetry"}
    try:
        conn.request("GET", "/debug/slow?n=5", headers=headers)
        payload = json.loads(conn.getresponse().read())
        slowest = [
            {key: row.get(key) for key in ("route", "status", "duration_s", "trace_id")}
            for row in payload["data"]["requests"]
        ]
        conn.request("GET", "/metrics", headers=headers)
        text = conn.getresponse().read().decode()
    finally:
        conn.close()
    histogram: Dict[str, Any] = {"buckets": 0}
    for line in text.splitlines():
        if line.startswith("repro_serve_latency_s_sum "):
            histogram["sum_s"] = float(line.split()[-1])
        elif line.startswith("repro_serve_latency_s_count "):
            histogram["count"] = int(line.split()[-1])
        elif line.startswith("repro_serve_latency_s_bucket{"):
            histogram["buckets"] += 1
    return {"histogram": histogram, "slowest": slowest}


def with_server(
    batching: bool, fn, warm: Tuple[dict, ...] = TRACE_WARMUP
) -> Dict[str, Any]:
    """Run *fn(port)* against a fresh server; kernels pre-traced via *warm*."""
    config = ServeConfig(
        port=0,
        batching=batching,
        response_cache=0,  # isolate batching: no response-level caching
        threads=8,
    )
    handle = ServerHandle(config).start()
    try:
        # Trace each kernel once up front so the phase measures steady-state
        # serving, not one-time workload tracing.
        probe = Client(handle.port, "warmup")
        for body in warm:
            probe.request("POST", "/evaluate", body, "warmup")
        probe.close()
        return fn(handle.port)
    finally:
        handle.stop()


def worker_scaling_phase(
    clients: int, requests: int, counts: Sequence[int]
) -> Dict[str, Any]:
    """Mixed traffic against ``--workers N`` subprocesses for each count.

    Count 1 is the plain single process (the CLI only starts a supervisor
    past 1), so the recorded curve is exactly "what adding workers buys
    over today's server".  Each run is warmed with one pass of the mixed
    design points per worker so steady-state serving is measured, not
    per-replica first-touch scheduling.
    """
    results: Dict[str, Any] = {}
    for count in counts:
        handle = SupervisorHandle(
            workers=count, extra_args=("--response-cache", "0")
        ).start()
        try:
            # With reuseport the kernel picks the worker per connection, so
            # warm with `count` passes to touch every replica with high
            # probability (supervisor workers warm-boot kernels from the
            # snapshot already; this warms their schedule caches).
            for _ in range(max(1, count)):
                probe = Client(handle.port, "warmup")
                for body in TRACE_WARMUP + EVALUATE_POINTS:
                    probe.request("POST", "/evaluate", body, "warmup")
                probe.close()
            results[str(count)] = mixed_phase(handle.port, clients, requests)
        finally:
            code = handle.stop()
            results[str(count)]["exit_code"] = code
    baseline = results.get(str(min(counts)), {}).get("throughput_rps", 0.0)
    top = results.get(str(max(counts)), {}).get("throughput_rps", 0.0)
    return {
        "counts": list(counts),
        "cpu_count": os.cpu_count(),
        "results": results,
        "workers_speedup": top / baseline if baseline > 0 else float("nan"),
    }


def run(clients: int, requests: int, worker_counts: Sequence[int] = ()) -> dict:
    def mixed_with_telemetry(port: int) -> Dict[str, Any]:
        result = mixed_phase(port, clients, requests)
        result["telemetry"] = telemetry_sample(port)
        return result

    mixed = with_server(True, mixed_with_telemetry, warm=TRACE_WARMUP + EVALUATE_POINTS)
    batched = with_server(
        True, lambda port: evaluate_phase(port, clients, requests)
    )
    unbatched = with_server(
        False, lambda port: evaluate_phase(port, clients, requests)
    )
    ratio = (
        batched["throughput_rps"] / unbatched["throughput_rps"]
        if unbatched["throughput_rps"] > 0
        else float("nan")
    )
    entry = {
        "bench": "serve_load",
        "schema_version": SCHEMA_VERSION,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "commit": os.environ.get("GITHUB_SHA", "local"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "clients": clients,
            "requests_per_client": requests,
            "worker_counts": list(worker_counts),
        },
        "mixed": mixed,
        "evaluate_batched": batched,
        "evaluate_unbatched": unbatched,
        "batched_speedup": ratio,
    }
    if worker_counts:
        entry["workers"] = worker_scaling_phase(clients, requests, worker_counts)
        entry["workers_speedup"] = entry["workers"]["workers_speedup"]
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", type=Path, default=Path("bench-results"),
        help="directory for the BENCH_*.json entry (default: bench-results)",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent load-generating clients (default: 8)",
    )
    parser.add_argument(
        "--requests", type=int, default=40,
        help="requests per client per phase (default: 40)",
    )
    parser.add_argument(
        "--worker-counts", default="1,2,4", metavar="N,N,...",
        help="worker counts for the horizontal-scaling phase; empty "
        "string skips it (default: 1,2,4)",
    )
    args = parser.parse_args(argv)
    counts = tuple(
        int(part) for part in args.worker_counts.split(",") if part.strip()
    )

    entry = run(args.clients, args.requests, worker_counts=counts)
    label = entry["commit"][:12]
    args.out_dir.mkdir(parents=True, exist_ok=True)
    path = args.out_dir / f"BENCH_serve_load_{label}.json"
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2)
    mixed = entry["mixed"]
    line = (
        f"wrote {path}: {mixed['requests_ok']} requests at "
        f"{mixed['throughput_rps']:.1f} req/s "
        f"(batched evaluate speedup {entry['batched_speedup']:.2f}x"
    )
    if "workers_speedup" in entry:
        top = max(entry["workers"]["results"], key=int)
        line += (
            f", {top}-worker mixed speedup {entry['workers_speedup']:.2f}x "
            f"on {entry['workers']['cpu_count']} cpu(s)"
        )
    print(line + ")")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
