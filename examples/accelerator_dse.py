#!/usr/bin/env python3
"""Design-space exploration of a 3D-stencil accelerator (Figs 12-14).

Traces the S3D kernel into a dynamic dataflow graph, sweeps the Table III
design space (partitioning x simplification x CMOS node), locates the
energy-efficiency optimum, and attributes the gains to the specialization
concepts — the Section VI methodology end to end.

The sweep runs through :class:`repro.accel.engine.SweepEngine`, which
shards the grid across worker processes and persists schedules in a
content-addressed cache (results are bit-identical to the serial
``sweep()``); rerun the example to see the warm-cache effect in the
``[dse]`` stats line.

Run:  python examples/accelerator_dse.py
"""

import tempfile
from pathlib import Path

from repro.accel.attribution import attribute_gains
from repro.accel.engine import SweepEngine
from repro.accel.sweep import default_design_grid
from repro.dfg.analysis import analyze
from repro.reporting.tables import render_rows, table2_concept_limits
from repro.workloads import get_workload

# A representative sub-grid of Table III (the full 1820-point grid also
# works; it just takes a few seconds).
PARTITIONS = (1, 4, 16, 64, 256, 1024)
SIMPLIFICATIONS = (1, 3, 5, 7, 9, 11, 13)
NODES = (45.0, 22.0, 10.0, 5.0)


#: Survives across runs of the example, so a rerun is served from cache.
CACHE_DIR = Path(tempfile.gettempdir()) / "accelerator-wall-example-cache"


def main() -> None:
    engine = SweepEngine(jobs=2, cache_dir=CACHE_DIR)
    kernel = engine.trace(get_workload("S3D"))
    stats = analyze(kernel.dfg)
    print(f"traced kernel: {stats.describe()}")

    # Table II: what the specialization concepts can ever achieve here.
    print("\n=== Table II limits for this kernel ===")
    print(render_rows(table2_concept_limits(stats)))

    # Fig 13: the runtime-power space.
    grid = default_design_grid(
        nodes=NODES, partitions=PARTITIONS, simplifications=SIMPLIFICATIONS
    )
    result = engine.sweep(kernel, grid)
    frontier = result.pareto_frontier()
    print(f"\n=== Fig 13: swept {len(result)} design points, "
          f"{len(frontier)} on the runtime-power Pareto frontier ===")
    print(f"[dse] {result.stats.describe()}")
    print(render_rows([
        {
            "design": r.design.describe(),
            "runtime_ns": r.runtime_s * 1e9,
            "power_w": r.power_w,
            "ops_per_nj": r.energy_efficiency * 1e-9,
        }
        for r in frontier
    ]))

    best = result.best_energy_efficiency()
    print(f"\nbest energy efficiency: {best.design.describe()}")

    # Fig 14: who gets credit for the gains.  One persistent-backed
    # schedule cache serves both metrics (and later reruns).
    schedule_cache = engine.schedule_cache(kernel)
    for metric in ("throughput", "energy_efficiency"):
        attribution = attribute_gains(
            kernel, metric=metric,
            partitions=PARTITIONS, simplifications=SIMPLIFICATIONS,
            cache=schedule_cache,
        )
        shares = ", ".join(
            f"{concept} {share:.0f}%"
            for concept, share in sorted(
                attribution.shares.items(), key=lambda kv: -kv[1]
            )
        )
        print(
            f"\nFig 14 [{metric}]: total gain {attribution.total_gain:.0f}x "
            f"over the 45nm baseline; CSR {attribution.csr:.2f}x\n  {shares}"
        )


if __name__ == "__main__":
    main()
