#!/usr/bin/env python3
"""Replay the paper's Bitcoin-mining study (Figs 1 and 9).

Walks the mining-hardware population from CPU through GPU and FPGA to the
16nm ASICs, showing how per-area performance exploded while the chip
specialization return (CSR) plateaued once the domain settled on ASICs.

Run:  python examples/bitcoin_history.py
"""

from repro import CmosPotentialModel
from repro.reporting.tables import render_rows
from repro.studies import bitcoin


def main() -> None:
    model = CmosPotentialModel.paper()

    # Fig 9: the full population, normalised to the Athlon 64 CPU miner.
    study = bitcoin.study()
    perf = study.performance_series(model)
    print("=== Fig 9a: GHash/s/mm^2 vs the baseline CPU miner ===")
    rows = [
        {
            "miner": point.name,
            "node": f"{point.node_nm:g}nm",
            "gain_x": point.gain,
            "csr_x": point.csr,
        }
        for point in perf
    ]
    print(render_rows(rows))

    best = perf.best_performer()
    print(
        f"\nbest ASIC beats the CPU by {best.gain:,.0f}x, of which "
        f"{best.csr:,.0f}x is specialization (the platform jump) and "
        f"{best.gain / best.csr:,.0f}x is physical."
    )

    # Fig 1: ASICs only — the maturity story.
    asic = bitcoin.asic_study().performance_series(model)
    print("\n=== Fig 1: ASIC evolution (vs the first 130nm ASIC) ===")
    print(render_rows([
        {
            "asic": p.name,
            "node": f"{p.node_nm:g}nm",
            "performance_x": p.gain,
            "transistor_perf_x": p.physical,
            "csr_x": p.csr,
        }
        for p in asic
    ]))
    print(
        "\nacross ASIC generations most of the gain is transistor "
        "performance; CSR moves only a few x — the accelerator wall "
        "argument in one table."
    )

    # The two-region efficiency structure (Fig 9b annotations 1 and 2).
    eff = bitcoin.asic_study().efficiency_series(model)
    print("\n=== Fig 9b: energy-efficiency CSR, two improvement regions ===")
    print(render_rows([
        {"asic": p.name, "node": f"{p.node_nm:g}nm", "eff_gain_x": p.gain,
         "csr_x": p.csr}
        for p in eff
    ]))


if __name__ == "__main__":
    main()
