#!/usr/bin/env python3
"""Apply the paper's methodology to YOUR accelerator domain.

Shows the full downstream-user workflow: describe your chip population,
attach measured gains, compute the CSR series, and project your domain's
accelerator wall.  The example domain is a fictional genomics-alignment
ASIC line (three generations).

Run:  python examples/custom_domain_study.py
"""

from repro import ChipSpec, CmosPotentialModel
from repro.cmos.nodes import FINAL_NODE
from repro.reporting.tables import render_rows
from repro.studies.base import CaseStudy, StudyChip
from repro.wall.projection import fit_projections


def build_study() -> CaseStudy:
    """Your datasheets + your measurements -> a CaseStudy."""
    generations = [
        # name, node, die mm2, MHz, W, alignments/s (measured)
        ("align-v1", 28, 45, 600, 12.0, 1.0e6),
        ("align-v2", 16, 45, 900, 12.0, 4.1e6),
        ("align-v3", 7, 45, 1100, 12.0, 9.8e6),
    ]
    chips = []
    for name, node, area, freq, tdp, rate in generations:
        spec = ChipSpec(
            name=name, category="asic", node_nm=node, area_mm2=area,
            frequency_mhz=freq, tdp_w=tdp,
        )
        chips.append(
            StudyChip(
                spec=spec,
                measured={"alignments_s": rate, "per_watt": rate / tdp},
            )
        )
    return CaseStudy(
        name="genomics_alignment",
        chips=chips,
        performance_metric="alignments_s",
        efficiency_metric="per_watt",
        # 12W embedded parts: use the paper's empirical Fig 3c transistor
        # budget for TDP capping rather than the analytic full-activity
        # power model (which targets chips at their thermal limit).
        capped="empirical",
    )


def main() -> None:
    model = CmosPotentialModel.paper()
    study = build_study()

    # 1. How much of each generation's gain was silicon vs design?
    series = study.performance_series(model)
    print("=== CSR series for the genomics-alignment ASICs ===")
    print(render_rows([
        {"chip": p.name, "node": f"{p.node_nm:g}nm", "gain_x": p.gain,
         "physical_x": p.physical, "csr_x": p.csr}
        for p in series
    ]))

    # 2. Project the wall: fit both frontier models and evaluate them at
    #    the physical potential of the best 5nm chip in this power class.
    base = study.chips[0]
    points = [
        (p.physical, p.gain * base.metric("alignments_s")) for p in series
    ]
    linear, log = fit_projections(points)
    base_physical = model.evaluate_spec(
        base.spec, capped="empirical"
    ).gains.throughput
    limit_physical = (
        model.evaluate(
            FINAL_NODE, 1100, area_mm2=45, tdp_w=12.0, cap_mode="empirical"
        ).throughput
        / base_physical
    )
    today = max(gain for _, gain in points)
    print(f"\nphysical limit at {FINAL_NODE:g}nm: {limit_physical:.1f}x the v1 chip")
    print(f"projected wall:  {log.predict(limit_physical):,.0f} (log) .. "
          f"{linear.predict(limit_physical):,.0f} (linear) alignments/s")
    print(f"remaining headroom over v3: "
          f"{log.predict(limit_physical) / today:.1f}x .. "
          f"{linear.predict(limit_physical) / today:.1f}x")


if __name__ == "__main__":
    main()
