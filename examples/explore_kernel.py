#!/usr/bin/env python3
"""Explore one kernel through the whole stack: trace -> DFG -> limits -> DSE.

Walks the FFT kernel from source to accelerator: concolic tracing, DFG
statistics, the Table II theoretical concept limits, a Graphviz dump of a
small slice, and latency- vs streaming-mode evaluations across nodes.

Run:  python examples/explore_kernel.py
"""

from repro.accel.design import DesignPoint
from repro.accel.power import evaluate_design
from repro.accel.streaming import evaluate_streaming
from repro.dfg.analysis import analyze, critical_path
from repro.dfg.visualize import to_dot
from repro.reporting.tables import render_rows, table2_concept_limits
from repro.workloads import fft


def main() -> None:
    # 1. Trace: execute the kernel concolically, check the result is real.
    kernel = fft.build(n=16)
    want_re, want_im = fft.reference(*fft.build_inputs(n=16))
    got = list(kernel.output_values)
    residual = max(
        abs(a - b) for a, b in zip(got[0::2] + got[1::2], want_re + want_im)
    )
    print(f"traced 16-point FFT; max residual vs numpy: {residual:.2e}")

    # 2. Structure: the quantities Table II's limits are written in.
    stats = analyze(kernel.dfg)
    print(f"\n{stats.describe()}")
    print(f"inherent parallelism |V|/D = {stats.parallelism:.1f}")
    print(f"critical path length: {len(critical_path(kernel.dfg))} vertices")

    # 3. Theoretical limits of each specialization concept on this kernel.
    print("\n=== Table II limits ===")
    print(render_rows(table2_concept_limits(stats)))

    # 4. A peek at the dataflow (first butterfly stage) as Graphviz DOT.
    slice_ids = set(list(kernel.dfg.node_ids())[:12])
    print("\n=== DOT fragment (first 12 vertices) ===")
    print(to_dot(kernel.dfg.subgraph(slice_ids), max_nodes=None))

    # 5. Evaluate across nodes, latency mode and streaming mode.
    print("\n=== design evaluations ===")
    rows = []
    for node in (45, 16, 5):
        design = DesignPoint(node_nm=node, partition=16, simplification=5)
        latency = evaluate_design(kernel, design)
        streaming = evaluate_streaming(kernel, design)
        rows.append(
            {
                "node": f"{node}nm",
                "cycles": latency.cycles,
                "runtime_ns": latency.runtime_s * 1e9,
                "power_w": latency.power_w,
                "stream_II": streaming.initiation_interval,
                "stream_gops": streaming.throughput_ops / 1e9,
            }
        )
    print(render_rows(rows))


if __name__ == "__main__":
    main()
