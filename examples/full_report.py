#!/usr/bin/env python3
"""Regenerate the paper's complete evaluation as one text report.

Runs every case study, the insight checks, the maturity classification,
and the wall projections, printing a self-contained report.  This is the
"read the whole reproduction in one screenful per section" entry point;
use ``accelerator-wall export`` for machine-readable output.

Run:  python examples/full_report.py
"""

from repro import CmosPotentialModel, wall_report_all_domains
from repro.csr.trends import assess_maturity
from repro.reporting.tables import render_rows, table5_wall_parameters
from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders
from repro.studies.insights import default_insights


def main() -> None:
    model = CmosPotentialModel.paper()

    print("#" * 72)
    print("# The Accelerator Wall — full reproduction report")
    print("#" * 72)

    print("\n## CMOS potential model")
    print(f"density law: {model.density_fit.describe()}")
    print(model.tdp_model.describe())

    print("\n## Case studies (Section IV)")
    domains = [
        ("video decoders (Fig 4)", video_decoders.study()),
        ("GPU graphics / GTA V FHD (Fig 5)", gpu_graphics.study()),
        ("FPGA CNN / AlexNet (Fig 8)", fpga_cnn.study("alexnet")),
        ("FPGA CNN / VGG-16 (Fig 8)", fpga_cnn.study("vgg16")),
        ("Bitcoin, all platforms (Fig 9)", bitcoin.study()),
        ("Bitcoin, ASICs only (Fig 1)", bitcoin.asic_study()),
    ]
    rows = []
    for label, study in domains:
        summary = study.summary(model)
        rows.append(
            {
                "domain": label,
                "chips": int(summary["chips"]),
                "perf_gain_x": summary["max_performance_gain"],
                "eff_gain_x": summary["max_efficiency_gain"],
                "best_csr_x": summary["best_performer_csr"],
            }
        )
    print(render_rows(rows))

    print("\n## Maturity classification (Section IV-E)")
    for label, study in domains[:4]:
        assessment = assess_maturity(
            study.performance_series(model), study.name
        )
        print(f"  {assessment.describe()}")

    print("\n## Insight checks (Section IV-E)")
    for insight in default_insights(model):
        print(f"  {insight.describe()}")

    print("\n## The accelerator wall (Section VII)")
    print(render_rows(table5_wall_parameters()))
    print()
    print(render_rows([
        {
            "domain": r.domain,
            "metric": r.metric,
            "best_today": f"{r.current_best:.4g} {r.gain_unit}",
            "wall": f"{r.projected_log:.4g} .. {r.projected_linear:.4g}",
            "headroom": f"{r.headroom[0]:.1f}-{r.headroom[1]:.1f}x",
        }
        for r in wall_report_all_domains(model)
    ]))


if __name__ == "__main__":
    main()
