#!/usr/bin/env python3
"""Quickstart: decompose an accelerator's gain into CMOS and specialization.

The core question of the paper: when a new accelerator beats an old one,
how much of the win is *silicon* (more/faster transistors) and how much is
*design* (the Chip Specialization Return)?

Run:  python examples/quickstart.py
"""

from repro import ChipSpec, CmosPotentialModel, decompose_gain


def main() -> None:
    # 1. Build the CMOS potential model.  `.paper()` uses the published fit
    #    constants; `.reference()` refits from the bundled chip population.
    model = CmosPotentialModel.paper()

    # 2. Describe the two chips being compared (datasheet-level facts).
    old = ChipSpec(
        name="accelerator-2013", category="asic", node_nm=28,
        area_mm2=120, frequency_mhz=800, tdp_w=40,
    )
    new = ChipSpec(
        name="accelerator-2019", category="asic", node_nm=7,
        area_mm2=120, frequency_mhz=1200, tdp_w=40,
    )

    # 3. Ask the model for the CMOS-driven (physical) gain.  Small embedded
    #    accelerators sit far below the analytic full-activity power model,
    #    so we use the paper's empirical Fig 3c transistor budget for the
    #    TDP cap ("empirical"); server-class chips at their thermal limit
    #    would use the default analytic mode.
    physical_gain = model.potential_gain(
        new, old, metric="throughput", capped="empirical"
    )

    # 4. Decompose a *measured* end-to-end gain (say the new chip benchmarks
    #    60x faster) into its Eq 2 factors.
    measured_gain = 60.0
    decomposition = decompose_gain(measured_gain, physical_gain)

    print(f"measured gain:          {decomposition.reported:7.1f}x")
    print(f"CMOS-driven gain:       {decomposition.cmos:7.1f}x")
    print(f"specialization (CSR):   {decomposition.specialization:7.2f}x")
    print(
        f"share of (log) gain:    {decomposition.cmos_share:.0%} CMOS, "
        f"{decomposition.specialization_share:.0%} specialization"
    )

    # 5. Where is this domain's wall?  Evaluate the physical potential of
    #    the best chip buildable at the final 5nm node under the same
    #    40W envelope.
    limit = model.evaluate(5, 1200, area_mm2=120, tdp_w=40, cap_mode="empirical")
    today = model.evaluate_spec(new, capped="empirical").gains
    headroom = limit.throughput / today.throughput
    print(f"\nremaining CMOS headroom at 5nm: {headroom:.1f}x")
    if headroom < 1.2:
        print(
            "the 40W budget already saturates the transistor budget — this "
            "domain is effectively at its CMOS wall; all further gains must "
            "come from specialization."
        )
    else:
        print(
            "after that, all further gains must come from specialization — "
            f"which this domain extracts at {decomposition.specialization:.2f}x "
            "per platform generation."
        )


if __name__ == "__main__":
    main()
