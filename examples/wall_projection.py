#!/usr/bin/env python3
"""Project the accelerator wall for all four domains (Figs 15-16).

For each Table V domain, fits the linear and logarithmic Pareto-frontier
models over the empirical (physical capability, measured gain) scatter and
evaluates them at the 5nm physical limit.

Run:  python examples/wall_projection.py
"""

from repro import CmosPotentialModel, wall_report_all_domains
from repro.reporting.tables import render_rows, table5_wall_parameters


def main() -> None:
    model = CmosPotentialModel.paper()

    print("=== Table V: physical parameters per domain ===")
    print(render_rows(table5_wall_parameters()))

    print("\n=== Figs 15-16: the accelerator wall ===")
    rows = []
    for report in wall_report_all_domains(model):
        low, high = report.headroom
        rows.append(
            {
                "domain": report.domain,
                "metric": report.metric,
                "best_today": f"{report.current_best:.4g} {report.gain_unit}",
                "wall_log": f"{report.projected_log:.4g}",
                "wall_linear": f"{report.projected_linear:.4g}",
                "headroom": f"{low:.1f}-{high:.1f}x",
            }
        )
    print(render_rows(rows))

    print(
        "\nreading: once CMOS scaling ends, each domain has only its"
        " 'headroom' factor left — and most of that is the *linear* model's"
        " optimism.  Mature, confined domains (GPU graphics, Bitcoin"
        " efficiency) are already close to their wall."
    )


if __name__ == "__main__":
    main()
