"""repro — a reproduction of *The Accelerator Wall: Limits of Chip
Specialization* (Fuchs & Wentzlaff, HPCA 2019).

The library decomposes accelerator gains into CMOS-driven and
specialization-driven parts and projects the limits of chip specialization
at the end of CMOS scaling.  Subpackages:

* :mod:`repro.cmos` — the application-independent CMOS potential model
  (device scaling, transistor budgets, physical chip gains);
* :mod:`repro.datasheets` — the chip datasheet population the model fits on;
* :mod:`repro.csr` — the Chip Specialization Return metric and relations;
* :mod:`repro.dfg` — the dataflow-graph substrate and the theoretical
  limits of specialization concepts;
* :mod:`repro.workloads` — the 16 traced benchmark kernels;
* :mod:`repro.accel` — the Aladdin-style pre-RTL design-space exploration;
* :mod:`repro.studies` — the four empirical case studies;
* :mod:`repro.wall` — the Pareto-frontier projections and the accelerator
  wall;
* :mod:`repro.reporting` — regeneration of every paper table and figure.

Quickstart::

    from repro import CmosPotentialModel, csr

    model = CmosPotentialModel.paper()
    old = model.evaluate(45, 1000, area_mm2=100, tdp_w=100)
    new = model.evaluate(5, 1000, area_mm2=100, tdp_w=100)
    physical_gain = new.throughput / old.throughput
    print(csr(reported_gain=250.0, physical_gain=physical_gain))
"""

from repro.cmos import CmosPotentialModel
from repro.csr import csr, decompose_gain
from repro.datasheets import ChipDatabase, ChipSpec, reference_database
from repro.errors import ReproError
from repro.wall import accelerator_wall, wall_report_all_domains

#: The single source of truth for the package version — pyproject.toml
#: reads it back via ``[tool.setuptools.dynamic]``, so the two can never
#: disagree.
__version__ = "1.1.0"


def version_string() -> str:
    """``repro <version> (<sha>[, dirty])`` — the CLI/server version line.

    Combines :data:`__version__` with the best-effort git state so a
    report quoting it pins both the release and the exact tree.
    """
    from repro.provenance.manifest import git_state

    git = git_state()
    sha = git.get("sha")
    tree = "no-git" if not sha else str(sha)[:12] + (
        ", dirty" if git.get("dirty") else ""
    )
    return f"repro {__version__} ({tree})"


__all__ = [
    "CmosPotentialModel",
    "csr",
    "decompose_gain",
    "ChipDatabase",
    "ChipSpec",
    "reference_database",
    "ReproError",
    "accelerator_wall",
    "wall_report_all_domains",
    "__version__",
    "version_string",
]
