"""Aladdin-style pre-RTL accelerator design-space exploration (paper §VI).

Pipeline: a workload kernel executes concolically under :class:`Tracer`,
producing a dynamic dataflow graph; a resource-constrained list scheduler
maps that graph onto a design point (partitioning factor, simplification
degree, CMOS node, fusion on/off); a power model converts the schedule into
runtime, power, and energy.  Sweeping design points reproduces Fig 13, and
ablating one specialization concept at a time attributes gains (Fig 14).

:class:`SweepEngine` executes those sweeps sharded across worker processes
with a persistent content-addressed schedule/trace cache
(:mod:`repro.accel.cache`); ``jobs=1`` matches the serial path exactly.
Grids evaluate through the vectorized batch path by default
(:mod:`repro.accel.batch`), bit-identical to the per-point scalar oracle.
"""

from repro.accel.trace import TracedArray, Tracer, Value
from repro.accel.resources import OpClass, OpCosts, ResourceLibrary, op_class
from repro.accel.design import DesignPoint
from repro.accel.scheduler import Schedule, schedule
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.sweep import (
    ParetoAccumulator,
    ScheduleCache,
    SweepResult,
    SweepStats,
    pareto_points,
    sweep,
)
from repro.accel.cache import (
    DiskCache,
    KernelTraceStore,
    ScheduleStore,
    default_cache_dir,
    dfg_fingerprint,
    kernel_fingerprint,
    library_fingerprint,
)
from repro.accel.batch import (
    BatchEvaluator,
    BatchResult,
    MacroGraph,
    evaluate_batch,
)
from repro.accel.engine import SweepEngine
from repro.accel.attribution import (
    GainAttribution,
    attribute_all,
    attribute_gains,
)
from repro.accel.streaming import StreamingReport, evaluate_streaming

__all__ = [
    "TracedArray",
    "Tracer",
    "Value",
    "OpClass",
    "OpCosts",
    "ResourceLibrary",
    "op_class",
    "DesignPoint",
    "Schedule",
    "schedule",
    "PowerReport",
    "evaluate_design",
    "ParetoAccumulator",
    "ScheduleCache",
    "SweepResult",
    "SweepStats",
    "pareto_points",
    "sweep",
    "DiskCache",
    "KernelTraceStore",
    "ScheduleStore",
    "default_cache_dir",
    "dfg_fingerprint",
    "kernel_fingerprint",
    "library_fingerprint",
    "BatchEvaluator",
    "BatchResult",
    "MacroGraph",
    "evaluate_batch",
    "SweepEngine",
    "GainAttribution",
    "attribute_all",
    "attribute_gains",
    "StreamingReport",
    "evaluate_streaming",
]
