"""Aladdin-style pre-RTL accelerator design-space exploration (paper §VI).

Pipeline: a workload kernel executes concolically under :class:`Tracer`,
producing a dynamic dataflow graph; a resource-constrained list scheduler
maps that graph onto a design point (partitioning factor, simplification
degree, CMOS node, fusion on/off); a power model converts the schedule into
runtime, power, and energy.  Sweeping design points reproduces Fig 13, and
ablating one specialization concept at a time attributes gains (Fig 14).
"""

from repro.accel.trace import TracedArray, Tracer, Value
from repro.accel.resources import OpClass, OpCosts, ResourceLibrary, op_class
from repro.accel.design import DesignPoint
from repro.accel.scheduler import Schedule, schedule
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.sweep import SweepResult, pareto_points, sweep
from repro.accel.attribution import GainAttribution, attribute_gains
from repro.accel.streaming import StreamingReport, evaluate_streaming

__all__ = [
    "TracedArray",
    "Tracer",
    "Value",
    "OpClass",
    "OpCosts",
    "ResourceLibrary",
    "op_class",
    "DesignPoint",
    "Schedule",
    "schedule",
    "PowerReport",
    "evaluate_design",
    "SweepResult",
    "pareto_points",
    "sweep",
    "GainAttribution",
    "attribute_gains",
    "StreamingReport",
    "evaluate_streaming",
]
