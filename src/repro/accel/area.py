"""Silicon-area estimation for accelerator designs.

The paper's Bitcoin study measures performance *per chip area* (Fig 1,
Fig 9a); to apply that metric to our own DSE designs we need an area model.
Area is provisioned-units x per-unit area plus scratchpad storage, with
everything shrinking quadratically with the process node (ideal layout
shrink — the density law's sub-linear utilisation exponent concerns whole
chips, not single accelerator blocks) and narrowing slightly with the
simplification degree (thinner datapaths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.accel.design import DesignPoint
from repro.accel.resources import OpClass, ResourceLibrary
from repro.accel.scheduler import Schedule, schedule as run_schedule
from repro.accel.trace import TracedKernel

#: Per-unit area at the 45nm reference node (mm^2), calibrated to the same
#: relative magnitudes as the energy table (dividers are big, ALUs small).
UNIT_AREA_MM2: Dict[OpClass, float] = {
    OpClass.ALU: 0.0020,
    OpClass.MULTIPLIER: 0.0120,
    OpClass.DIVIDER: 0.0350,
    OpClass.SPECIAL: 0.0200,
    OpClass.MEMORY: 0.0050,  # one scratchpad port
}

#: Scratchpad storage area per 32-bit word at 45nm (mm^2).
WORD_AREA_MM2: float = 1.2e-4

#: Area narrowing per simplification degree (thinner datapaths), floored.
AREA_SAVING_PER_DEGREE: float = 0.97
AREA_SAVING_FLOOR: float = 0.60

REFERENCE_NODE_NM: float = 45.0


@dataclass(frozen=True)
class AreaReport:
    """Area breakdown of one design point."""

    kernel: str
    design: DesignPoint
    compute_mm2: float
    memory_ports_mm2: float
    storage_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.compute_mm2 + self.memory_ports_mm2 + self.storage_mm2


def estimate_area(
    kernel: TracedKernel,
    design: DesignPoint,
    library: Optional[ResourceLibrary] = None,
    precomputed: Optional[Schedule] = None,
) -> AreaReport:
    """Estimate the silicon area of *kernel* mapped onto *design*."""
    lib = library if library is not None else ResourceLibrary()
    if precomputed is None:
        sched = run_schedule(
            kernel.dfg,
            partition=design.partition,
            library=lib,
            fusion_window=lib.fusion_window(design.node_nm, design.heterogeneity),
            latency_extra=lib.latency_extra(design.simplification),
        )
    else:
        sched = precomputed

    shrink = (design.node_nm / REFERENCE_NODE_NM) ** 2
    narrowing = max(
        AREA_SAVING_FLOOR, AREA_SAVING_PER_DEGREE ** (design.simplification - 1)
    )
    compute = 0.0
    ports = 0.0
    for klass, units in sched.provisioned.items():
        unit_area = UNIT_AREA_MM2[klass] * shrink * narrowing
        if klass is OpClass.MEMORY:
            ports += units * unit_area
        else:
            compute += units * unit_area
    # Storage: every distinct value touched by the kernel lives in the
    # scratchpad (double-buffered inputs plus intermediates and outputs).
    words = len(kernel.dfg)
    storage = words * WORD_AREA_MM2 * shrink
    return AreaReport(
        kernel=kernel.name,
        design=design,
        compute_mm2=compute,
        memory_ports_mm2=ports,
        storage_mm2=storage,
    )


def throughput_per_area(
    kernel: TracedKernel,
    design: DesignPoint,
    library: Optional[ResourceLibrary] = None,
) -> float:
    """Operations per second per mm^2 — the Fig 1/9a metric for a design."""
    from repro.accel.power import evaluate_design

    lib = library if library is not None else ResourceLibrary()
    report = evaluate_design(kernel, design, lib)
    area = estimate_area(kernel, design, lib)
    return report.throughput_ops / area.total_mm2
