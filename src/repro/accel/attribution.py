"""Gain attribution across specialization concepts (paper Fig 14).

For each kernel we find the best design point at the target node, then
ablate one ingredient at a time:

* **CMOS saving** — rerun the best design at the 45nm baseline node;
* **partitioning** — force the partition factor back to 1;
* **simplification** — force the simplification degree back to 1;
* **heterogeneity** — disable operation fusion.

The ratio of the best point's metric to each ablation's metric is that
concept's multiplicative factor; shares are the log-space normalisation of
the factors (they stack to 100%, matching the figure's "% Gain" bars).

The figure's CSR marker is the CMOS-*independent* share of the gain: the
product of the simplification and heterogeneity factors.  CMOS saving is
CMOS-dependent by definition; partitioning is CMOS-dependent too because the
replicated lanes are paid for with transistors (the paper's stated reason
Fig 14 CSR is low).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accel.design import DesignPoint, baseline_design
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.accel.sweep import ScheduleCache, default_design_grid
from repro.accel.trace import TracedKernel
from repro.obs.log import get_logger, kv
from repro.obs.trace import span

logger = get_logger("accel.attribution")

#: The concepts Fig 14 stacks, in the figure's legend order.
CONCEPTS: Tuple[str, ...] = (
    "cmos_saving",
    "heterogeneity",
    "simplification",
    "partitioning",
)


@dataclass(frozen=True)
class GainAttribution:
    """Fig 14 row for one kernel and one target metric."""

    kernel: str
    metric: str
    baseline: DesignPoint
    best: DesignPoint
    total_gain: float
    factors: Dict[str, float]

    @property
    def shares(self) -> Dict[str, float]:
        """Percentage share of each concept (log-space, sums to 100)."""
        logs = {
            concept: max(0.0, math.log(factor))
            for concept, factor in self.factors.items()
        }
        total = sum(logs.values())
        if total == 0.0:
            return {concept: 0.0 for concept in logs}
        return {concept: 100.0 * value / total for concept, value in logs.items()}

    @property
    def csr(self) -> float:
        """CMOS-independent gain: simplification x heterogeneity factors."""
        return self.factors["simplification"] * self.factors["heterogeneity"]


def _metric(report: PowerReport, metric: str) -> float:
    if metric == "throughput":
        return report.throughput_ops
    if metric == "energy_efficiency":
        return report.energy_efficiency
    raise ValueError(f"unknown attribution metric {metric!r}")


def find_best_design(
    kernel: TracedKernel,
    metric: str,
    node_nm: float = 5.0,
    library: Optional[ResourceLibrary] = None,
    partitions: Optional[Sequence[int]] = None,
    simplifications: Optional[Sequence[int]] = None,
    cache: Optional[ScheduleCache] = None,
) -> Tuple[DesignPoint, PowerReport]:
    """Grid-search the best design for *metric* at *node_nm*.

    *cache* lets callers share one (possibly persistent-backed)
    :class:`ScheduleCache` across the search and later ablations.
    """
    lib = library if library is not None else ResourceLibrary()
    grid = default_design_grid(
        nodes=[node_nm],
        partitions=partitions,
        simplifications=simplifications,
        heterogeneity=True,
    )
    if cache is None:
        cache = ScheduleCache(kernel, lib)
    best_design = None
    best_report = None
    best_value = -math.inf
    for design in grid:
        report = evaluate_design(kernel, design, lib, precomputed=cache.get(design))
        value = _metric(report, metric)
        if value > best_value:
            best_value = value
            best_design = design
            best_report = report
    assert best_design is not None and best_report is not None
    return best_design, best_report


def attribute_gains(
    kernel: TracedKernel,
    metric: str = "throughput",
    node_nm: float = 5.0,
    baseline_node_nm: float = 45.0,
    library: Optional[ResourceLibrary] = None,
    partitions: Optional[Sequence[int]] = None,
    simplifications: Optional[Sequence[int]] = None,
    cache: Optional[ScheduleCache] = None,
) -> GainAttribution:
    """Compute the Fig 14 attribution for one kernel.

    *partitions*/*simplifications* default to the full Table III ranges;
    tests pass reduced ranges for speed.  *cache* (optionally backed by the
    persistent store) is shared between the best-design search and the
    ablation evaluations; by default a fresh in-memory one is used.
    """
    lib = library if library is not None else ResourceLibrary()
    if cache is None:
        cache = ScheduleCache(kernel, lib)
    with span("attribute", kernel=kernel.name, metric=metric):
        base_design = baseline_design(baseline_node_nm)
        base_report = evaluate_design(kernel, base_design, lib)
        base_value = _metric(base_report, metric)

        best_design, best_report = find_best_design(
            kernel, metric, node_nm, lib, partitions, simplifications, cache=cache
        )
        best_value = _metric(best_report, metric)

        def ablated_value(design: DesignPoint) -> float:
            report = evaluate_design(
                kernel, design, lib, precomputed=cache.get(design)
            )
            return _metric(report, metric)

        ablations = {
            "cmos_saving": best_design.with_node(baseline_node_nm),
            "partitioning": best_design.with_partition(1),
            "simplification": best_design.with_simplification(1),
            "heterogeneity": best_design.without_heterogeneity(),
        }
        factors = {
            concept: max(1.0, best_value / ablated_value(design))
            for concept, design in ablations.items()
        }
    logger.debug(
        "attribute.done %s",
        kv(kernel=kernel.name, metric=metric, total_gain=best_value / base_value),
    )
    return GainAttribution(
        kernel=kernel.name,
        metric=metric,
        baseline=base_design,
        best=best_design,
        total_gain=best_value / base_value,
        factors=factors,
    )


def attribute_all(
    kernels: Sequence[TracedKernel],
    metric: str = "throughput",
    jobs: int = 1,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    **kwargs,
) -> List[GainAttribution]:
    """Fig 14 over a kernel suite, in the given order.

    With the default arguments this is the plain serial loop.  ``jobs != 1``
    or any cache option routes through
    :class:`repro.accel.engine.SweepEngine`, fanning kernels out across
    worker processes and persisting schedules on disk; attribution values
    are identical to the serial loop for any ``jobs``.
    """
    if jobs != 1 or cache_dir is not None or use_cache:
        from repro.accel.engine import SweepEngine

        engine = SweepEngine(
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=True if use_cache is None else use_cache,
        )
        return engine.attribute_all(kernels, metric=metric, **kwargs)
    return [attribute_gains(kernel, metric=metric, **kwargs) for kernel in kernels]


def attribution_table(
    kernels: Sequence[TracedKernel],
    metric: str = "throughput",
    **kwargs,
) -> List[GainAttribution]:
    """Fig 14 over a kernel suite, in the given order (serial alias)."""
    return attribute_all(kernels, metric=metric, **kwargs)
