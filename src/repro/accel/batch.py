"""Vectorized batch evaluation of whole design-point grids (Fig 13/14).

The scalar pipeline — :func:`repro.accel.power.evaluate_design` behind
:class:`repro.accel.sweep.ScheduleCache` — walks a Table III grid one
design point at a time: every point pays a memo lookup, a per-op cost-table
walk, and a ``PowerReport`` construction, and every structural miss pays a
full list-scheduler run that re-derives the fusion macro DAG from scratch.
This module evaluates the same grid as array math in three stages:

1. **Structural dedup** — a grid collapses onto its unique structural keys
   ``(partition, fusion_window, latency_extra)``, the only parameters a
   :class:`~repro.accel.scheduler.Schedule` depends on.  A full Table III
   grid of thousands of points typically has only ~a hundred structures.

2. **Amortized scheduling** — the fusion pre-pass, macro-DAG construction
   and longest-path priorities depend only on the fusion window (and the
   priorities additionally on the extra pipeline latency), not on the
   partition factor, so :class:`MacroGraph` computes them once per window
   and replays only the resource-constrained event loop per structure.
   Partitions at or beyond the saturation point (every functional-unit
   class fully provisioned) skip the event loop entirely: the makespan is
   the critical path.  Schedules still flow through the shared
   :class:`~repro.accel.sweep.ScheduleCache`, so the in-memory memo and the
   persistent on-disk store keep working unchanged.

3. **Broadcast power evaluation** — per-node/per-degree clock, energy- and
   leakage-scale factors are precomputed from :class:`ResourceLibrary`
   into dense lookup tables, and the per-structure cycle/energy/leakage
   vectors broadcast across the node × simplification plane as numpy
   float64 arrays.  :class:`BatchResult` holds the column arrays;
   ``PowerReport`` objects are materialized only at the collection
   boundary (:meth:`BatchResult.reports`).

**Bit-identity contract.**  The scalar path is the correctness oracle:
for every design point the batched result is *bit-identical* to
``evaluate_design(kernel, design, library)`` — same cycles, same energy,
same leakage, and therefore the same derived runtime/power/gain numbers.
Float operations are replayed in the scalar path's exact association and
summation order (IEEE-754 doubles either way), and schedules come from the
same scheduler semantics (property-tested against
:func:`repro.accel.scheduler.schedule`).  ``tests/accel/test_batch.py``
fuzzes this contract with random DFGs × random grids, and ``repro check``
asserts it on a reference grid.

The batch path does not model banked memory (``banked_memory=True`` is a
direct-:func:`~repro.accel.scheduler.schedule` feature only); no sweep
path uses banking.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accel.design import DesignPoint
from repro.accel.power import PowerReport
from repro.accel.resources import OpClass, ResourceLibrary, op_class
from repro.accel.scheduler import Schedule, _fuse_chains, _node_op
from repro.accel.sweep import ScheduleCache
from repro.accel.trace import TracedKernel
from repro.obs.metrics import metrics
from repro.obs.trace import span

__all__ = ["BatchEvaluator", "BatchResult", "MacroGraph", "evaluate_batch"]

#: Functional-unit classes in declaration order — the iteration order the
#: scalar path's ``provisioned`` dict and leakage sum use.
_CLASS_LIST: Tuple[OpClass, ...] = tuple(OpClass)


class MacroGraph:
    """Fusion-contracted macro DAG of one kernel at one fusion window.

    Precomputes everything the list scheduler re-derives per call that does
    not depend on the partition factor: the fusion chains, the deduplicated
    macro DAG in dense arrays, per-class demand, and (per extra-latency
    value) the longest-path priorities and critical path.
    :meth:`schedule` then replays only the event-driven resource loop — or
    skips it outright for saturated partitions — producing a
    :class:`Schedule` bit-identical to
    :func:`repro.accel.scheduler.schedule` with ``banked_memory=False``.
    """

    def __init__(self, dfg, library: ResourceLibrary, fusion_window: int):
        self.dfg = dfg
        self.library = library
        self.fusion_window = fusion_window

        macro_of = _fuse_chains(dfg, fusion_window)
        members: Dict[int, List[int]] = {}
        for nid, macro in macro_of.items():
            members.setdefault(macro, []).append(nid)
        #: Macro ids (chain heads) in the scheduler's ``members`` order.
        self.macros: List[int] = list(members)
        self.n_macros = len(members)
        self.fused_away = len(dfg) - len(members)

        size = (max(dfg.node_ids()) + 1) if len(dfg) else 0
        self._size = size
        class_index = {klass: i for i, klass in enumerate(_CLASS_LIST)}
        #: Functional-unit class index per macro id (-1 for non-heads).
        self.class_of: List[int] = [-1] * size
        for m in self.macros:
            self.class_of[m] = class_index[op_class(_node_op(dfg, m))]
        #: Macros per class, in class declaration order.
        self.demand: List[int] = [0] * len(_CLASS_LIST)
        for m in self.macros:
            self.demand[self.class_of[m]] += 1
        #: Partition factor beyond which every pool is fully provisioned.
        self.saturation = max(self.demand) if self.macros else 1

        # Deduplicated macro DAG (sets collapse parallel DFG edges, exactly
        # as the scheduler's macro_preds/macro_succs sets do).
        succ_sets: Dict[int, set] = {m: set() for m in self.macros}
        pred_count: List[int] = [0] * size
        for src, dst in dfg.edges():
            ms, md = macro_of[src], macro_of[dst]
            if ms != md and md not in succ_sets[ms]:
                succ_sets[ms].add(md)
                pred_count[md] += 1
        self.succs: List[Tuple[int, ...]] = [()] * size
        for m, succ in succ_sets.items():
            self.succs[m] = tuple(succ)
        self.pred_count = pred_count

        # One topological order over macros, reused for every priority pass.
        indeg = pred_count[:]
        stack = [m for m in self.macros if indeg[m] == 0]
        order: List[int] = []
        while stack:
            m = stack.pop()
            order.append(m)
            for s in self.succs[m]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        assert len(order) == self.n_macros, "macro DAG has a cycle"
        self._topo = order

        #: Base latency per class (cycles at degree <= knee).
        self.class_latency: List[int] = [
            library.costs(klass).latency_cycles for klass in _CLASS_LIST
        ]
        # (latency per macro id, priority per macro id, critical path) per
        # latency_extra value, filled lazily.
        self._plans: Dict[int, Tuple[List[int], List[int], int]] = {}

        # Scalar-path op statistics: identical for every structure of a
        # kernel (they depend only on the DFG), computed once here with the
        # scheduler's exact iteration order.
        op_counts: Dict[str, int] = {}
        for nid in dfg.node_ids():
            op = _node_op(dfg, nid)
            op_counts[op] = op_counts.get(op, 0) + 1
        self.op_counts = op_counts

    def _plan(self, latency_extra: int) -> Tuple[List[int], List[int], int]:
        """(latency, priority) per macro id and the critical path length."""
        plan = self._plans.get(latency_extra)
        if plan is not None:
            return plan
        latency = [0] * self._size
        for m in self.macros:
            latency[m] = self.class_latency[self.class_of[m]] + latency_extra
        priority = [0] * self._size
        critical = 0
        succs = self.succs
        for m in reversed(self._topo):
            down = 0
            for s in succs[m]:
                p = priority[s]
                if p > down:
                    down = p
            p = latency[m] + down
            priority[m] = p
            if p > critical:
                critical = p
        plan = (latency, priority, critical)
        self._plans[latency_extra] = plan
        return plan

    def _provisioned(self, partition: int) -> Dict[OpClass, int]:
        provisioned: Dict[OpClass, int] = {}
        for i, klass in enumerate(_CLASS_LIST):
            count = self.demand[i]
            if count:
                provisioned[klass] = min(partition, count)
        return provisioned

    def _event_loop(
        self, partition: int, latency: List[int], priority: List[int]
    ) -> int:
        """The resource-constrained event loop over dense arrays.

        Heap entries keep the scheduler's exact ``(ready, -priority, id)``
        tie-break, so the evaluation order — and with it the makespan under
        contention — matches :func:`repro.accel.scheduler.schedule`.
        """
        heappush, heappop = heapq.heappush, heapq.heappop
        remaining = self.pred_count[:]
        ready = [0.0] * self._size
        pools: List[Optional[List[float]]] = [None] * len(_CLASS_LIST)
        for i, count in enumerate(self.demand):
            if count:
                pools[i] = [0.0] * min(partition, count)
        heap = [(0.0, -priority[m], m) for m in self.macros if remaining[m] == 0]
        heapq.heapify(heap)
        succs = self.succs
        class_of = self.class_of
        makespan = 0.0
        while heap:
            ready_at, _, m = heappop(heap)
            pool = pools[class_of[m]]
            unit_free = heappop(pool)
            start = ready_at if ready_at >= unit_free else unit_free
            finish = start + latency[m]
            heappush(pool, finish)
            if finish > makespan:
                makespan = finish
            for s in succs[m]:
                if ready[s] < finish:
                    ready[s] = finish
                remaining[s] -= 1
                if remaining[s] == 0:
                    heappush(heap, (ready[s], -priority[s], s))
        return int(makespan)

    def schedule(self, partition: int, latency_extra: int = 0) -> Schedule:
        """Schedule one structural configuration (fast path).

        Bit-identical to ``scheduler.schedule(dfg, partition, library,
        fusion_window, latency_extra)``: past the saturation point every
        pool is fully provisioned, start times degenerate to ready times,
        and the makespan *is* the critical path, so the event loop is
        skipped outright.
        """
        if partition < 1:
            raise ValueError(f"partition must be >= 1, got {partition}")
        latency, priority, critical = self._plan(latency_extra)
        if partition >= self.saturation:
            cycles = critical
        else:
            cycles = self._event_loop(partition, latency, priority)
        return Schedule(
            kernel=self.dfg.name,
            cycles=cycles,
            op_counts=dict(self.op_counts),
            provisioned=self._provisioned(partition),
            n_macros=self.n_macros,
            fused_away=self.fused_away,
        )


@dataclass(frozen=True)
class BatchResult:
    """Column-oriented result of one batched grid evaluation.

    The arrays are aligned with ``designs``; every scalar is bit-identical
    to the corresponding :class:`PowerReport` field of the scalar path.
    ``PowerReport`` objects exist only after :meth:`reports` — engine
    workers ship :class:`BatchResult` columns between processes and
    materialize at the collection boundary.
    """

    kernel: str
    designs: Tuple[DesignPoint, ...]
    cycles: np.ndarray
    clock_mhz: np.ndarray
    dynamic_energy_nj: np.ndarray
    leakage_power_w: np.ndarray
    total_ops: np.ndarray
    #: Unique structural configurations behind the batch.
    structures: int = 0

    def __len__(self) -> int:
        return len(self.designs)

    def runtime_s(self) -> np.ndarray:
        """Wall-clock runtimes, matching ``PowerReport.runtime_s``."""
        return self.cycles / (self.clock_mhz * 1e6)

    def reports(self) -> Tuple[PowerReport, ...]:
        """Materialize one :class:`PowerReport` per design point."""
        kernel = self.kernel
        return tuple(
            PowerReport(
                kernel=kernel,
                design=design,
                cycles=cycles,
                clock_mhz=clock,
                dynamic_energy_nj=dynamic,
                leakage_power_w=leakage,
                total_ops=ops,
            )
            for design, cycles, clock, dynamic, leakage, ops in zip(
                self.designs,
                self.cycles.tolist(),
                self.clock_mhz.tolist(),
                self.dynamic_energy_nj.tolist(),
                self.leakage_power_w.tolist(),
                self.total_ops.tolist(),
            )
        )


def _empty_result(kernel: str) -> BatchResult:
    zero_f = np.zeros(0, dtype=np.float64)
    zero_i = np.zeros(0, dtype=np.int64)
    return BatchResult(
        kernel=kernel,
        designs=(),
        cycles=zero_i,
        clock_mhz=zero_f,
        dynamic_energy_nj=zero_f,
        leakage_power_w=zero_f,
        total_ops=zero_i,
        structures=0,
    )


class BatchEvaluator:
    """Evaluate whole design grids of one kernel as array math.

    Owns (or shares) a :class:`ScheduleCache` — so the persistent on-disk
    store and the memo counters behave exactly as on the scalar path — and
    memoizes the per-window :class:`MacroGraph`s and the per-node/degree
    scale tables across :meth:`evaluate` calls, which is what makes engine
    workers and the serve layer cheap on repeat traffic.

    Dedup accounting: each unique structure pays one real cache lookup;
    the other points of the same structure are recorded as memo hits
    (:meth:`ScheduleCache.record_coalesced`), so ``memo_hits +
    memo_misses`` still equals the number of design points and stats stay
    comparable with the scalar path.
    """

    def __init__(
        self,
        kernel: TracedKernel,
        library: Optional[ResourceLibrary] = None,
        cache: Optional[ScheduleCache] = None,
    ):
        self.kernel = kernel
        if cache is not None:
            self.library = cache.library
            if library is not None and library is not cache.library:
                raise ValueError(
                    "BatchEvaluator(cache=...) already carries a library; "
                    "pass one or the other, not both"
                )
        else:
            self.library = library if library is not None else ResourceLibrary()
        self.cache = (
            cache if cache is not None else ScheduleCache(kernel, self.library)
        )
        self._graphs: Dict[int, MacroGraph] = {}
        # Exact library scalars, memoized per unique coordinate.
        self._window: Dict[Tuple[float, bool], int] = {}
        self._extra: Dict[int, int] = {}
        self._clock: Dict[float, float] = {}
        self._escale: Dict[Tuple[float, int], float] = {}
        self._lscale: Dict[Tuple[float, int], float] = {}
        self._base_leak: List[float] = [
            self.library.costs(klass).leakage_w_per_unit for klass in _CLASS_LIST
        ]
        # Per-structure scalars derived from resolved Schedules.
        self._struct_rows: Dict[Tuple[int, int, int], Tuple[int, int, float, List[int]]] = {}

    def macro_graph(self, fusion_window: int) -> MacroGraph:
        graph = self._graphs.get(fusion_window)
        if graph is None:
            graph = MacroGraph(self.kernel.dfg, self.library, fusion_window)
            self._graphs[fusion_window] = graph
        return graph

    # -- per-structure scalars -------------------------------------------------

    def _base_dynamic_nj(self, sched: Schedule) -> float:
        """Pre-scale dynamic energy, in the scalar path's summation order."""
        table = self.library.op_energy_table()
        dynamic_nj = 0.0
        for op, count in sched.op_counts.items():
            if op in ("load", "store"):
                continue  # charged via access counts below
            energy = table.get(op)
            if energy is None:
                # Unknown op: keep op_class's InvalidDesignPointError.
                energy = self.library.costs(op_class(op)).energy_nj
            dynamic_nj += energy * count
        dynamic_nj += (
            self.library.costs(OpClass.MEMORY).energy_nj
            * self.kernel.total_accesses
        )
        return dynamic_nj

    def _structure_row(
        self, key: Tuple[int, int, int]
    ) -> Tuple[int, int, float, List[int]]:
        """(cycles, total_ops, base_dynamic_nj, units-per-class) of *key*."""
        row = self._struct_rows.get(key)
        if row is not None:
            return row
        partition, window, extra = key
        # The macro graph is built lazily inside the compute callback, so a
        # memo or store hit never pays for fusion/DAG construction.
        sched = self.cache.get_structural(
            partition,
            window,
            extra,
            compute=lambda: self.macro_graph(window).schedule(partition, extra),
        )
        units = [0] * len(_CLASS_LIST)
        for i, klass in enumerate(_CLASS_LIST):
            units[i] = sched.provisioned.get(klass, 0)
        row = (sched.cycles, sched.total_ops, self._base_dynamic_nj(sched), units)
        self._struct_rows[key] = row
        return row

    # -- the vectorized pass ---------------------------------------------------

    def evaluate(self, designs: Sequence[DesignPoint]) -> BatchResult:
        """Batched equivalent of per-point ``evaluate_design`` over *designs*."""
        design_list = tuple(designs)
        n = len(design_list)
        if n == 0:
            return _empty_result(self.kernel.name)
        start = perf_counter()
        with span("batch.evaluate", points=n):
            lib = self.library
            cache = self.cache
            window_of, extra_of = self._window, self._extra
            clock_of, escale_of, lscale_of = (
                self._clock,
                self._escale,
                self._lscale,
            )
            partition_cap = cache.partition_cap

            # Factorize the grid: per-point structural key plus the exact
            # library scalars, all memoized per unique coordinate so the
            # library is consulted once per distinct value, not per point.
            struct_index: Dict[Tuple[int, int, int], int] = {}
            struct_keys: List[Tuple[int, int, int]] = []
            struct_idx = np.empty(n, dtype=np.intp)
            clock_v = np.empty(n, dtype=np.float64)
            escale_v = np.empty(n, dtype=np.float64)
            lscale_v = np.empty(n, dtype=np.float64)
            for i, design in enumerate(design_list):
                node = design.node_nm
                wkey = (node, design.heterogeneity)
                window = window_of.get(wkey)
                if window is None:
                    window = lib.fusion_window(node, design.heterogeneity)
                    window_of[wkey] = window
                extra = extra_of.get(design.simplification)
                if extra is None:
                    extra = lib.latency_extra(design.simplification)
                    extra_of[design.simplification] = extra
                key = (min(design.partition, partition_cap), window, extra)
                idx = struct_index.get(key)
                if idx is None:
                    idx = len(struct_keys)
                    struct_index[key] = idx
                    struct_keys.append(key)
                struct_idx[i] = idx

                clock = clock_of.get(node)
                if clock is None:
                    clock = lib.clock_mhz(node)
                    clock_of[node] = clock
                clock_v[i] = clock
                skey = (node, design.simplification)
                escale = escale_of.get(skey)
                if escale is None:
                    escale = lib.energy_scale(node, design.simplification)
                    escale_of[skey] = escale
                escale_v[i] = escale
                lscale = lscale_of.get(skey)
                if lscale is None:
                    lscale = lib.leakage_scale(node, design.simplification)
                    lscale_of[skey] = lscale
                lscale_v[i] = lscale

            # Resolve every unique structure once (memo -> store -> fast
            # scheduler); coalesced points count as memo hits.  Structures
            # already resolved by an earlier evaluate() call skip the cache
            # lookup entirely, so they coalesce as well — keeping
            # ``memo_hits + memo_misses == len(designs)`` on every call.
            n_structs = len(struct_keys)
            fresh = sum(1 for key in struct_keys if key not in self._struct_rows)
            cycles_s = np.empty(n_structs, dtype=np.int64)
            ops_s = np.empty(n_structs, dtype=np.int64)
            base_dyn_s = np.empty(n_structs, dtype=np.float64)
            units_s = np.empty((n_structs, len(_CLASS_LIST)), dtype=np.float64)
            for j, key in enumerate(struct_keys):
                cycles, total_ops, base_dyn, units = self._structure_row(key)
                cycles_s[j] = cycles
                ops_s[j] = total_ops
                base_dyn_s[j] = base_dyn
                units_s[j] = units
            cache.record_coalesced(n - fresh)

            # Broadcast the per-structure vectors across the node x
            # simplification plane.  Association/summation order mirrors
            # the scalar path exactly:
            #   dynamic = base_dynamic * energy_scale
            #   leakage = sum_k units_k * (base_leak_k * leakage_scale)
            with span("evaluate", points=n, structures=n_structs):
                cycles_v = cycles_s[struct_idx]
                ops_v = ops_s[struct_idx]
                dynamic_v = base_dyn_s[struct_idx] * escale_v
                leakage_v = np.zeros(n, dtype=np.float64)
                units_v = units_s[struct_idx]
                for k, base in enumerate(self._base_leak):
                    leakage_v += units_v[:, k] * (base * lscale_v)

            registry = metrics()
            registry.counter("batch.points").inc(n)
            registry.counter("batch.structures").inc(n_structs)
            registry.histogram("batch.evaluate_s").observe(perf_counter() - start)
            return BatchResult(
                kernel=self.kernel.name,
                designs=design_list,
                cycles=cycles_v,
                clock_mhz=clock_v,
                dynamic_energy_nj=dynamic_v,
                leakage_power_w=leakage_v,
                total_ops=ops_v,
                structures=n_structs,
            )


def evaluate_batch(
    kernel: TracedKernel,
    designs: Sequence[DesignPoint],
    library: Optional[ResourceLibrary] = None,
    cache: Optional[ScheduleCache] = None,
) -> BatchResult:
    """One-shot batched evaluation of *designs* (see :class:`BatchEvaluator`).

    Build a :class:`BatchEvaluator` directly to amortize macro graphs and
    scale tables across repeated grids of the same kernel.
    """
    return BatchEvaluator(kernel, library=library, cache=cache).evaluate(designs)
