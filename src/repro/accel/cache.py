"""Persistent, content-addressed caching for the DSE pipeline.

Tracing a kernel and scheduling its DFG are by far the most expensive
stages of the Fig 13/14 design-space exploration, yet both are pure
functions of their inputs: a schedule depends only on the DFG structure,
the resource library, and the structural design parameters (partition
factor, fusion window, extra pipeline latency).  This module keys those
artifacts by content fingerprints and persists them on disk, so repeated
sweeps — across processes and across runs — skip straight to the power
model.

Layout: one pickle file per entry under ``<cache-dir>/<kk>/<key>.pkl``
where ``key`` is a SHA-256 over the fingerprint parts and ``kk`` its first
two hex digits.  Every entry embeds :data:`CACHE_VERSION`; bumping the
version (or any fingerprinted input changing) invalidates stale entries,
and corrupted or unreadable files are treated as misses and recomputed.

The cache directory resolves, in order: an explicit argument, the
``REPRO_CACHE_DIR`` environment variable, then ``~/.cache/accelerator-wall``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.accel.resources import OpClass, ResourceLibrary
from repro.accel.scheduler import Schedule
from repro.accel.trace import TracedKernel
from repro.dfg.graph import Dfg
from repro.obs.log import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import span

logger = get_logger("accel.cache")

#: Format version embedded in every entry; bump to invalidate the world.
CACHE_VERSION: int = 1

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR: str = "REPRO_CACHE_DIR"

PathLike = Union[str, Path]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/accelerator-wall``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "accelerator-wall"


def resolve_cache_dir(directory: Optional[PathLike] = None) -> Path:
    """Explicit *directory* if given, else :func:`default_cache_dir`."""
    if directory is not None:
        return Path(directory).expanduser()
    return default_cache_dir()


# -- content fingerprints -----------------------------------------------------


def _digest(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return h.hexdigest()


def dfg_fingerprint(dfg: Dfg) -> str:
    """Stable hash of a DFG's structure (nodes, ops, labels, edges)."""
    h = hashlib.sha256()
    for nid in sorted(dfg.node_ids()):
        node = dfg.node(nid)
        h.update(
            f"{nid}:{node.kind.value}:{node.op or ''}:{node.label or ''}\n".encode()
        )
    for src, dst in sorted(dfg.edges()):
        h.update(f"{src}>{dst}\n".encode())
    return h.hexdigest()


def kernel_fingerprint(kernel: TracedKernel) -> str:
    """Hash of a traced kernel: name, DFG structure, memory-access counts.

    The concrete input data enters through the DFG (data-dependent control
    flow changes the traced structure) and the access counts, so kernels
    traced from different input seeds fingerprint differently whenever the
    difference is observable by the scheduler or power model.
    """
    return _digest(
        (
            kernel.name,
            str(kernel.memory_reads),
            str(kernel.memory_writes),
            dfg_fingerprint(kernel.dfg),
        )
    )


def library_fingerprint(library: ResourceLibrary) -> str:
    """Hash of a resource library: per-class costs plus scaling anchors."""
    parts = []
    for klass in OpClass:
        costs = library.costs(klass)
        parts.append(
            f"{klass.value}:{costs.latency_cycles}:{costs.energy_nj!r}"
            f":{costs.leakage_w_per_unit!r}"
        )
    table = library.scaling
    for node in sorted(table.nodes):
        s = table.scaling(node)
        parts.append(
            f"{node!r}:{s.vdd!r}:{s.frequency!r}:{s.capacitance!r}"
            f":{s.leakage_power!r}"
        )
    return _digest(parts)


# -- the on-disk store -------------------------------------------------------


class DiskCache:
    """Content-addressed pickle store; misses on corruption or staleness.

    ``get`` never raises on bad entries: unreadable, truncated, or
    version-mismatched files count as misses (and are best-effort deleted)
    so a damaged cache degrades to recomputation, never to wrong results.
    ``put`` writes atomically (temp file + rename), making the cache safe
    for concurrent writers — the engine's worker processes — and is
    likewise non-fatal on *any* failure: I/O errors are silent, while
    serialization failures (an unpicklable value, a ``__reduce__`` that
    raises, recursion blowups on deep DFGs) are counted in ``drops`` and
    the value is simply not cached.

    *name* labels this store's metrics family (``cache.<name>.hits`` …)
    in the process-wide :func:`repro.obs.metrics.metrics` registry.
    """

    def __init__(
        self,
        directory: PathLike,
        version: int = CACHE_VERSION,
        name: str = "disk",
    ):
        self.directory = Path(directory)
        self.version = version
        self.name = name
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Values that could not be serialized and were dropped by ``put``.
        self.drops = 0

    def _count(self, event: str) -> None:
        metrics().counter(f"cache.{self.name}.{event}").inc()

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """Stored value for *key*, or ``None`` on any kind of miss."""
        path = self.path_for(key)
        with span("cache.get", store=self.name), metrics().histogram(
            f"cache.{self.name}.get_s"
        ).time():
            try:
                with open(path, "rb") as handle:
                    entry = pickle.load(handle)
            except FileNotFoundError:
                self.misses += 1
                self._count("misses")
                return None
            except Exception:  # corrupt pickle, permission error, bad EOF...
                self.misses += 1
                self._count("misses")
                self._discard(path)
                return None
            if (
                not isinstance(entry, tuple)
                or len(entry) != 2
                or entry[0] != self.version
            ):
                self.misses += 1
                self._count("misses")
                self._discard(path)
                return None
            self.hits += 1
            self._count("hits")
            return entry[1]

    def put(self, key: str, value) -> None:
        """Atomically store *value* under *key*; failures are non-fatal."""
        path = self.path_for(key)
        with span("cache.put", store=self.name), metrics().histogram(
            f"cache.{self.name}.put_s"
        ).time():
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        pickle.dump((self.version, value), handle)
                    os.replace(tmp, path)
                except BaseException:
                    self._discard(Path(tmp))
                    raise
                self.writes += 1
                self._count("writes")
            except OSError:
                pass  # caching is best-effort; never fail the computation
            except Exception as exc:
                # Unpicklable value: PicklingError, a RuntimeError raised by
                # a __reduce__, RecursionError on a deep DFG...  The temp
                # file was already cleaned up above; record the drop and
                # carry on — a value we cannot cache must never abort the
                # sweep that produced it.
                self.drops += 1
                self._count("drops")
                logger.warning(
                    "cache.put.dropped %s",
                    kv(store=self.name, key=key, error=type(exc).__name__),
                )

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


class ScheduleStore:
    """Persistent schedules keyed by kernel/library/structural fingerprints.

    The key covers exactly the inputs :func:`repro.accel.scheduler.schedule`
    consumes: the DFG (via the kernel fingerprint), the library costs, the
    effective partition factor, fusion window, and extra pipeline latency.
    Node and simplification degree affect only the power model, so design
    points differing only in those share one stored schedule — the same
    structural-reuse rule :class:`repro.accel.sweep.ScheduleCache` applies
    in memory.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        version: int = CACHE_VERSION,
    ):
        self._disk = DiskCache(
            resolve_cache_dir(directory) / "schedules", version, name="schedules"
        )

    @property
    def hits(self) -> int:
        return self._disk.hits

    @property
    def misses(self) -> int:
        return self._disk.misses

    @property
    def writes(self) -> int:
        return self._disk.writes

    @property
    def drops(self) -> int:
        return self._disk.drops

    @staticmethod
    def key(
        kernel_fp: str,
        library_fp: str,
        partition: int,
        fusion_window: int,
        latency_extra: int,
    ) -> str:
        return _digest(
            (
                "schedule",
                kernel_fp,
                library_fp,
                str(partition),
                str(fusion_window),
                str(latency_extra),
            )
        )

    def get(
        self,
        kernel_fp: str,
        library_fp: str,
        partition: int,
        fusion_window: int,
        latency_extra: int,
    ) -> Optional[Schedule]:
        value = self._disk.get(
            self.key(kernel_fp, library_fp, partition, fusion_window, latency_extra)
        )
        return value if isinstance(value, Schedule) else None

    def put(
        self,
        kernel_fp: str,
        library_fp: str,
        partition: int,
        fusion_window: int,
        latency_extra: int,
        schedule: Schedule,
    ) -> None:
        self._disk.put(
            self.key(kernel_fp, library_fp, partition, fusion_window, latency_extra),
            schedule,
        )


class KernelTraceStore:
    """Persistent traced kernels keyed by workload name and build arguments.

    Unlike schedules, a trace cannot be content-fingerprinted before it
    exists, so the key is *declarative*: workload abbreviation plus the
    builder's keyword arguments, salted with :data:`CACHE_VERSION`.  Bump
    the version when tracer or workload semantics change.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        version: int = CACHE_VERSION,
    ):
        self._disk = DiskCache(
            resolve_cache_dir(directory) / "traces", version, name="traces"
        )

    @property
    def hits(self) -> int:
        return self._disk.hits

    @property
    def misses(self) -> int:
        return self._disk.misses

    @property
    def drops(self) -> int:
        return self._disk.drops

    @staticmethod
    def key(name: str, **build_kwargs) -> str:
        parts = ["trace", name]
        for arg in sorted(build_kwargs):
            parts.append(f"{arg}={build_kwargs[arg]!r}")
        return _digest(parts)

    def get(self, name: str, **build_kwargs) -> Optional[TracedKernel]:
        value = self._disk.get(self.key(name, **build_kwargs))
        return value if isinstance(value, TracedKernel) else None

    def put(self, name: str, kernel: TracedKernel, **build_kwargs) -> None:
        self._disk.put(self.key(name, **build_kwargs), kernel)
