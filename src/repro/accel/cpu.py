"""General-purpose processor baseline model.

The paper's specialization argument starts from the inefficiency of
general-purpose chips: per Hameed et al. (cited as [25]) and the TPU paper
(cited as [4]), a CPU spends the overwhelming share of its per-instruction
energy on instruction supply, register files, and control — not on the
arithmetic itself.  This module models that baseline: the same traced
kernel executed as an in-order instruction stream with a fixed per-
instruction overhead energy, so accelerator-vs-CPU comparisons (the TPU
case study, the Bitcoin platform jumps) have a principled denominator.

Defaults: 70pJ per-instruction overhead at 45nm (Hameed et al.'s ~50-70pJ
instruction energy against sub-pJ arithmetic) and a 4-wide in-order issue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.accel.resources import OpClass, ResourceLibrary, op_class
from repro.accel.trace import TracedKernel

#: Per-instruction overhead energy at the 45nm reference node (nJ):
#: fetch, decode, rename/issue, register-file and cache access.
INSTRUCTION_OVERHEAD_NJ: float = 0.070

#: Reference CPU clock at 45nm (MHz); scaled by node speed like the FUs.
CPU_BASE_CLOCK_MHZ: float = 3000.0

#: Static power of a CPU core at 45nm (W).
CPU_CORE_LEAKAGE_W: float = 0.8


@dataclass(frozen=True)
class CpuReport:
    """Execution of a traced kernel on the general-purpose baseline."""

    kernel: str
    node_nm: float
    issue_width: int
    cycles: int
    clock_mhz: float
    dynamic_energy_nj: float
    leakage_power_w: float
    total_ops: int

    @property
    def runtime_s(self) -> float:
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def energy_nj(self) -> float:
        return self.dynamic_energy_nj + self.leakage_power_w * self.runtime_s * 1e9

    @property
    def throughput_ops(self) -> float:
        return self.total_ops / self.runtime_s

    @property
    def energy_efficiency(self) -> float:
        return self.total_ops / (self.energy_nj * 1e-9)

    @property
    def overhead_share(self) -> float:
        """Fraction of dynamic energy spent on instruction overheads."""
        useful = self.dynamic_energy_nj - self._overhead_energy_nj
        return self._overhead_energy_nj / self.dynamic_energy_nj if self.dynamic_energy_nj else 0.0

    # Set by evaluate_on_cpu via object.__setattr__ workaround-free design:
    _overhead_energy_nj: float = 0.0


def evaluate_on_cpu(
    kernel: TracedKernel,
    node_nm: float = 45.0,
    issue_width: int = 4,
    library: Optional[ResourceLibrary] = None,
    overhead_nj: float = INSTRUCTION_OVERHEAD_NJ,
) -> CpuReport:
    """Run *kernel*'s operation stream through the CPU baseline model.

    Every DFG vertex becomes one dynamic instruction.  Cycles are the
    serial issue time (``ops / issue_width``); energy is the sum of the
    real operation energies plus the per-instruction overhead, both scaled
    by the node's device energy.
    """
    if issue_width < 1:
        raise ValueError(f"issue width must be >= 1, got {issue_width}")
    lib = library if library is not None else ResourceLibrary()
    total_ops = len(kernel.dfg)
    cycles = math.ceil(total_ops / issue_width)
    energy_scale = lib.energy_scale(node_nm, simplification=1)

    op_energy = 0.0
    for node in kernel.dfg.nodes():
        op = node.op if node.op else "load"
        op_energy += lib.costs(op_class(op)).energy_nj
    op_energy += lib.costs(OpClass.MEMORY).energy_nj * kernel.total_accesses
    overhead_energy = overhead_nj * total_ops
    dynamic = (op_energy + overhead_energy) * energy_scale

    rel = lib.scaling.relative(node_nm)
    return CpuReport(
        kernel=kernel.name,
        node_nm=float(node_nm),
        issue_width=issue_width,
        cycles=cycles,
        clock_mhz=CPU_BASE_CLOCK_MHZ * rel.frequency,
        dynamic_energy_nj=dynamic,
        leakage_power_w=CPU_CORE_LEAKAGE_W * rel.leakage_power,
        total_ops=total_ops,
        _overhead_energy_nj=overhead_energy * energy_scale,
    )
