"""Accelerator design point: the coordinates of the Table III sweep."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cmos.nodes import parse_node
from repro.errors import InvalidDesignPointError

#: Table III ranges.
MAX_PARTITION_FACTOR: int = 524288
MAX_SIMPLIFICATION_DEGREE: int = 13
SWEEP_NODES: tuple = (45.0, 32.0, 22.0, 14.0, 10.0, 7.0, 5.0)


@dataclass(frozen=True)
class DesignPoint:
    """One accelerator configuration in the CMOS-specialization sweep.

    Parameters
    ----------
    node_nm:
        CMOS process node.
    partition:
        Partitioning factor: parallel functional units per class and
        scratchpad banks (1, 2, 4, ... 524288 in the paper's sweep).
    simplification:
        Simplification degree 1..13: datapath narrowing plus pipelining of
        functional units and registers.
    heterogeneity:
        Whether computation heterogeneity (operation fusion into
        problem-specific super nodes) is applied.
    """

    node_nm: float
    partition: int = 1
    simplification: int = 1
    heterogeneity: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_nm", parse_node(self.node_nm))
        if not (1 <= self.partition <= MAX_PARTITION_FACTOR):
            raise InvalidDesignPointError(
                f"partition factor {self.partition} outside "
                f"[1, {MAX_PARTITION_FACTOR}]"
            )
        if self.partition & (self.partition - 1):
            raise InvalidDesignPointError(
                f"partition factor must be a power of two, got {self.partition}"
            )
        if not (1 <= self.simplification <= MAX_SIMPLIFICATION_DEGREE):
            raise InvalidDesignPointError(
                f"simplification degree {self.simplification} outside "
                f"[1, {MAX_SIMPLIFICATION_DEGREE}]"
            )

    def with_node(self, node_nm: float) -> "DesignPoint":
        return replace(self, node_nm=node_nm)

    def with_partition(self, partition: int) -> "DesignPoint":
        return replace(self, partition=partition)

    def with_simplification(self, degree: int) -> "DesignPoint":
        return replace(self, simplification=degree)

    def without_heterogeneity(self) -> "DesignPoint":
        return replace(self, heterogeneity=False)

    def describe(self) -> str:
        hetero = "+hetero" if self.heterogeneity else ""
        return (
            f"{self.node_nm:g}nm/P{self.partition}/S{self.simplification}{hetero}"
        )


def baseline_design(node_nm: float = 45.0) -> DesignPoint:
    """The Fig 14 normalisation point: no partitioning, no simplification.

    Heterogeneity (fusion) stays off too, so every measured gain is relative
    to a plain spatial mapping of the kernel at 45nm.
    """
    return DesignPoint(
        node_nm=node_nm, partition=1, simplification=1, heterogeneity=False
    )
