"""Parallel, persistently-cached design-space exploration engine.

The Fig 13/14 pipeline evaluates thousands of design points per kernel and
sixteen kernels per figure; done naively that is strictly sequential work
in one process, re-scheduling every structural configuration from scratch
each run.  :class:`SweepEngine` removes both bottlenecks:

* **Sharding** — a design grid is split into chunks and fanned out across
  ``jobs`` worker processes (:class:`concurrent.futures.ProcessPoolExecutor`);
  multi-kernel operations (:meth:`SweepEngine.sweep_many`,
  :meth:`SweepEngine.attribute_all`) fan out across kernels instead.
  ``jobs=1`` is the exact serial evaluation order, so results are
  bit-identical regardless of parallelism (the model is deterministic
  float arithmetic and chunk results are merged in submission order).
* **Persistence** — schedules (and traced kernels) are stored in the
  content-addressed on-disk cache (:mod:`repro.accel.cache`), shared by
  all workers and surviving across runs; a warm rerun skips the scheduler
  entirely.
* **Streaming Pareto** — the (runtime, power) frontier is maintained
  incrementally as chunk results arrive (:class:`ParetoAccumulator`), so
  ``SweepResult.pareto_frontier()`` is ready the moment the sweep ends.

Every operation records per-stage wall time and cache hit/miss counters in
a :class:`repro.accel.sweep.SweepStats`, exposed on ``SweepResult.stats``
and accumulated on ``engine.stats`` across the engine's lifetime.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accel.batch import BatchEvaluator, BatchResult
from repro.accel.cache import KernelTraceStore, ScheduleStore, resolve_cache_dir
from repro.accel.design import DesignPoint
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.accel.sweep import (
    ParetoAccumulator,
    ScheduleCache,
    SweepResult,
    SweepStats,
    default_design_grid,
)
from repro.accel.trace import TracedKernel
from repro.obs.log import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import Span, Tracer, get_tracer, set_tracer, span

logger = get_logger("accel.engine")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a jobs request: ``None``/``0``/negative means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# -- worker-process entry points ----------------------------------------------
#
# Module-level functions with a per-process global, so the kernel, library
# and schedule cache are shipped once per worker (executor initializer)
# instead of once per chunk.

_WORKER: Dict[str, object] = {}


def _init_worker_tracer(trace_spans: bool) -> None:
    """Install (or, on fork, reset) this worker process's own tracer.

    With the ``fork`` start method the child inherits the parent's tracer
    *including already-finished parent spans*; shipping those back would
    duplicate them, so the worker always starts from a clean tracer (or
    none at all when the parent is not tracing).
    """
    set_tracer(Tracer() if trace_spans else None)


def _drain_worker_spans() -> List[Span]:
    tracer = get_tracer()
    return tracer.drain() if tracer is not None else []


def _init_sweep_worker(
    kernel: TracedKernel,
    library: ResourceLibrary,
    cache_dir,
    use_cache: bool,
    trace_spans: bool = False,
    vectorize: bool = True,
) -> None:
    _init_worker_tracer(trace_spans)
    store = ScheduleStore(cache_dir) if use_cache else None
    cache = ScheduleCache(kernel, library, store=store)
    _WORKER["kernel"] = kernel
    _WORKER["library"] = library
    _WORKER["cache"] = cache
    # One evaluator per worker process: macro graphs and scale tables are
    # amortized across every chunk the worker receives.
    _WORKER["batch"] = BatchEvaluator(kernel, cache=cache) if vectorize else None


def _sweep_chunk(
    designs: Sequence[DesignPoint],
) -> Tuple[object, Dict[str, float], List[Span]]:
    """Evaluate one chunk in a worker process.

    Returns either a :class:`BatchResult` (vectorized path — the parent
    materializes ``PowerReport`` objects at the collection boundary) or a
    tuple of reports (scalar oracle path), plus the cache-counter delta and
    any worker spans.
    """
    kernel: TracedKernel = _WORKER["kernel"]  # type: ignore[assignment]
    library: ResourceLibrary = _WORKER["library"]  # type: ignore[assignment]
    cache: ScheduleCache = _WORKER["cache"]  # type: ignore[assignment]
    batch: Optional[BatchEvaluator] = _WORKER["batch"]  # type: ignore[assignment]
    before = cache.counters()
    start = perf_counter()
    with span("sweep.chunk", designs=len(designs), kernel=kernel.name):
        if batch is not None:
            payload: object = batch.evaluate(designs)
        else:
            payload = tuple(
                evaluate_design(
                    kernel, design, library, precomputed=cache.get(design)
                )
                for design in designs
            )
    elapsed = perf_counter() - start
    delta = {key: value - before[key] for key, value in cache.counters().items()}
    delta["evaluate_s"] = elapsed - delta["schedule_s"]
    return payload, delta, _drain_worker_spans()


def _sweep_kernel_task(
    kernel: TracedKernel,
    designs: Sequence[DesignPoint],
    library: Optional[ResourceLibrary],
    cache_dir,
    use_cache: bool,
    trace_spans: bool = False,
    vectorize: bool = True,
) -> Tuple[SweepResult, List[Span]]:
    _init_worker_tracer(trace_spans)
    engine = SweepEngine(
        jobs=1, cache_dir=cache_dir, use_cache=use_cache, vectorize=vectorize
    )
    result = engine.sweep(kernel, designs, library)
    return result, _drain_worker_spans()


def _attribute_kernel_task(
    kernel: TracedKernel,
    metric: str,
    node_nm: float,
    baseline_node_nm: float,
    library: Optional[ResourceLibrary],
    partitions: Optional[Sequence[int]],
    simplifications: Optional[Sequence[int]],
    cache_dir,
    use_cache: bool,
    trace_spans: Optional[bool] = None,
):
    """Attribute one kernel; the per-kernel unit of :meth:`attribute_all`.

    *trace_spans* is a tri-state: ``True``/``False`` mean "this is a worker
    process, install a fresh tracer (or none)"; ``None`` means "running
    in-process, leave the caller's tracer alone" — its spans are already
    on the parent trace, so an empty list is shipped back.
    """
    from repro.accel.attribution import attribute_gains

    if trace_spans is not None:
        _init_worker_tracer(trace_spans)
    lib = library if library is not None else ResourceLibrary()
    store = ScheduleStore(cache_dir) if use_cache else None
    cache = ScheduleCache(kernel, lib, store=store)
    start = perf_counter()
    attribution = attribute_gains(
        kernel,
        metric=metric,
        node_nm=node_nm,
        baseline_node_nm=baseline_node_nm,
        library=lib,
        partitions=partitions,
        simplifications=simplifications,
        cache=cache,
    )
    elapsed = perf_counter() - start
    counters = cache.counters()
    counters["evaluate_s"] = elapsed - counters["schedule_s"]
    # Evaluations routed through the cache, plus the uncached 45nm baseline.
    counters["design_points"] = cache.memo_hits + cache.memo_misses + 1
    spans = _drain_worker_spans() if trace_spans is not None else []
    return attribution, counters, spans


class SweepEngine:
    """Sharded, cached executor for sweeps and gain attribution.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (default) runs in-process with the exact
        serial evaluation order; ``None``/``0``/negative uses all cores.
    cache_dir:
        Persistent cache directory (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/accelerator-wall``). Only consulted when *use_cache*.
    use_cache:
        Enable the persistent on-disk schedule/trace cache. In-memory
        structural memoisation is always on regardless.
    chunk_size:
        Design points per work unit when sharding a grid; defaults to an
        even split of roughly four chunks per worker.
    vectorize:
        Evaluate grids through the batched numpy path
        (:class:`repro.accel.batch.BatchEvaluator`) instead of the
        per-point scalar loop. Results are bit-identical either way;
        ``False`` re-enables the scalar correctness oracle.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        use_cache: bool = True,
        chunk_size: Optional[int] = None,
        vectorize: bool = True,
    ):
        self.jobs = resolve_jobs(jobs)
        self.use_cache = bool(use_cache)
        self.cache_dir = resolve_cache_dir(cache_dir) if self.use_cache else None
        self.chunk_size = chunk_size
        self.vectorize = bool(vectorize)
        #: Cumulative stats across every operation this engine ran.
        self.stats = SweepStats(jobs=self.jobs, chunks=0)
        #: Stats of the most recent operation (also on ``SweepResult.stats``).
        self.last_stats: Optional[SweepStats] = None

    # -- cache plumbing -------------------------------------------------------

    def schedule_store(self) -> Optional[ScheduleStore]:
        """A persistent schedule store, or ``None`` when caching is off."""
        return ScheduleStore(self.cache_dir) if self.use_cache else None

    def schedule_cache(
        self, kernel: TracedKernel, library: Optional[ResourceLibrary] = None
    ) -> ScheduleCache:
        """A :class:`ScheduleCache` wired to this engine's persistence."""
        lib = library if library is not None else ResourceLibrary()
        return ScheduleCache(kernel, lib, store=self.schedule_store())

    def trace(self, workload, **build_kwargs) -> TracedKernel:
        """Trace a workload through the persistent kernel-trace cache.

        *workload* is a :class:`repro.workloads.Workload` (anything with
        ``abbrev`` and ``build(**kwargs)``). Cache off → plain build.
        """
        if not self.use_cache:
            with span("trace.build", workload=workload.abbrev):
                return workload.build(**build_kwargs)
        store = KernelTraceStore(self.cache_dir)
        kernel = store.get(workload.abbrev, **build_kwargs)
        if kernel is None:
            with span("trace.build", workload=workload.abbrev):
                kernel = workload.build(**build_kwargs)
            store.put(workload.abbrev, kernel, **build_kwargs)
        return kernel

    # -- sweeps ---------------------------------------------------------------

    def _chunk(self, designs: List[DesignPoint]) -> List[List[DesignPoint]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(designs) / (self.jobs * 4)))
        return [designs[i : i + size] for i in range(0, len(designs), size)]

    def sweep(
        self,
        kernel: TracedKernel,
        designs: Optional[Iterable[DesignPoint]] = None,
        library: Optional[ResourceLibrary] = None,
    ) -> SweepResult:
        """Evaluate *kernel* over *designs* (default: full Table III grid)."""
        return self._sweep(kernel, designs, library, record=True)

    def _sweep(
        self,
        kernel: TracedKernel,
        designs: Optional[Iterable[DesignPoint]] = None,
        library: Optional[ResourceLibrary] = None,
        record: bool = True,
    ) -> SweepResult:
        """:meth:`sweep` body; *record=False* lets :meth:`sweep_many`'s
        serial path account the whole multi-kernel run as one operation
        instead of double-counting each child into ``self.stats``."""
        lib = library if library is not None else ResourceLibrary()
        design_list = (
            list(designs) if designs is not None else default_design_grid()
        )
        tracer = get_tracer()
        start = perf_counter()
        accumulator = ParetoAccumulator()
        # ``jobs`` is filled in below with the workers *actually used*:
        # a <=1-point grid runs serially even on a parallel engine, and a
        # chunked run can need fewer workers than configured.
        stats = SweepStats(design_points=len(design_list), jobs=1, chunks=1)
        with span("sweep", kernel=kernel.name, designs=len(design_list)):
            if self.jobs == 1 or len(design_list) <= 1:
                cache = ScheduleCache(kernel, lib, store=self.schedule_store())
                collected: List[PowerReport] = []
                if self.vectorize:
                    for report in BatchEvaluator(kernel, cache=cache).evaluate(
                        design_list
                    ).reports():
                        collected.append(report)
                        accumulator.add_report(report)
                else:
                    for design in design_list:
                        report = evaluate_design(
                            kernel, design, lib, precomputed=cache.get(design)
                        )
                        collected.append(report)
                        accumulator.add_report(report)
                stats.merge_counters(cache.counters())
                stats.elapsed_s = perf_counter() - start
                stats.evaluate_s = stats.elapsed_s - stats.schedule_s
                reports = tuple(collected)
            else:
                chunks = self._chunk(design_list)
                stats.chunks = len(chunks)
                workers = min(self.jobs, len(chunks))
                stats.jobs = workers
                collected = []
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_sweep_worker,
                    initargs=(
                        kernel,
                        lib,
                        self.cache_dir,
                        self.use_cache,
                        tracer is not None,
                        self.vectorize,
                    ),
                ) as pool:
                    futures = [
                        pool.submit(_sweep_chunk, chunk) for chunk in chunks
                    ]
                    # Submission order == grid order, so the merged report
                    # tuple is identical to the serial result.
                    for future in futures:
                        with span("sweep.collect"):
                            payload, delta, worker_spans = future.result()
                            # Vectorized workers ship column arrays; the
                            # PowerReports materialize here, at the
                            # collection boundary.
                            if isinstance(payload, BatchResult):
                                chunk_reports: Sequence[PowerReport] = (
                                    payload.reports()
                                )
                            else:
                                chunk_reports = payload  # type: ignore[assignment]
                            collected.extend(chunk_reports)
                            for report in chunk_reports:
                                accumulator.add_report(report)
                            stats.evaluate_s += delta.pop("evaluate_s")
                            stats.merge_counters(delta)
                        if tracer is not None:
                            tracer.absorb(worker_spans)
                stats.elapsed_s = perf_counter() - start
                reports = tuple(collected)
        result = SweepResult(kernel=kernel.name, reports=reports, stats=stats)
        result._seed_frontier(accumulator.payloads())
        if record:
            self._record(stats)
        logger.info("sweep.done %s", kv(kernel=kernel.name, **_log_stats(stats)))
        return result

    def sweep_many(
        self,
        kernels: Sequence[TracedKernel],
        designs: Optional[Iterable[DesignPoint]] = None,
        library: Optional[ResourceLibrary] = None,
    ) -> List[SweepResult]:
        """Sweep several kernels, fanning out across kernels when parallel.

        The recorded :class:`SweepStats` describe the multi-kernel run as
        one operation: ``elapsed_s`` is its wall time and ``jobs`` the
        worker processes actually used (on the serial path that is the
        largest worker count any per-kernel sweep used).
        """
        design_list = (
            list(designs) if designs is not None else default_design_grid()
        )
        tracer = get_tracer()
        start = perf_counter()
        with span("sweep_many", kernels=len(kernels)):
            if self.jobs == 1 or len(kernels) <= 1:
                results = [
                    self._sweep(k, design_list, library, record=False)
                    for k in kernels
                ]
                stats = self._merged([r.stats for r in results])
                stats.jobs = max((r.stats.jobs for r in results), default=1)
            else:
                workers = min(self.jobs, len(kernels))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _sweep_kernel_task,
                            kernel,
                            design_list,
                            library,
                            self.cache_dir,
                            self.use_cache,
                            tracer is not None,
                            self.vectorize,
                        )
                        for kernel in kernels
                    ]
                    results = []
                    for future in futures:
                        result, worker_spans = future.result()
                        results.append(result)
                        if tracer is not None:
                            tracer.absorb(worker_spans)
                stats = self._merged([r.stats for r in results])
                stats.jobs = workers
        stats.elapsed_s = perf_counter() - start
        self._record(stats)
        logger.info(
            "sweep_many.done %s", kv(kernels=len(kernels), **_log_stats(stats))
        )
        return results

    # -- attribution (Fig 14) -------------------------------------------------

    def attribute(
        self,
        kernel: TracedKernel,
        metric: str = "throughput",
        node_nm: float = 5.0,
        baseline_node_nm: float = 45.0,
        library: Optional[ResourceLibrary] = None,
        partitions: Optional[Sequence[int]] = None,
        simplifications: Optional[Sequence[int]] = None,
    ):
        """Fig 14 attribution of one kernel through the engine's cache."""
        return self.attribute_all(
            [kernel],
            metric=metric,
            node_nm=node_nm,
            baseline_node_nm=baseline_node_nm,
            library=library,
            partitions=partitions,
            simplifications=simplifications,
        )[0]

    def attribute_all(
        self,
        kernels: Sequence[TracedKernel],
        metric: str = "throughput",
        node_nm: float = 5.0,
        baseline_node_nm: float = 45.0,
        library: Optional[ResourceLibrary] = None,
        partitions: Optional[Sequence[int]] = None,
        simplifications: Optional[Sequence[int]] = None,
    ):
        """Fig 14 attribution over a kernel suite, fanned out across kernels.

        Returns :class:`repro.accel.attribution.GainAttribution` rows in
        the given kernel order; values are identical to the serial
        :func:`repro.accel.attribution.attribute_gains` loop for any
        ``jobs``.
        """
        tracer = get_tracer()
        start = perf_counter()
        serial = self.jobs == 1 or len(kernels) <= 1
        # ``jobs`` records the worker processes actually used, so the
        # serial fallback (one kernel, or a jobs=1 engine) reports 1.
        workers = 1 if serial else min(self.jobs, len(kernels))
        stats = SweepStats(jobs=workers, chunks=len(kernels))
        with span("attribute_all", kernels=len(kernels), metric=metric):
            if serial:
                outcomes = [
                    _attribute_kernel_task(
                        kernel,
                        metric,
                        node_nm,
                        baseline_node_nm,
                        library,
                        partitions,
                        simplifications,
                        self.cache_dir,
                        self.use_cache,
                        # trace_spans=None: in-process, the caller's tracer
                        # stays installed and records spans directly.
                    )
                    for kernel in kernels
                ]
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _attribute_kernel_task,
                            kernel,
                            metric,
                            node_nm,
                            baseline_node_nm,
                            library,
                            partitions,
                            simplifications,
                            self.cache_dir,
                            self.use_cache,
                            tracer is not None,
                        )
                        for kernel in kernels
                    ]
                    outcomes = [future.result() for future in futures]
            attributions = []
            for attribution, counters, worker_spans in outcomes:
                attributions.append(attribution)
                stats.design_points += int(counters.pop("design_points", 0))
                stats.evaluate_s += counters.pop("evaluate_s", 0.0)
                stats.merge_counters(counters)
                if tracer is not None:
                    tracer.absorb(worker_spans)
        stats.elapsed_s = perf_counter() - start
        self._record(stats)
        logger.info(
            "attribute_all.done %s",
            kv(kernels=len(kernels), metric=metric, **_log_stats(stats)),
        )
        return attributions

    # -- stats plumbing -------------------------------------------------------

    def provenance(self) -> Dict[str, object]:
        """Engine configuration and lifetime stats for a run manifest.

        ``stats`` is the cumulative :meth:`SweepStats.to_dict` across every
        operation this engine ran — the perf quantities
        :mod:`repro.provenance.drift` threshold-compares between runs.
        """
        return {
            "jobs": self.jobs,
            "use_cache": self.use_cache,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "chunk_size": self.chunk_size,
            "vectorize": self.vectorize,
            "stats": self.stats.to_dict(),
        }

    @staticmethod
    def _merged(parts: Sequence[Optional[SweepStats]]) -> SweepStats:
        merged = SweepStats(chunks=0)
        for part in parts:
            if part is not None:
                merged.merge(part)
        return merged

    def _record(self, stats: SweepStats) -> None:
        self.last_stats = stats
        self.stats.merge(stats)
        # Publish the operation to the process-wide metrics registry.  The
        # ``engine.*`` family aggregates worker-side cache traffic (shipped
        # back in the chunk deltas), unlike the per-process ``cache.*``
        # counters the stores increment locally.
        registry = metrics()
        registry.counter("engine.operations").inc()
        registry.counter("engine.design_points").inc(stats.design_points)
        registry.counter("engine.chunks").inc(stats.chunks)
        registry.counter("engine.memo_hits").inc(stats.memo_hits)
        registry.counter("engine.memo_misses").inc(stats.memo_misses)
        registry.counter("engine.cache_hits").inc(stats.cache_hits)
        registry.counter("engine.cache_misses").inc(stats.cache_misses)
        registry.gauge("engine.jobs").set(stats.jobs)
        registry.histogram("engine.elapsed_s").observe(stats.elapsed_s)
        registry.histogram("engine.schedule_s").observe(stats.schedule_s)
        registry.histogram("engine.evaluate_s").observe(stats.evaluate_s)


def _log_stats(stats: SweepStats) -> Dict[str, object]:
    """The fields ``sweep.done``-style log lines share."""
    return {
        "points": stats.design_points,
        "jobs": stats.jobs,
        "chunks": stats.chunks,
        "elapsed_s": stats.elapsed_s,
        "schedule_s": stats.schedule_s,
        "evaluate_s": stats.evaluate_s,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
    }
