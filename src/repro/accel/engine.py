"""Parallel, persistently-cached design-space exploration engine.

The Fig 13/14 pipeline evaluates thousands of design points per kernel and
sixteen kernels per figure; done naively that is strictly sequential work
in one process, re-scheduling every structural configuration from scratch
each run.  :class:`SweepEngine` removes both bottlenecks:

* **Sharding** — a design grid is split into chunks and fanned out across
  ``jobs`` worker processes (:class:`concurrent.futures.ProcessPoolExecutor`);
  multi-kernel operations (:meth:`SweepEngine.sweep_many`,
  :meth:`SweepEngine.attribute_all`) fan out across kernels instead.
  ``jobs=1`` is the exact serial evaluation order, so results are
  bit-identical regardless of parallelism (the model is deterministic
  float arithmetic and chunk results are merged in submission order).
* **Persistence** — schedules (and traced kernels) are stored in the
  content-addressed on-disk cache (:mod:`repro.accel.cache`), shared by
  all workers and surviving across runs; a warm rerun skips the scheduler
  entirely.
* **Streaming Pareto** — the (runtime, power) frontier is maintained
  incrementally as chunk results arrive (:class:`ParetoAccumulator`), so
  ``SweepResult.pareto_frontier()`` is ready the moment the sweep ends.

Every operation records per-stage wall time and cache hit/miss counters in
a :class:`repro.accel.sweep.SweepStats`, exposed on ``SweepResult.stats``
and accumulated on ``engine.stats`` across the engine's lifetime.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accel.cache import KernelTraceStore, ScheduleStore, resolve_cache_dir
from repro.accel.design import DesignPoint
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.accel.sweep import (
    ParetoAccumulator,
    ScheduleCache,
    SweepResult,
    SweepStats,
    default_design_grid,
)
from repro.accel.trace import TracedKernel


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a jobs request: ``None``/``0``/negative means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# -- worker-process entry points ----------------------------------------------
#
# Module-level functions with a per-process global, so the kernel, library
# and schedule cache are shipped once per worker (executor initializer)
# instead of once per chunk.

_WORKER: Dict[str, object] = {}


def _init_sweep_worker(
    kernel: TracedKernel,
    library: ResourceLibrary,
    cache_dir,
    use_cache: bool,
) -> None:
    store = ScheduleStore(cache_dir) if use_cache else None
    _WORKER["kernel"] = kernel
    _WORKER["library"] = library
    _WORKER["cache"] = ScheduleCache(kernel, library, store=store)


def _sweep_chunk(
    designs: Sequence[DesignPoint],
) -> Tuple[Tuple[PowerReport, ...], Dict[str, float]]:
    kernel: TracedKernel = _WORKER["kernel"]  # type: ignore[assignment]
    library: ResourceLibrary = _WORKER["library"]  # type: ignore[assignment]
    cache: ScheduleCache = _WORKER["cache"]  # type: ignore[assignment]
    before = cache.counters()
    start = perf_counter()
    reports = tuple(
        evaluate_design(kernel, design, library, precomputed=cache.get(design))
        for design in designs
    )
    elapsed = perf_counter() - start
    delta = {key: value - before[key] for key, value in cache.counters().items()}
    delta["evaluate_s"] = elapsed - delta["schedule_s"]
    return reports, delta


def _sweep_kernel_task(
    kernel: TracedKernel,
    designs: Sequence[DesignPoint],
    library: Optional[ResourceLibrary],
    cache_dir,
    use_cache: bool,
) -> SweepResult:
    engine = SweepEngine(jobs=1, cache_dir=cache_dir, use_cache=use_cache)
    return engine.sweep(kernel, designs, library)


def _attribute_kernel_task(
    kernel: TracedKernel,
    metric: str,
    node_nm: float,
    baseline_node_nm: float,
    library: Optional[ResourceLibrary],
    partitions: Optional[Sequence[int]],
    simplifications: Optional[Sequence[int]],
    cache_dir,
    use_cache: bool,
):
    from repro.accel.attribution import attribute_gains

    lib = library if library is not None else ResourceLibrary()
    store = ScheduleStore(cache_dir) if use_cache else None
    cache = ScheduleCache(kernel, lib, store=store)
    start = perf_counter()
    attribution = attribute_gains(
        kernel,
        metric=metric,
        node_nm=node_nm,
        baseline_node_nm=baseline_node_nm,
        library=lib,
        partitions=partitions,
        simplifications=simplifications,
        cache=cache,
    )
    elapsed = perf_counter() - start
    counters = cache.counters()
    counters["evaluate_s"] = elapsed - counters["schedule_s"]
    # Evaluations routed through the cache, plus the uncached 45nm baseline.
    counters["design_points"] = cache.memo_hits + cache.memo_misses + 1
    return attribution, counters


class SweepEngine:
    """Sharded, cached executor for sweeps and gain attribution.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (default) runs in-process with the exact
        serial evaluation order; ``None``/``0``/negative uses all cores.
    cache_dir:
        Persistent cache directory (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/accelerator-wall``). Only consulted when *use_cache*.
    use_cache:
        Enable the persistent on-disk schedule/trace cache. In-memory
        structural memoisation is always on regardless.
    chunk_size:
        Design points per work unit when sharding a grid; defaults to an
        even split of roughly four chunks per worker.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir=None,
        use_cache: bool = True,
        chunk_size: Optional[int] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.use_cache = bool(use_cache)
        self.cache_dir = resolve_cache_dir(cache_dir) if self.use_cache else None
        self.chunk_size = chunk_size
        #: Cumulative stats across every operation this engine ran.
        self.stats = SweepStats(jobs=self.jobs, chunks=0)
        #: Stats of the most recent operation (also on ``SweepResult.stats``).
        self.last_stats: Optional[SweepStats] = None

    # -- cache plumbing -------------------------------------------------------

    def schedule_store(self) -> Optional[ScheduleStore]:
        """A persistent schedule store, or ``None`` when caching is off."""
        return ScheduleStore(self.cache_dir) if self.use_cache else None

    def schedule_cache(
        self, kernel: TracedKernel, library: Optional[ResourceLibrary] = None
    ) -> ScheduleCache:
        """A :class:`ScheduleCache` wired to this engine's persistence."""
        lib = library if library is not None else ResourceLibrary()
        return ScheduleCache(kernel, lib, store=self.schedule_store())

    def trace(self, workload, **build_kwargs) -> TracedKernel:
        """Trace a workload through the persistent kernel-trace cache.

        *workload* is a :class:`repro.workloads.Workload` (anything with
        ``abbrev`` and ``build(**kwargs)``). Cache off → plain build.
        """
        if not self.use_cache:
            return workload.build(**build_kwargs)
        store = KernelTraceStore(self.cache_dir)
        kernel = store.get(workload.abbrev, **build_kwargs)
        if kernel is None:
            kernel = workload.build(**build_kwargs)
            store.put(workload.abbrev, kernel, **build_kwargs)
        return kernel

    # -- sweeps ---------------------------------------------------------------

    def _chunk(self, designs: List[DesignPoint]) -> List[List[DesignPoint]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(designs) / (self.jobs * 4)))
        return [designs[i : i + size] for i in range(0, len(designs), size)]

    def sweep(
        self,
        kernel: TracedKernel,
        designs: Optional[Iterable[DesignPoint]] = None,
        library: Optional[ResourceLibrary] = None,
    ) -> SweepResult:
        """Evaluate *kernel* over *designs* (default: full Table III grid)."""
        lib = library if library is not None else ResourceLibrary()
        design_list = (
            list(designs) if designs is not None else default_design_grid()
        )
        start = perf_counter()
        accumulator = ParetoAccumulator()
        stats = SweepStats(
            design_points=len(design_list), jobs=self.jobs, chunks=1
        )
        if self.jobs == 1 or len(design_list) <= 1:
            cache = ScheduleCache(kernel, lib, store=self.schedule_store())
            collected: List[PowerReport] = []
            for design in design_list:
                report = evaluate_design(
                    kernel, design, lib, precomputed=cache.get(design)
                )
                collected.append(report)
                accumulator.add_report(report)
            stats.merge_counters(cache.counters())
            stats.elapsed_s = perf_counter() - start
            stats.evaluate_s = stats.elapsed_s - stats.schedule_s
            reports = tuple(collected)
        else:
            chunks = self._chunk(design_list)
            stats.chunks = len(chunks)
            workers = min(self.jobs, len(chunks))
            collected = []
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_sweep_worker,
                initargs=(kernel, lib, self.cache_dir, self.use_cache),
            ) as pool:
                futures = [pool.submit(_sweep_chunk, chunk) for chunk in chunks]
                # Submission order == grid order, so the merged report tuple
                # is identical to the serial result.
                for future in futures:
                    chunk_reports, delta = future.result()
                    collected.extend(chunk_reports)
                    for report in chunk_reports:
                        accumulator.add_report(report)
                    stats.evaluate_s += delta.pop("evaluate_s")
                    stats.merge_counters(delta)
            stats.elapsed_s = perf_counter() - start
            reports = tuple(collected)
        result = SweepResult(kernel=kernel.name, reports=reports, stats=stats)
        result._seed_frontier(accumulator.payloads())
        self._record(stats)
        return result

    def sweep_many(
        self,
        kernels: Sequence[TracedKernel],
        designs: Optional[Iterable[DesignPoint]] = None,
        library: Optional[ResourceLibrary] = None,
    ) -> List[SweepResult]:
        """Sweep several kernels, fanning out across kernels when parallel."""
        design_list = (
            list(designs) if designs is not None else default_design_grid()
        )
        if self.jobs == 1 or len(kernels) <= 1:
            results = [self.sweep(k, design_list, library) for k in kernels]
            self.last_stats = self._merged([r.stats for r in results])
            return results
        start = perf_counter()
        workers = min(self.jobs, len(kernels))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _sweep_kernel_task,
                    kernel,
                    design_list,
                    library,
                    self.cache_dir,
                    self.use_cache,
                )
                for kernel in kernels
            ]
            results = [future.result() for future in futures]
        stats = self._merged([r.stats for r in results])
        stats.jobs = self.jobs
        stats.elapsed_s = perf_counter() - start
        self._record(stats)
        return results

    # -- attribution (Fig 14) -------------------------------------------------

    def attribute(
        self,
        kernel: TracedKernel,
        metric: str = "throughput",
        node_nm: float = 5.0,
        baseline_node_nm: float = 45.0,
        library: Optional[ResourceLibrary] = None,
        partitions: Optional[Sequence[int]] = None,
        simplifications: Optional[Sequence[int]] = None,
    ):
        """Fig 14 attribution of one kernel through the engine's cache."""
        return self.attribute_all(
            [kernel],
            metric=metric,
            node_nm=node_nm,
            baseline_node_nm=baseline_node_nm,
            library=library,
            partitions=partitions,
            simplifications=simplifications,
        )[0]

    def attribute_all(
        self,
        kernels: Sequence[TracedKernel],
        metric: str = "throughput",
        node_nm: float = 5.0,
        baseline_node_nm: float = 45.0,
        library: Optional[ResourceLibrary] = None,
        partitions: Optional[Sequence[int]] = None,
        simplifications: Optional[Sequence[int]] = None,
    ):
        """Fig 14 attribution over a kernel suite, fanned out across kernels.

        Returns :class:`repro.accel.attribution.GainAttribution` rows in
        the given kernel order; values are identical to the serial
        :func:`repro.accel.attribution.attribute_gains` loop for any
        ``jobs``.
        """
        start = perf_counter()
        stats = SweepStats(jobs=self.jobs, chunks=len(kernels))
        args = [
            (
                kernel,
                metric,
                node_nm,
                baseline_node_nm,
                library,
                partitions,
                simplifications,
                self.cache_dir,
                self.use_cache,
            )
            for kernel in kernels
        ]
        if self.jobs == 1 or len(kernels) <= 1:
            outcomes = [_attribute_kernel_task(*a) for a in args]
        else:
            workers = min(self.jobs, len(kernels))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_attribute_kernel_task, *a) for a in args]
                outcomes = [future.result() for future in futures]
        attributions = []
        for attribution, counters in outcomes:
            attributions.append(attribution)
            stats.design_points += int(counters.pop("design_points", 0))
            stats.evaluate_s += counters.pop("evaluate_s", 0.0)
            stats.merge_counters(counters)
        stats.elapsed_s = perf_counter() - start
        self._record(stats)
        return attributions

    # -- stats plumbing -------------------------------------------------------

    @staticmethod
    def _merged(parts: Sequence[Optional[SweepStats]]) -> SweepStats:
        merged = SweepStats(chunks=0)
        for part in parts:
            if part is not None:
                merged.merge(part)
        return merged

    def _record(self, stats: SweepStats) -> None:
        self.last_stats = stats
        self.stats.merge(stats)
