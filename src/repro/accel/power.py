"""Power/performance evaluation of a scheduled design point.

Combines a :class:`~repro.accel.scheduler.Schedule` with the CMOS-aware
resource library to produce runtime, energy, power, and the derived
throughput and energy-efficiency gains the paper's Section VI sweeps report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accel.design import DesignPoint
from repro.accel.resources import OpClass, ResourceLibrary, op_class
from repro.accel.scheduler import Schedule, schedule as run_schedule
from repro.accel.trace import TracedKernel
from repro.obs.trace import span


@dataclass(frozen=True)
class PowerReport:
    """Runtime/power/energy of one (kernel, design point) evaluation."""

    kernel: str
    design: DesignPoint
    cycles: int
    clock_mhz: float
    dynamic_energy_nj: float
    leakage_power_w: float
    total_ops: int

    @property
    def runtime_s(self) -> float:
        """Wall-clock execution time in seconds."""
        return self.cycles / (self.clock_mhz * 1e6)

    @property
    def leakage_energy_nj(self) -> float:
        return self.leakage_power_w * self.runtime_s * 1e9

    @property
    def energy_nj(self) -> float:
        """Total energy: dynamic plus leakage over the runtime."""
        return self.dynamic_energy_nj + self.leakage_energy_nj

    @property
    def power_w(self) -> float:
        """Average power over the execution."""
        return self.energy_nj * 1e-9 / self.runtime_s

    @property
    def throughput_ops(self) -> float:
        """Operations per second."""
        return self.total_ops / self.runtime_s

    @property
    def energy_efficiency(self) -> float:
        """Operations per joule."""
        return self.total_ops / (self.energy_nj * 1e-9)


def evaluate_design(
    kernel: TracedKernel,
    design: DesignPoint,
    library: Optional[ResourceLibrary] = None,
    precomputed: Optional[Schedule] = None,
) -> PowerReport:
    """Evaluate *kernel* on *design*.

    *precomputed* lets sweeps reuse a schedule across design points that
    share structural parameters (partition factor, fusion window, pipeline
    latency) and differ only in energy-relevant knobs.
    """
    lib = library if library is not None else ResourceLibrary()
    if precomputed is None:
        with span("schedule", partition=design.partition):
            sched = run_schedule(
                kernel.dfg,
                partition=design.partition,
                library=lib,
                fusion_window=lib.fusion_window(
                    design.node_nm, design.heterogeneity
                ),
                latency_extra=lib.latency_extra(design.simplification),
            )
    else:
        sched = precomputed

    with span("evaluate"):
        # Dynamic energy: every traced operation pays its class energy;
        # memory *accesses* (including re-reads) pay the scratchpad port
        # energy.
        energy_scale = lib.energy_scale(design.node_nm, design.simplification)
        energy_table = lib.op_energy_table()
        dynamic_nj = 0.0
        for op, count in sched.op_counts.items():
            if op in ("load", "store"):
                continue  # charged via access counts below
            energy = energy_table.get(op)
            if energy is None:
                # Unknown op: keep op_class's InvalidDesignPointError.
                energy = lib.costs(op_class(op)).energy_nj
            dynamic_nj += energy * count
        dynamic_nj += lib.costs(OpClass.MEMORY).energy_nj * kernel.total_accesses
        dynamic_nj *= energy_scale

        leakage_w = sum(
            units * lib.unit_leakage_w(klass, design.node_nm, design.simplification)
            for klass, units in sched.provisioned.items()
        )

        return PowerReport(
            kernel=kernel.name,
            design=design,
            cycles=sched.cycles,
            clock_mhz=lib.clock_mhz(design.node_nm),
            dynamic_energy_nj=dynamic_nj,
            leakage_power_w=leakage_w,
            total_ops=sched.total_ops,
        )
