"""Functional-unit and memory resource library for the accelerator model.

Costs are calibrated at the 45nm reference node (energy per operation in
nanojoules, latency in cycles at the node's base clock, leakage per
provisioned unit in watts) and scaled to other nodes through the device
scaling table (Fig 3a).  The *simplification degree* knob narrows datapaths
and deepens pipelines: energy and leakage shrink geometrically with degree,
while past :data:`PIPELINE_KNEE` the extra pipeline stages start to cost
latency — reproducing the diminishing-returns knee of Fig 13.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.cmos.scaling import DeviceScaling, ScalingTable, default_scaling_table
from repro.errors import InvalidDesignPointError


class OpClass(enum.Enum):
    """Functional-unit classes operations map onto."""

    ALU = "alu"          # add/sub/logic/compare/select: 1-cycle integer units
    MULTIPLIER = "mul"   # multiply
    DIVIDER = "div"      # divide, square root
    SPECIAL = "special"  # transcendental / activation functions
    MEMORY = "mem"       # scratchpad ports (loads, stores)


#: Operation name -> functional-unit class.
_OP_CLASS: Dict[str, OpClass] = {
    "add": OpClass.ALU, "sub": OpClass.ALU, "neg": OpClass.ALU,
    "abs": OpClass.ALU, "min": OpClass.ALU, "max": OpClass.ALU,
    "cmp": OpClass.ALU, "select": OpClass.ALU, "and": OpClass.ALU,
    "or": OpClass.ALU, "xor": OpClass.ALU, "not": OpClass.ALU,
    "shl": OpClass.ALU, "shr": OpClass.ALU, "mod": OpClass.ALU,
    "relu": OpClass.ALU, "fused": OpClass.ALU,
    "mul": OpClass.MULTIPLIER,
    "div": OpClass.DIVIDER, "sqrt": OpClass.DIVIDER,
    "exp": OpClass.SPECIAL, "log": OpClass.SPECIAL,
    "tanh": OpClass.SPECIAL, "sigmoid": OpClass.SPECIAL,
    "load": OpClass.MEMORY, "store": OpClass.MEMORY,
}


def op_class(op: str) -> OpClass:
    """Functional-unit class of an operation name."""
    try:
        return _OP_CLASS[op]
    except KeyError:
        raise InvalidDesignPointError(f"unknown operation {op!r}") from None


@dataclass(frozen=True)
class OpCosts:
    """Per-class costs at the 45nm reference node, simplification degree 1."""

    latency_cycles: int
    energy_nj: float
    leakage_w_per_unit: float


#: Reference costs, loosely calibrated on Galal & Horowitz FPU data and
#: Aladdin's 40nm component tables (relative magnitudes matter, not absolutes).
DEFAULT_COSTS: Dict[OpClass, OpCosts] = {
    OpClass.ALU: OpCosts(latency_cycles=1, energy_nj=0.002, leakage_w_per_unit=1.0e-4),
    OpClass.MULTIPLIER: OpCosts(latency_cycles=3, energy_nj=0.008, leakage_w_per_unit=5.0e-4),
    OpClass.DIVIDER: OpCosts(latency_cycles=12, energy_nj=0.020, leakage_w_per_unit=1.0e-3),
    OpClass.SPECIAL: OpCosts(latency_cycles=8, energy_nj=0.015, leakage_w_per_unit=8.0e-4),
    OpClass.MEMORY: OpCosts(latency_cycles=2, energy_nj=0.005, leakage_w_per_unit=3.0e-4),
}

#: Simplification degree beyond which added pipeline depth costs latency.
PIPELINE_KNEE: int = 9

#: Per-degree geometric savings factors for simplification.
ENERGY_SAVING_PER_DEGREE: float = 0.94
LEAKAGE_SAVING_PER_DEGREE: float = 0.92
ENERGY_SAVING_FLOOR: float = 0.35
LEAKAGE_SAVING_FLOOR: float = 0.30

#: Base accelerator clock at the 45nm reference node (MHz).
BASE_CLOCK_MHZ: float = 1000.0

#: Operation-chaining headroom: how many dependent ALU ops fit in one 45nm
#: cycle when computation heterogeneity (fusion) is enabled.  Faster nodes
#: fit proportionally more (paper Section VI's stencil case study).
BASE_FUSION_WINDOW: float = 2.0


class ResourceLibrary:
    """Node- and degree-aware resource cost lookup."""

    def __init__(
        self,
        costs: Mapping[OpClass, OpCosts] = DEFAULT_COSTS,
        scaling: ScalingTable = None,
    ):
        self._costs = dict(costs)
        self._scaling = scaling if scaling is not None else default_scaling_table()
        self._op_energy_table: Dict[str, float] = {}

    @property
    def scaling(self) -> ScalingTable:
        return self._scaling

    def costs(self, klass: OpClass) -> OpCosts:
        return self._costs[klass]

    def _rel(self, node_nm: float) -> DeviceScaling:
        return self._scaling.relative(node_nm)

    def clock_mhz(self, node_nm: float) -> float:
        """Accelerator clock at *node*: base clock scaled by device speed."""
        return BASE_CLOCK_MHZ * self._rel(node_nm).frequency

    def fusion_window(self, node_nm: float, heterogeneity: bool) -> int:
        """Dependent ALU ops chainable per cycle at *node*."""
        if not heterogeneity:
            return 1
        return max(1, int(round(BASE_FUSION_WINDOW * self._rel(node_nm).frequency)))

    def energy_scale(self, node_nm: float, simplification: int) -> float:
        """Dynamic-energy multiplier vs. (45nm, degree 1)."""
        saving = max(
            ENERGY_SAVING_FLOOR, ENERGY_SAVING_PER_DEGREE ** (simplification - 1)
        )
        return self._rel(node_nm).dynamic_energy * saving

    def leakage_scale(self, node_nm: float, simplification: int) -> float:
        """Leakage multiplier vs. (45nm, degree 1)."""
        saving = max(
            LEAKAGE_SAVING_FLOOR, LEAKAGE_SAVING_PER_DEGREE ** (simplification - 1)
        )
        return self._rel(node_nm).leakage_power * saving

    def latency_extra(self, simplification: int) -> int:
        """Extra pipeline cycles per op past the deep-pipelining knee."""
        return max(0, simplification - PIPELINE_KNEE)

    def op_energy_table(self) -> Dict[str, float]:
        """Reference energy per operation name (45nm, degree 1), cached.

        Flattens the op -> class -> costs indirection into one dict lookup
        so per-op energy summation over a schedule does no enum churn.
        Values are exactly ``costs(op_class(op)).energy_nj``.
        """
        if not self._op_energy_table:
            self._op_energy_table = {
                op: self._costs[klass].energy_nj
                for op, klass in _OP_CLASS.items()
                if klass in self._costs
            }
        return self._op_energy_table

    def op_energy_nj(self, op: str, node_nm: float, simplification: int) -> float:
        """Energy of one *op* at *node* and *simplification* degree."""
        base = self._costs[op_class(op)].energy_nj
        return base * self.energy_scale(node_nm, simplification)

    def unit_leakage_w(
        self, klass: OpClass, node_nm: float, simplification: int
    ) -> float:
        """Leakage of one provisioned unit of *klass*."""
        base = self._costs[klass].leakage_w_per_unit
        return base * self.leakage_scale(node_nm, simplification)
