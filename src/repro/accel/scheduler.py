"""Resource-constrained list scheduler over dynamic dataflow graphs.

Models the three specialization concepts:

* **partitioning** — the design point's partition factor provisions that many
  parallel functional units per class and scratchpad ports; the scheduler
  serialises whatever exceeds them;
* **heterogeneity** — a fusion pre-pass contracts dependent single-consumer
  ALU chains (up to the node's fusion window) into one-cycle super nodes,
  modelling problem-specific fused datapaths; faster CMOS nodes chain more
  ops per cycle;
* **simplification** — deeper pipelines past the knee add per-op latency
  (energy effects are applied by the power model, not here).

Input vertices are scheduled as scratchpad loads and output vertices as
stores, so memory banking (partitioning) gates performance exactly as in
Aladdin-style models.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.accel.resources import OpClass, ResourceLibrary, op_class
from repro.dfg.analysis import topological_order
from repro.dfg.graph import Dfg, NodeKind


@dataclass(frozen=True)
class Schedule:
    """Result of scheduling one DFG onto one structural configuration."""

    kernel: str
    cycles: int
    op_counts: Dict[str, int]
    provisioned: Dict[OpClass, int]
    n_macros: int
    fused_away: int  # ops absorbed into fusion chains beyond the first

    @property
    def total_ops(self) -> int:
        return sum(self.op_counts.values())


def _node_op(dfg: Dfg, nid: int) -> str:
    """Operation name of a vertex; inputs are loads, outputs stores."""
    node = dfg.node(nid)
    if node.kind is NodeKind.INPUT:
        return "load"
    if node.kind is NodeKind.OUTPUT:
        return "store"
    return node.op


def _fuse_chains(dfg: Dfg, window: int) -> Dict[int, int]:
    """Assign each vertex to a fusion macro (macro id = chain head).

    Contracts edges ``u -> v`` where both are ALU-class compute vertices and
    ``u`` has a single consumer, up to *window* members per chain.  Edge
    contraction with the single-consumer condition cannot create cycles.
    """
    macro_of: Dict[int, int] = {}
    chain_len: Dict[int, int] = {}
    for nid in topological_order(dfg):
        macro_of.setdefault(nid, nid)
        chain_len.setdefault(macro_of[nid], 1)
        if window <= 1:
            continue
        node = dfg.node(nid)
        if node.kind is not NodeKind.COMPUTE or op_class(node.op) is not OpClass.ALU:
            continue
        succs = dfg.successors(nid)
        if len(succs) != 1:
            continue
        succ = succs[0]
        succ_node = dfg.node(succ)
        if succ_node.kind is not NodeKind.COMPUTE:
            continue
        if op_class(succ_node.op) is not OpClass.ALU:
            continue
        if succ in macro_of:
            continue  # successor already joined another chain
        head = macro_of[nid]
        if chain_len[head] >= window:
            continue
        macro_of[succ] = head
        chain_len[head] += 1
    return macro_of


def schedule(
    dfg: Dfg,
    partition: int,
    library: ResourceLibrary,
    fusion_window: int = 1,
    latency_extra: int = 0,
    banked_memory: bool = False,
) -> Schedule:
    """List-schedule *dfg* with *partition* units per class.

    Greedy longest-path-priority list scheduling with non-pipelined
    functional units; returns cycle count and the op statistics the power
    model consumes.

    With ``banked_memory=True`` the scratchpad is modelled as *partition*
    single-port banks with values statically placed by a hash of their
    label: two accesses mapping to the same bank serialise even when free
    ports exist elsewhere.  This is the realistic form of memory
    partitioning (Table I's "memory module banking"); the default pools all
    ports, an idealised conflict-free scratchpad.
    """
    if partition < 1:
        raise ValueError(f"partition must be >= 1, got {partition}")

    macro_of = _fuse_chains(dfg, fusion_window)

    # Build the macro DAG.
    members: Dict[int, List[int]] = {}
    for nid, macro in macro_of.items():
        members.setdefault(macro, []).append(nid)
    macro_preds: Dict[int, Set[int]] = {m: set() for m in members}
    macro_succs: Dict[int, Set[int]] = {m: set() for m in members}
    for src, dst in dfg.edges():
        ms, md = macro_of[src], macro_of[dst]
        if ms != md:
            macro_preds[md].add(ms)
            macro_succs[ms].add(md)

    def macro_class(macro: int) -> OpClass:
        # A fused chain is ALU by construction; singletons take their op's class.
        return op_class(_node_op(dfg, macro))

    def macro_latency(macro: int) -> int:
        base = library.costs(macro_class(macro)).latency_cycles
        return base + latency_extra

    # Priority: longest latency path from each macro to any sink.
    order: List[int] = []
    indeg = {m: len(macro_preds[m]) for m in members}
    stack = [m for m, d in indeg.items() if d == 0]
    while stack:
        m = stack.pop()
        order.append(m)
        for s in macro_succs[m]:
            indeg[s] -= 1
            if indeg[s] == 0:
                stack.append(s)
    priority: Dict[int, int] = {}
    for m in reversed(order):
        down = max((priority[s] for s in macro_succs[m]), default=0)
        priority[m] = macro_latency(m) + down

    # Per-class pools of unit free-times.  With banking, each memory macro
    # is pinned to one single-port bank selected by a stable hash of its
    # label (static data placement); other classes share `partition` units.
    def bank_of(macro: int) -> int:
        node = dfg.node(macro)
        key = node.label if node.label else str(macro)
        return zlib.crc32(key.encode()) % partition

    def pool_key(macro: int) -> Tuple[OpClass, int]:
        klass = macro_class(macro)
        if banked_memory and klass is OpClass.MEMORY:
            return (klass, bank_of(macro))
        return (klass, -1)

    class_list = list(OpClass)
    demand: Dict[OpClass, int] = {k: 0 for k in class_list}
    pool_demand: Dict[Tuple[OpClass, int], int] = {}
    for m in members:
        demand[macro_class(m)] += 1
        key = pool_key(m)
        pool_demand[key] = pool_demand.get(key, 0) + 1
    pools: Dict[Tuple[OpClass, int], List[float]] = {}
    for (klass, bank), count in pool_demand.items():
        units = 1 if bank >= 0 else min(partition, count)
        pools[(klass, bank)] = [0.0] * units

    # Event-driven list scheduling.
    remaining = {m: len(macro_preds[m]) for m in members}
    ready_time: Dict[int, float] = {m: 0.0 for m in members}
    heap: List[Tuple[float, int, int]] = []
    for m, d in remaining.items():
        if d == 0:
            heapq.heappush(heap, (0.0, -priority[m], m))
    finish_time: Dict[int, float] = {}
    makespan = 0.0
    while heap:
        ready, _, m = heapq.heappop(heap)
        pool = pools[pool_key(m)]
        unit_free = heapq.heappop(pool)
        start = max(ready, unit_free)
        finish = start + macro_latency(m)
        heapq.heappush(pool, finish)
        finish_time[m] = finish
        makespan = max(makespan, finish)
        for s in macro_succs[m]:
            ready_time[s] = max(ready_time[s], finish)
            remaining[s] -= 1
            if remaining[s] == 0:
                heapq.heappush(heap, (ready_time[s], -priority[s], s))

    assert len(finish_time) == len(members), "scheduler left macros unscheduled"

    op_counts: Dict[str, int] = {}
    for nid in dfg.node_ids():
        op = _node_op(dfg, nid)
        op_counts[op] = op_counts.get(op, 0) + 1

    provisioned = {}
    for klass in class_list:
        if demand[klass] == 0:
            continue
        if banked_memory and klass is OpClass.MEMORY:
            provisioned[klass] = sum(
                1 for (k, bank) in pools if k is klass and bank >= 0
            )
        else:
            provisioned[klass] = min(partition, demand[klass])
    return Schedule(
        kernel=dfg.name,
        cycles=int(makespan),
        op_counts=op_counts,
        provisioned=provisioned,
        n_macros=len(members),
        fused_away=len(dfg) - len(members),
    )
