"""Streaming (pipelined) accelerator evaluation.

Aladdin-style flows model *pipelined* accelerators as well as single-shot
ones: with double buffering, a new invocation enters the datapath every
*initiation interval* (II) while earlier invocations drain.  Throughput is
then governed by the most-contended resource class, not the end-to-end
latency — the hardware form of Table I's "systolic array data reuse".

For non-pipelined functional units each op occupies a unit for its full
latency, so::

    II = max over classes of ceil(ops_in_class * latency_class / units)

The fill latency is the single-shot schedule; steady-state throughput is
one invocation per II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.accel.design import DesignPoint
from repro.accel.power import evaluate_design
from repro.accel.resources import OpClass, ResourceLibrary, op_class
from repro.accel.scheduler import Schedule, schedule as run_schedule
from repro.accel.sweep import ScheduleCache
from repro.accel.trace import TracedKernel


@dataclass(frozen=True)
class StreamingReport:
    """Steady-state behaviour of a pipelined accelerator."""

    kernel: str
    design: DesignPoint
    initiation_interval: int
    fill_latency_cycles: int
    clock_mhz: float
    energy_per_invocation_nj: float
    leakage_power_w: float
    total_ops: int
    bottleneck: OpClass

    @property
    def invocations_per_second(self) -> float:
        return (self.clock_mhz * 1e6) / self.initiation_interval

    @property
    def throughput_ops(self) -> float:
        """Steady-state operations per second."""
        return self.total_ops * self.invocations_per_second

    @property
    def power_w(self) -> float:
        """Steady-state average power: dynamic per invocation + leakage."""
        dynamic = (
            self.energy_per_invocation_nj * 1e-9 * self.invocations_per_second
        )
        return dynamic + self.leakage_power_w

    @property
    def energy_efficiency(self) -> float:
        """Steady-state operations per joule."""
        return self.throughput_ops / self.power_w

    @property
    def speedup_over_latency_mode(self) -> float:
        """How much pipelining beats running invocations back to back."""
        return self.fill_latency_cycles / self.initiation_interval


def initiation_interval(
    sched: Schedule, library: ResourceLibrary, latency_extra: int = 0
) -> "tuple[int, OpClass]":
    """(II, bottleneck class) for a scheduled kernel."""
    worst = 1
    bottleneck = OpClass.ALU
    class_work: Dict[OpClass, int] = {}
    for op, count in sched.op_counts.items():
        klass = op_class(op)
        latency = library.costs(klass).latency_cycles + latency_extra
        class_work[klass] = class_work.get(klass, 0) + count * latency
    for klass, work in class_work.items():
        units = sched.provisioned.get(klass, 1)
        interval = math.ceil(work / units)
        if interval > worst:
            worst = interval
            bottleneck = klass
    return worst, bottleneck


def evaluate_streaming(
    kernel: TracedKernel,
    design: DesignPoint,
    library: Optional[ResourceLibrary] = None,
    cache: Optional[ScheduleCache] = None,
) -> StreamingReport:
    """Evaluate *kernel* as a pipelined streaming accelerator.

    *cache* is an optional :class:`repro.accel.sweep.ScheduleCache`
    (possibly backed by the persistent on-disk store) supplying the
    schedule; partition factors beyond the graph size yield the same
    schedule either way, so cached and direct evaluation agree exactly.
    """
    lib = library if library is not None else ResourceLibrary()
    latency_extra = lib.latency_extra(design.simplification)
    if cache is not None:
        sched = cache.get(design)
    else:
        sched = run_schedule(
            kernel.dfg,
            partition=design.partition,
            library=lib,
            fusion_window=lib.fusion_window(design.node_nm, design.heterogeneity),
            latency_extra=latency_extra,
        )
    ii, bottleneck = initiation_interval(sched, lib, latency_extra)
    single_shot = evaluate_design(kernel, design, lib, precomputed=sched)
    return StreamingReport(
        kernel=kernel.name,
        design=design,
        initiation_interval=ii,
        fill_latency_cycles=sched.cycles,
        clock_mhz=lib.clock_mhz(design.node_nm),
        energy_per_invocation_nj=single_shot.dynamic_energy_nj,
        leakage_power_w=single_shot.leakage_power_w,
        total_ops=sched.total_ops,
        bottleneck=bottleneck,
    )
