"""Design-space sweep machinery (paper Table III, Fig 13).

Sweeps cross the Table III parameters — partitioning factor (powers of two
up to 524288), simplification degree (1..13), CMOS node (45..5nm) — over a
traced kernel, reusing schedules across design points that share structural
parameters (the schedule depends only on partition factor, fusion window and
pipeline latency; node and simplification energy effects are applied by the
power model afterwards).

``sweep()`` runs the classic single-process path.  Pass ``jobs``/
``cache_dir`` (or use :class:`repro.accel.engine.SweepEngine` directly) to
shard the grid across worker processes and persist schedules on disk across
runs; ``jobs=1`` with no cache options is exactly the original serial path.
"""

from __future__ import annotations

import math
import warnings
from bisect import bisect_left
from dataclasses import dataclass, field
from functools import cached_property
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.accel.design import (
    MAX_PARTITION_FACTOR,
    MAX_SIMPLIFICATION_DEGREE,
    SWEEP_NODES,
    DesignPoint,
)
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.accel.scheduler import Schedule, schedule as run_schedule
from repro.accel.trace import TracedKernel
from repro.errors import ValidationError
from repro.obs.log import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import span

logger = get_logger("accel.sweep")


def table3_partitions(limit: int = MAX_PARTITION_FACTOR) -> Tuple[int, ...]:
    """The Table III partitioning factors: 1, 2, 4, ..., 524288."""
    factors = []
    p = 1
    while p <= limit:
        factors.append(p)
        p *= 2
    return tuple(factors)


def table3_simplifications(
    limit: int = MAX_SIMPLIFICATION_DEGREE,
) -> Tuple[int, ...]:
    """The Table III simplification degrees: 1, 2, ..., 13."""
    return tuple(range(1, limit + 1))


def default_design_grid(
    nodes: Sequence[float] = SWEEP_NODES,
    partitions: Optional[Sequence[int]] = None,
    simplifications: Optional[Sequence[int]] = None,
    heterogeneity: bool = True,
) -> List[DesignPoint]:
    """Full Table III cross product."""
    parts = partitions if partitions is not None else table3_partitions()
    simps = (
        simplifications if simplifications is not None else table3_simplifications()
    )
    return [
        DesignPoint(
            node_nm=node, partition=p, simplification=s, heterogeneity=heterogeneity
        )
        for node in nodes
        for p in parts
        for s in simps
    ]


class ScheduleCache:
    """Schedules keyed by the structural parameters that affect them.

    In-memory memoisation is always on; pass a
    :class:`repro.accel.cache.ScheduleStore` to additionally read/write a
    persistent on-disk cache shared across processes and runs.  Counters
    (``memo_hits``/``memo_misses``/``schedule_s``, plus the store's own
    hit/miss counts) feed :class:`SweepStats`.
    """

    def __init__(
        self,
        kernel: TracedKernel,
        library: ResourceLibrary,
        store: Optional["ScheduleStoreLike"] = None,
    ):
        self._kernel = kernel
        self._library = library
        self._cache: Dict[Tuple[int, int, int], Schedule] = {}
        self.store = store
        self.memo_hits = 0
        self.memo_misses = 0
        self.schedule_s = 0.0
        self._fingerprints: Optional[Tuple[str, str]] = None
        # Partition factors beyond the graph size cannot change the schedule.
        n = len(kernel.dfg)
        cap = 1
        while cap < n:
            cap *= 2
        self._partition_cap = cap

    @property
    def kernel(self) -> TracedKernel:
        return self._kernel

    @property
    def library(self) -> ResourceLibrary:
        return self._library

    @property
    def partition_cap(self) -> int:
        """Smallest power of two >= the DFG size.

        Partition factors beyond it provision every unit the graph can
        demand, so all of them share one schedule.
        """
        return self._partition_cap

    def _store_fingerprints(self) -> Tuple[str, str]:
        if self._fingerprints is None:
            from repro.accel.cache import kernel_fingerprint, library_fingerprint

            self._fingerprints = (
                kernel_fingerprint(self._kernel),
                library_fingerprint(self._library),
            )
        return self._fingerprints

    def structural_key(self, design: DesignPoint) -> Tuple[int, int, int]:
        """The ``(partition, fusion_window, latency_extra)`` of *design*.

        These are the only design parameters a :class:`Schedule` depends
        on; every design point sharing a key shares one schedule.
        """
        return (
            min(design.partition, self._partition_cap),
            self._library.fusion_window(design.node_nm, design.heterogeneity),
            self._library.latency_extra(design.simplification),
        )

    def get(self, design: DesignPoint) -> Schedule:
        partition, window, extra = self.structural_key(design)
        return self.get_structural(partition, window, extra)

    def get_structural(
        self,
        partition: int,
        window: int,
        extra: int,
        compute: Optional[Callable[[], Schedule]] = None,
    ) -> Schedule:
        """Schedule for one structural key (memo -> store -> compute).

        *compute* overrides the scheduler invocation on a full miss — the
        batch evaluator passes its amortized fast path here — and still
        flows through the same timing, metrics and store-write plumbing.
        """
        partition = min(partition, self._partition_cap)
        key = (partition, window, extra)
        fingerprints: Optional[Tuple[str, str]] = None
        with span("cache.lookup"):
            cached = self._cache.get(key)
            if cached is not None:
                self.memo_hits += 1
                metrics().counter("cache.memo.hits").inc()
                return cached
            self.memo_misses += 1
            metrics().counter("cache.memo.misses").inc()
            sched = None
            if self.store is not None:
                fingerprints = self._store_fingerprints()
                sched = self.store.get(
                    fingerprints[0], fingerprints[1], partition, window, extra
                )
        if sched is None:
            start = perf_counter()
            with span(
                "schedule", partition=partition, window=window, extra=extra
            ):
                if compute is not None:
                    sched = compute()
                else:
                    sched = run_schedule(
                        self._kernel.dfg,
                        partition=partition,
                        library=self._library,
                        fusion_window=window,
                        latency_extra=extra,
                    )
            elapsed = perf_counter() - start
            self.schedule_s += elapsed
            metrics().histogram("schedule").observe(elapsed)
            logger.debug(
                "schedule.computed %s",
                kv(
                    kernel=self._kernel.name,
                    partition=partition,
                    window=window,
                    extra=extra,
                    elapsed_s=elapsed,
                ),
            )
            if self.store is not None:
                # fingerprints were already bound on the lookup above; a
                # miss must not recompute them.
                self.store.put(
                    fingerprints[0], fingerprints[1], partition, window, extra, sched
                )
        self._cache[key] = sched
        return sched

    def record_coalesced(self, count: int) -> None:
        """Account *count* design points served by one deduplicated schedule.

        The batch evaluator performs one real lookup per unique structure;
        the remaining points of that structure are memo hits by definition,
        recorded here so ``memo_hits + memo_misses`` still equals the number
        of design points evaluated — keeping stats comparable with the
        scalar path.
        """
        if count <= 0:
            return
        self.memo_hits += count
        metrics().counter("cache.memo.hits").inc(count)

    def counters(self) -> Dict[str, float]:
        """Snapshot of all counters (memo + persistent store + timing)."""
        return {
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "cache_hits": self.store.hits if self.store is not None else 0,
            "cache_misses": self.store.misses if self.store is not None else 0,
            "schedule_s": self.schedule_s,
        }


class ScheduleStoreLike:
    """Protocol of the persistent backend :class:`ScheduleCache` accepts."""

    hits: int
    misses: int

    def get(self, kernel_fp, library_fp, partition, fusion_window, latency_extra):
        raise NotImplementedError

    def put(
        self, kernel_fp, library_fp, partition, fusion_window, latency_extra, schedule
    ):
        raise NotImplementedError


class _ScheduleCache(ScheduleCache):
    """Deprecated alias of :class:`ScheduleCache`; import the public name."""

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "_ScheduleCache is deprecated; use repro.accel.sweep.ScheduleCache",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


@dataclass
class SweepStats:
    """Timing and cache instrumentation of one engine/sweep invocation.

    ``memo_*`` count the in-memory structural memoisation; ``cache_*``
    count the persistent on-disk store (zero when caching is off).
    ``schedule_s``/``evaluate_s`` are cumulative stage times — summed
    across worker processes, so they can exceed ``elapsed_s`` wall time
    when ``jobs > 1``.

    ``elapsed_s`` is always the *wall-clock* duration of the operation
    that produced the stats, on every path (serial, parallel,
    multi-kernel) — never a sum over children.  ``jobs`` records the
    worker processes *actually used*, so a one-point grid or a
    single-kernel ``sweep_many`` on a ``jobs=8`` engine reports
    ``jobs=1``, not 8.  (:meth:`merge` sums ``elapsed_s``, which is only
    meaningful for lifetime aggregates such as ``SweepEngine.stats``,
    where it reads as "total operation time", not wall time.)
    """

    design_points: int = 0
    jobs: int = 1
    chunks: int = 1
    elapsed_s: float = 0.0
    schedule_s: float = 0.0
    evaluate_s: float = 0.0
    memo_hits: int = 0
    memo_misses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Persistent-cache hit rate in [0, 1] (0 when the cache is off)."""
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    @property
    def memo_hit_rate(self) -> float:
        looked = self.memo_hits + self.memo_misses
        return self.memo_hits / looked if looked else 0.0

    def merge(self, other: "SweepStats") -> "SweepStats":
        """Accumulate *other* into self (worker shards, multi-kernel runs)."""
        self.design_points += other.design_points
        self.chunks += other.chunks
        self.elapsed_s += other.elapsed_s
        self.schedule_s += other.schedule_s
        self.evaluate_s += other.evaluate_s
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        return self

    def merge_counters(self, counters: Dict[str, float]) -> "SweepStats":
        """Accumulate a :meth:`ScheduleCache.counters` snapshot."""
        self.memo_hits += int(counters.get("memo_hits", 0))
        self.memo_misses += int(counters.get("memo_misses", 0))
        self.cache_hits += int(counters.get("cache_hits", 0))
        self.cache_misses += int(counters.get("cache_misses", 0))
        self.schedule_s += counters.get("schedule_s", 0.0)
        return self

    def describe(self) -> str:
        return (
            f"{self.design_points} design points in {self.elapsed_s:.3f}s "
            f"(jobs={self.jobs}, chunks={self.chunks}; "
            f"schedule {self.schedule_s:.3f}s, evaluate {self.evaluate_s:.3f}s; "
            f"disk cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"[{100.0 * self.hit_rate:.0f}%], "
            f"memo {self.memo_hits} hits / {self.memo_misses} misses)"
        )

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe view (run manifests, BENCH entries, drift comparison)."""
        return {
            "design_points": self.design_points,
            "jobs": self.jobs,
            "chunks": self.chunks,
            "elapsed_s": self.elapsed_s,
            "schedule_s": self.schedule_s,
            "evaluate_s": self.evaluate_s,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "memo_hit_rate": self.memo_hit_rate,
        }


class ParetoAccumulator:
    """Incrementally maintained Pareto frontier, minimising (x, y).

    Equivalent to re-running :func:`pareto_points` over everything added so
    far (same weak-dominance and first-wins tie rules), but each insertion
    is O(log n) search plus amortised O(1) removals instead of a full
    O(n log n) re-sort — the streaming form the sweep engine uses as chunk
    results arrive.
    """

    def __init__(self) -> None:
        self._xs: List[float] = []
        self._ys: List[float] = []
        self._payloads: List[object] = []

    def __len__(self) -> int:
        return len(self._xs)

    def add(self, x: float, y: float, payload: object = None) -> bool:
        """Insert one point; returns True if it joined the frontier.

        Non-finite coordinates are rejected: a ``nan`` comparing false
        against everything would silently corrupt the sorted frontier
        invariant instead of surfacing the broken upstream model.
        """
        if not (math.isfinite(x) and math.isfinite(y)):
            raise ValidationError(
                f"Pareto point coordinates must be finite, got ({x!r}, {y!r})"
            )
        i = bisect_left(self._xs, x)
        # Weakly dominated by the closest point on the left (px < x, py <= y)
        # or by an equal-x point (which keeps first-wins tie semantics)?
        if i > 0 and self._ys[i - 1] <= y:
            return False
        if i < len(self._xs) and self._xs[i] == x and self._ys[i] <= y:
            return False
        # Evict points the new one weakly dominates (px >= x, py >= y).
        j = i
        while j < len(self._xs) and self._ys[j] >= y:
            j += 1
        if j > i:
            del self._xs[i:j], self._ys[i:j], self._payloads[i:j]
        self._xs.insert(i, x)
        self._ys.insert(i, y)
        self._payloads.insert(i, payload)
        return True

    def add_report(self, report: PowerReport) -> bool:
        """Insert a power report into the (runtime, power) frontier."""
        return self.add(report.runtime_s, report.power_w, report)

    def extend(self, points: Iterable[Tuple[float, float, object]]) -> None:
        for x, y, payload in points:
            self.add(x, y, payload)

    def frontier(self) -> List[Tuple[float, float, object]]:
        """Current frontier, sorted by x ascending."""
        return list(zip(self._xs, self._ys, self._payloads))

    def payloads(self) -> List[object]:
        """Frontier payloads, sorted by x ascending."""
        return list(self._payloads)


@dataclass(frozen=True)
class SweepResult:
    """All evaluated design points of one kernel sweep.

    ``stats`` carries the engine's timing/cache instrumentation when the
    sweep ran through :class:`repro.accel.engine.SweepEngine` (``None`` on
    the plain serial path); it is excluded from equality so results compare
    by their physics, not by how long they took.
    """

    kernel: str
    reports: Tuple[PowerReport, ...]
    stats: Optional[SweepStats] = field(default=None, compare=False, repr=False)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def best(self, metric: Callable[[PowerReport], float]) -> PowerReport:
        """Report maximising *metric*."""
        return max(self.reports, key=metric)

    @cached_property
    def _best_energy_efficiency(self) -> PowerReport:
        return self.best(lambda r: r.energy_efficiency)

    @cached_property
    def _best_throughput(self) -> PowerReport:
        return self.best(lambda r: r.throughput_ops)

    def best_energy_efficiency(self) -> PowerReport:
        return self._best_energy_efficiency

    def best_throughput(self) -> PowerReport:
        return self._best_throughput

    def runtime_power_points(self) -> List[Tuple[float, float, PowerReport]]:
        """(runtime, power) scatter behind Fig 13."""
        return [(r.runtime_s, r.power_w, r) for r in self.reports]

    @cached_property
    def _pareto(self) -> Tuple[PowerReport, ...]:
        accumulator = ParetoAccumulator()
        for report in self.reports:
            accumulator.add_report(report)
        return tuple(accumulator.payloads())

    def pareto_frontier(self) -> List[PowerReport]:
        """Non-dominated reports in (runtime, power) minimisation space.

        Computed once (incrementally) and cached; repeated queries are O(1).
        :func:`pareto_points` remains the batch reference implementation.
        """
        return list(self._pareto)

    def _seed_frontier(self, frontier: Sequence[PowerReport]) -> None:
        """Install a frontier computed while streaming (engine internal)."""
        self.__dict__["_pareto"] = tuple(frontier)


def pareto_points(
    points: Sequence[Tuple[float, float, object]],
) -> List[Tuple[float, float, object]]:
    """Non-dominated subset of (x, y, payload), minimising both x and y.

    Reference batch implementation; :class:`ParetoAccumulator` is the
    incremental equivalent (property-tested against this).
    """
    ordered = sorted(points, key=lambda p: (p[0], p[1]))
    frontier: List[Tuple[float, float, object]] = []
    best_y = float("inf")
    for x, y, payload in ordered:
        if y < best_y:
            frontier.append((x, y, payload))
            best_y = y
    return frontier


def sweep(
    kernel: TracedKernel,
    designs: Optional[Iterable[DesignPoint]] = None,
    library: Optional[ResourceLibrary] = None,
    *,
    jobs: int = 1,
    cache: Optional[ScheduleCache] = None,
    cache_dir=None,
    use_cache: Optional[bool] = None,
    vectorize: bool = True,
) -> SweepResult:
    """Evaluate *kernel* over *designs* (default: the Table III grid).

    With the default arguments this is the exact serial path.  ``jobs != 1``
    or any cache option routes through
    :class:`repro.accel.engine.SweepEngine`: ``jobs`` worker processes,
    optionally backed by the persistent schedule cache in *cache_dir*
    (``use_cache=False`` disables persistence even when a directory is
    configured).  *cache* injects a pre-built :class:`ScheduleCache` into
    the serial path, sharing schedules with other evaluations of the same
    kernel; it cannot be combined with the engine options (``jobs``,
    ``cache_dir``, ``use_cache``) because each engine worker builds its
    own cache — the injected one would be silently ignored.

    *vectorize* (default on) evaluates the grid through the batched numpy
    path (:class:`repro.accel.batch.BatchEvaluator`); results are
    bit-identical to the per-point scalar loop, which ``vectorize=False``
    re-enables as the correctness oracle.
    """
    if jobs != 1 or cache_dir is not None or use_cache:
        if cache is not None:
            raise ValidationError(
                "sweep(cache=...) cannot be combined with jobs/cache_dir/"
                "use_cache: the engine builds one ScheduleCache per worker "
                "process, so an injected cache would be silently ignored. "
                "Drop the engine options or the injected cache."
            )
        from repro.accel.engine import SweepEngine

        engine = SweepEngine(
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=True if use_cache is None else use_cache,
            vectorize=vectorize,
        )
        return engine.sweep(kernel, designs, library)

    lib = library if library is not None else ResourceLibrary()
    design_list = (
        list(designs) if designs is not None else default_design_grid()
    )
    start = perf_counter()
    schedule_cache = cache if cache is not None else ScheduleCache(kernel, lib)
    before = schedule_cache.counters()
    if vectorize:
        from repro.accel.batch import BatchEvaluator

        reports = BatchEvaluator(kernel, cache=schedule_cache).evaluate(
            design_list
        ).reports()
    else:
        reports = tuple(
            evaluate_design(
                kernel, design, lib, precomputed=schedule_cache.get(design)
            )
            for design in design_list
        )
    elapsed = perf_counter() - start
    delta = {
        key: value - before[key]
        for key, value in schedule_cache.counters().items()
    }
    stats = SweepStats(
        design_points=len(design_list),
        jobs=1,
        chunks=1,
        elapsed_s=elapsed,
        evaluate_s=elapsed - delta["schedule_s"],
    ).merge_counters(delta)
    return SweepResult(kernel=kernel.name, reports=reports, stats=stats)
