"""Design-space sweep machinery (paper Table III, Fig 13).

Sweeps cross the Table III parameters — partitioning factor (powers of two
up to 524288), simplification degree (1..13), CMOS node (45..5nm) — over a
traced kernel, reusing schedules across design points that share structural
parameters (the schedule depends only on partition factor, fusion window and
pipeline latency; node and simplification energy effects are applied by the
power model afterwards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accel.design import (
    MAX_PARTITION_FACTOR,
    MAX_SIMPLIFICATION_DEGREE,
    SWEEP_NODES,
    DesignPoint,
)
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.accel.scheduler import Schedule, schedule as run_schedule
from repro.accel.trace import TracedKernel


def table3_partitions(limit: int = MAX_PARTITION_FACTOR) -> Tuple[int, ...]:
    """The Table III partitioning factors: 1, 2, 4, ..., 524288."""
    factors = []
    p = 1
    while p <= limit:
        factors.append(p)
        p *= 2
    return tuple(factors)


def table3_simplifications(
    limit: int = MAX_SIMPLIFICATION_DEGREE,
) -> Tuple[int, ...]:
    """The Table III simplification degrees: 1, 2, ..., 13."""
    return tuple(range(1, limit + 1))


def default_design_grid(
    nodes: Sequence[float] = SWEEP_NODES,
    partitions: Optional[Sequence[int]] = None,
    simplifications: Optional[Sequence[int]] = None,
    heterogeneity: bool = True,
) -> List[DesignPoint]:
    """Full Table III cross product."""
    parts = partitions if partitions is not None else table3_partitions()
    simps = (
        simplifications if simplifications is not None else table3_simplifications()
    )
    return [
        DesignPoint(
            node_nm=node, partition=p, simplification=s, heterogeneity=heterogeneity
        )
        for node in nodes
        for p in parts
        for s in simps
    ]


class _ScheduleCache:
    """Schedules keyed by the structural parameters that affect them."""

    def __init__(self, kernel: TracedKernel, library: ResourceLibrary):
        self._kernel = kernel
        self._library = library
        self._cache: Dict[Tuple[int, int, int], Schedule] = {}
        # Partition factors beyond the graph size cannot change the schedule.
        n = len(kernel.dfg)
        cap = 1
        while cap < n:
            cap *= 2
        self._partition_cap = cap

    def get(self, design: DesignPoint) -> Schedule:
        window = self._library.fusion_window(design.node_nm, design.heterogeneity)
        extra = self._library.latency_extra(design.simplification)
        partition = min(design.partition, self._partition_cap)
        key = (partition, window, extra)
        if key not in self._cache:
            self._cache[key] = run_schedule(
                self._kernel.dfg,
                partition=partition,
                library=self._library,
                fusion_window=window,
                latency_extra=extra,
            )
        return self._cache[key]


@dataclass(frozen=True)
class SweepResult:
    """All evaluated design points of one kernel sweep."""

    kernel: str
    reports: Tuple[PowerReport, ...]

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def best(self, metric: Callable[[PowerReport], float]) -> PowerReport:
        """Report maximising *metric*."""
        return max(self.reports, key=metric)

    def best_energy_efficiency(self) -> PowerReport:
        return self.best(lambda r: r.energy_efficiency)

    def best_throughput(self) -> PowerReport:
        return self.best(lambda r: r.throughput_ops)

    def runtime_power_points(self) -> List[Tuple[float, float, PowerReport]]:
        """(runtime, power) scatter behind Fig 13."""
        return [(r.runtime_s, r.power_w, r) for r in self.reports]

    def pareto_frontier(self) -> List[PowerReport]:
        """Non-dominated reports in (runtime, power) minimisation space."""
        points = [(r.runtime_s, r.power_w, r) for r in self.reports]
        return [r for _, _, r in pareto_points(points)]


def pareto_points(
    points: Sequence[Tuple[float, float, object]],
) -> List[Tuple[float, float, object]]:
    """Non-dominated subset of (x, y, payload), minimising both x and y."""
    ordered = sorted(points, key=lambda p: (p[0], p[1]))
    frontier: List[Tuple[float, float, object]] = []
    best_y = float("inf")
    for x, y, payload in ordered:
        if y < best_y:
            frontier.append((x, y, payload))
            best_y = y
    return frontier


def sweep(
    kernel: TracedKernel,
    designs: Optional[Iterable[DesignPoint]] = None,
    library: Optional[ResourceLibrary] = None,
) -> SweepResult:
    """Evaluate *kernel* over *designs* (default: the Table III grid)."""
    lib = library if library is not None else ResourceLibrary()
    design_list = (
        list(designs) if designs is not None else default_design_grid()
    )
    cache = _ScheduleCache(kernel, lib)
    reports = tuple(
        evaluate_design(kernel, design, lib, precomputed=cache.get(design))
        for design in design_list
    )
    return SweepResult(kernel=kernel.name, reports=reports)
