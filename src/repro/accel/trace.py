"""Concolic tracer: run a Python kernel, record its dynamic dataflow graph.

Aladdin builds accelerator models from *dynamic data dependence graphs*
captured by instrumented execution.  We reproduce that front end with
concolic values: every :class:`Value` carries both a concrete Python number
(so kernels with data-dependent control flow — BFS, sorting, shortest paths
— execute normally and produce checkable results) and a DFG vertex id (so the
complete dependence structure of the execution is recorded).

Usage sketch::

    t = Tracer("triad")
    b = t.array("b", data)          # input arrays
    c = t.array("c", data2)
    s = t.const(1.5)
    a = t.array("a", length=len(data))
    for i in range(len(data)):
        a.write(i, b.read(i) + s * c.read(i))
    for i in range(len(data)):
        t.output(a.read(i), f"a[{i}]")
    dfg = t.finish()
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from dataclasses import dataclass

from repro.dfg.graph import Dfg
from repro.errors import GraphStructureError

Number = Union[int, float, bool]


@dataclass(frozen=True)
class TracedKernel:
    """A finished trace: the DFG plus dynamic memory-access counts.

    ``memory_reads``/``memory_writes`` count *accesses* (including re-reads
    of the same element), which the power model charges; the DFG's load and
    store vertices count *distinct* values, which the scheduler ports gate.
    """

    name: str
    dfg: Dfg
    memory_reads: int
    memory_writes: int
    #: Concrete values of the kernel's outputs, in declaration order — the
    #: traced execution's actual results, checkable against a reference.
    output_values: tuple = ()

    @property
    def total_accesses(self) -> int:
        return self.memory_reads + self.memory_writes


class Value:
    """A concolic value: concrete number + DFG vertex.

    Arithmetic, comparison, and bit operators produce new traced values.
    Comparisons return values whose ``concrete`` is a bool, so ``if a < b:``
    works via ``__bool__`` (reading a traced condition concretely is exactly
    how a dynamic trace linearises control flow).
    """

    __slots__ = ("tracer", "node_id", "concrete")

    def __init__(self, tracer: "Tracer", node_id: int, concrete: Number):
        self.tracer = tracer
        self.node_id = node_id
        self.concrete = concrete

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other):
        return self.tracer.binary("add", self, other)

    def __radd__(self, other):
        return self.tracer.binary("add", other, self)

    def __sub__(self, other):
        return self.tracer.binary("sub", self, other)

    def __rsub__(self, other):
        return self.tracer.binary("sub", other, self)

    def __mul__(self, other):
        return self.tracer.binary("mul", self, other)

    def __rmul__(self, other):
        return self.tracer.binary("mul", other, self)

    def __truediv__(self, other):
        return self.tracer.binary("div", self, other)

    def __rtruediv__(self, other):
        return self.tracer.binary("div", other, self)

    def __mod__(self, other):
        return self.tracer.binary("mod", self, other)

    def __neg__(self):
        return self.tracer.unary("neg", self)

    def __abs__(self):
        return self.tracer.unary("abs", self)

    # -- bitwise ---------------------------------------------------------------

    def __and__(self, other):
        return self.tracer.binary("and", self, other)

    def __or__(self, other):
        return self.tracer.binary("or", self, other)

    def __xor__(self, other):
        return self.tracer.binary("xor", self, other)

    def __rxor__(self, other):
        return self.tracer.binary("xor", other, self)

    def __lshift__(self, other):
        return self.tracer.binary("shl", self, other)

    def __rshift__(self, other):
        return self.tracer.binary("shr", self, other)

    # -- comparisons (traced; concretely usable in `if`) -------------------------

    def __lt__(self, other):
        return self.tracer.binary("cmp", self, other, _concrete_op="lt")

    def __le__(self, other):
        return self.tracer.binary("cmp", self, other, _concrete_op="le")

    def __gt__(self, other):
        return self.tracer.binary("cmp", self, other, _concrete_op="gt")

    def __ge__(self, other):
        return self.tracer.binary("cmp", self, other, _concrete_op="ge")

    def eq(self, other):
        """Traced equality (named method: ``==`` stays Python identity)."""
        return self.tracer.binary("cmp", self, other, _concrete_op="eq")

    def ne(self, other):
        """Traced inequality."""
        return self.tracer.binary("cmp", self, other, _concrete_op="ne")

    def __bool__(self) -> bool:
        return bool(self.concrete)

    def __int__(self) -> int:
        return int(self.concrete)

    def __float__(self) -> float:
        return float(self.concrete)

    def __repr__(self) -> str:
        return f"Value(#{self.node_id}={self.concrete!r})"


_CONCRETE_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "mod": lambda a, b: a % b,
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
    "min": min,
    "max": max,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}

_CONCRETE_UNOPS = {
    "neg": lambda a: -a,
    "abs": abs,
    "not": lambda a: ~int(a),
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "tanh": math.tanh,
    "sigmoid": lambda a: 1.0 / (1.0 + math.exp(-a)),
    "relu": lambda a: a if a > 0 else 0.0,
}


class TracedArray:
    """A fixed-length array living in the traced kernel's memory space.

    ``read``/``write`` with concrete integer indices track element
    provenance; ``gather``/``scatter`` with *traced* indices additionally
    record the address computation as a dependence of the access (the
    data-dependent access patterns of SpMV, BFS, sorting...).  Every access
    increments the tracer's memory counters, which the power model charges.
    """

    def __init__(self, tracer: "Tracer", name: str, length: int):
        if length < 1:
            raise GraphStructureError(f"array {name!r}: length must be >= 1")
        self.tracer = tracer
        self.name = name
        self.length = length
        self._elements: List[Optional[Value]] = [None] * length

    def __len__(self) -> int:
        return self.length

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not (0 <= index < self.length):
            raise IndexError(
                f"array {self.name!r}: index {index} out of range [0, {self.length})"
            )
        return index

    def _source(self, index: int) -> Value:
        element = self._elements[index]
        if element is None:
            element = self.tracer._new_input(f"{self.name}[{index}]", 0.0)
            self._elements[index] = element
        return element

    def read(self, index: int) -> Value:
        """Read element *index* (concrete address)."""
        index = self._check_index(index)
        self.tracer.memory_reads += 1
        return self._source(index)

    def write(self, index: int, value: "Value | Number") -> None:
        """Write *value* to element *index* (concrete address)."""
        index = self._check_index(index)
        self.tracer.memory_writes += 1
        self._elements[index] = self.tracer.lift(value)

    def gather(self, index: "Value") -> Value:
        """Data-dependent read: the result depends on the index computation."""
        concrete_index = self._check_index(index.concrete)
        self.tracer.memory_reads += 1
        source = self._source(concrete_index)
        return self.tracer._new_compute(
            "load",
            [index, source],
            source.concrete,
            label=f"{self.name}[{concrete_index}]",
        )

    def scatter(self, index: "Value", value: "Value | Number") -> None:
        """Data-dependent write: stored element depends on the index too."""
        concrete_index = self._check_index(index.concrete)
        self.tracer.memory_writes += 1
        lifted = self.tracer.lift(value)
        stored = self.tracer._new_compute(
            "store",
            [index, lifted],
            lifted.concrete,
            label=f"{self.name}[{concrete_index}]",
        )
        self._elements[concrete_index] = stored

    def initialized_indices(self) -> List[int]:
        """Indices whose elements have been read or written so far."""
        return [i for i, e in enumerate(self._elements) if e is not None]


class Tracer:
    """Records the dynamic dataflow graph of a kernel execution."""

    def __init__(self, name: str):
        self.name = name
        self.dfg = Dfg(name)
        self.memory_reads = 0
        self.memory_writes = 0
        self._consts: Dict[Number, Value] = {}
        self._outputs: List[int] = []
        self._output_values: List[Number] = []
        self._finished = False

    # -- value creation ---------------------------------------------------------

    def _new_input(self, label: str, concrete: Number) -> Value:
        node_id = self.dfg.add_input(label)
        return Value(self, node_id, concrete)

    def _new_compute(
        self,
        op: str,
        operands: Sequence[Value],
        concrete: Number,
        label: Optional[str] = None,
    ) -> Value:
        node_id = self.dfg.add_compute(op, [v.node_id for v in operands], label)
        return Value(self, node_id, concrete)

    def input(self, label: str, concrete: Number = 0.0) -> Value:
        """A scalar kernel input."""
        return self._new_input(label, concrete)

    def const(self, value: Number) -> Value:
        """A compile-time constant (deduplicated per tracer)."""
        key = value
        if key not in self._consts:
            self._consts[key] = self._new_input(f"const:{value!r}", value)
        return self._consts[key]

    def lift(self, value: "Value | Number") -> Value:
        """Coerce a Python number to a traced constant; pass values through."""
        if isinstance(value, Value):
            if value.tracer is not self:
                raise GraphStructureError(
                    "cannot mix values from different tracers"
                )
            return value
        return self.const(value)

    def array(
        self,
        name: str,
        data: Optional[Sequence[Number]] = None,
        length: Optional[int] = None,
    ) -> TracedArray:
        """Declare an array; *data* pre-populates elements as kernel inputs."""
        if data is None and length is None:
            raise GraphStructureError(f"array {name!r}: need data or length")
        size = len(data) if data is not None else int(length)
        arr = TracedArray(self, name, size)
        if data is not None:
            for i, item in enumerate(data):
                arr._elements[i] = self._new_input(f"{name}[{i}]", item)
        return arr

    # -- operations ---------------------------------------------------------------

    def binary(
        self,
        op: str,
        a: "Value | Number",
        b: "Value | Number",
        _concrete_op: Optional[str] = None,
    ) -> Value:
        """Apply a binary operation, tracing it."""
        lhs = self.lift(a)
        rhs = self.lift(b)
        fn = _CONCRETE_BINOPS[_concrete_op or op]
        return self._new_compute(op, [lhs, rhs], fn(lhs.concrete, rhs.concrete))

    def unary(self, op: str, a: "Value | Number") -> Value:
        """Apply a unary operation, tracing it."""
        operand = self.lift(a)
        fn = _CONCRETE_UNOPS[op]
        return self._new_compute(op, [operand], fn(operand.concrete))

    def minimum(self, a, b) -> Value:
        return self.binary("min", a, b)

    def maximum(self, a, b) -> Value:
        return self.binary("max", a, b)

    def sqrt(self, a) -> Value:
        return self.unary("sqrt", a)

    def exp(self, a) -> Value:
        return self.unary("exp", a)

    def tanh(self, a) -> Value:
        return self.unary("tanh", a)

    def sigmoid(self, a) -> Value:
        return self.unary("sigmoid", a)

    def relu(self, a) -> Value:
        return self.unary("relu", a)

    def select(self, cond: Value, if_true, if_false) -> Value:
        """Traced multiplexer: concrete branch taken, both inputs recorded."""
        t_val = self.lift(if_true)
        f_val = self.lift(if_false)
        concrete = t_val.concrete if cond.concrete else f_val.concrete
        return self._new_compute("select", [cond, t_val, f_val], concrete)

    # -- finishing -----------------------------------------------------------------

    def output(self, value: "Value | Number", label: Optional[str] = None) -> None:
        """Mark *value* as a kernel output."""
        lifted = self.lift(value)
        self._outputs.append(self.dfg.add_output(lifted.node_id, label))
        self._output_values.append(lifted.concrete)

    def finish(self) -> Dfg:
        """Validate and return the recorded dataflow graph.

        Dead compute vertices (values whose results never reach an output)
        are eliminated, matching a dynamic trace of an optimised binary.
        """
        if not self._outputs:
            raise GraphStructureError(
                f"{self.name}: kernel declared no outputs; call output()"
            )
        from repro.dfg.transforms import dead_code_eliminate

        self._finished = True
        cleaned = dead_code_eliminate(self.dfg)
        cleaned.name = self.name
        return cleaned.validate()

    def kernel(self) -> TracedKernel:
        """Finish the trace and bundle it with the memory-access counts."""
        return TracedKernel(
            name=self.name,
            dfg=self.finish(),
            memory_reads=self.memory_reads,
            memory_writes=self.memory_writes,
            output_values=tuple(self._output_values),
        )
