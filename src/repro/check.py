"""``repro check``: numerical self-diagnostics over the embedded datasets.

Re-runs every fit the library ships, re-validates the model invariants the
paper's argument rests on, and exercises the DSE engine's parallel
equivalence on a tiny grid — reporting pass/fail per subsystem.  This is
the command to run after touching any model code or dataset: it answers
"are the numbers still trustworthy?" in a few seconds, without the full
test suite.

Checks, by subsystem:

* **cmos** — the Fig 3b density law and Fig 3c per-era TDP laws refit from
  the bundled chip population with finite, positive coefficients, and the
  Fig 3d gains model stays finite over a node/area/TDP grid.
* **csr** — the Eq 2 invariant ``reported == specialization * cmos`` holds
  across every case-study series, shares stay finite near ``reported = 1``,
  and the Eq 3/4 GPU relation matrix is antisymmetric in log space.
* **wall** — :func:`repro.wall.pareto.upper_frontier` returns a strictly
  increasing staircase for every domain scatter, every Fig 15/16 projection
  is finite, never regresses under the achieved frontier (the clamp
  contract), and reports headroom >= 1.
* **accel** — a ``jobs=1`` and a ``jobs=2`` engine sweep of the same tiny
  grid are bit-identical, the streaming Pareto accumulator agrees with
  the batch reference, and the vectorized batch evaluator reproduces the
  per-point scalar oracle exactly.
* **tech** — every registered technology backend produces finite,
  monotone-in-node density/TDP scaling surfaces, the ``cmos`` backend is
  bit-identical to the legacy ``CmosPotentialModel.paper()`` path, and
  every non-CMOS backend yields finite wall-shift deltas.  ``repro check
  --tech NAME`` restricts the per-backend checks to one backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import SelfCheckError

#: Relative tolerance for invariants that are exact up to float rounding.
_RTOL = 1e-9


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-diagnostic."""

    subsystem: str
    name: str
    ok: bool
    detail: str

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return f"[{status:>4}] {self.subsystem}/{self.name}: {self.detail}"

    def to_dict(self) -> dict:
        """JSON-safe view, recorded into the run manifest's check table."""
        return {
            "subsystem": self.subsystem,
            "name": self.name,
            "ok": self.ok,
            "detail": self.detail,
        }


def _ensure(condition: bool, message: str) -> None:
    if not condition:
        raise SelfCheckError(message)


def _run(
    results: List[CheckResult], subsystem: str, name: str, fn: Callable[[], str]
) -> None:
    try:
        detail = fn()
        results.append(CheckResult(subsystem, name, True, detail))
    except Exception as exc:  # noqa: BLE001 - a diagnostic must not abort
        results.append(
            CheckResult(
                subsystem, name, False, f"{type(exc).__name__}: {exc}"
            )
        )


# -- cmos ---------------------------------------------------------------------


def _check_density_refit() -> str:
    import math

    from repro.cmos.model import CmosPotentialModel

    fit = CmosPotentialModel.reference().density_fit
    _ensure(fit.n_points >= 2, f"refit used only {fit.n_points} chips")
    _ensure(
        math.isfinite(fit.r2) and 0.0 < fit.r2 <= 1.0,
        f"log-space R^2 out of range: {fit.r2!r}",
    )
    return fit.describe()


def _check_tdp_refit() -> str:
    from repro.cmos.model import CmosPotentialModel

    model = CmosPotentialModel.reference().tdp_model
    # TdpFit.__post_init__ enforces finite positive coefficients; surviving
    # construction plus a positive budget at a nominal envelope is the check.
    for fit in model.fits:
        _ensure(
            fit.budget_product(100.0) > 0.0,
            f"era {fit.era.name}: non-positive budget at 100W",
        )
    return f"{len(model.fits)} era laws refit"


def _check_gains_finite() -> str:
    import math

    from repro.cmos.model import CmosPotentialModel

    model = CmosPotentialModel.paper()
    evaluated = 0
    for node in (45.0, 22.0, 10.0, 5.0):
        for area in (10.0, 100.0, 800.0):
            for tdp in (None, 5.0, 250.0):
                gains = model.evaluate(node, 1000.0, area_mm2=area, tdp_w=tdp)
                for metric in (
                    "throughput", "energy_efficiency", "throughput_per_area"
                ):
                    value = gains.metric(metric)
                    _ensure(
                        math.isfinite(value) and value > 0.0,
                        f"{metric} at {node:g}nm/{area:g}mm^2/"
                        f"TDP={tdp!r}: {value!r}",
                    )
                evaluated += 1
    return f"{evaluated} grid points finite and positive"


# -- csr ----------------------------------------------------------------------


def _study_series(model):
    from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders

    for study in (
        video_decoders.study(),
        gpu_graphics.study(),
        fpga_cnn.study("alexnet"),
        bitcoin.asic_study(),
    ):
        yield study.name, study.performance_series(model)


def _check_eq2_invariant() -> str:
    import math

    from repro.cmos.model import CmosPotentialModel

    model = CmosPotentialModel.paper()
    checked = 0
    for name, series in _study_series(model):
        for point in series:
            _ensure(
                math.isclose(
                    point.gain, point.csr * point.physical, rel_tol=_RTOL
                ),
                f"{name}/{point.name}: reported {point.gain!r} != "
                f"csr {point.csr!r} * physical {point.physical!r}",
            )
            checked += 1
    return f"reported == specialization * cmos on {checked} chips"


def _check_share_boundary() -> str:
    import math

    from repro.csr.metric import GainDecomposition

    for reported in (1.0, 1.0 + 1e-12, 1.0 - 1e-12):
        d = GainDecomposition(
            reported=reported, specialization=reported, cmos=1.0
        )
        share = d.specialization_share
        _ensure(
            math.isfinite(share) and abs(share) <= 1.0,
            f"share near reported=1 unstable: {share!r} at {reported!r}",
        )
    return "log-share finite and bounded at reported ~ 1.0"


def _check_relation_matrix() -> str:
    import math

    from repro.cmos.model import CmosPotentialModel
    from repro.studies.gpu_graphics import architecture_relations

    matrix = architecture_relations(CmosPotentialModel.paper())
    pairs = 0
    for x in matrix.architectures:
        _ensure(matrix.gain(x, x) == 1.0, f"diagonal gain({x},{x}) != 1")
        for y in matrix.architectures:
            if x == y or not matrix.has(x, y):
                continue
            product = matrix.gain(x, y) * matrix.gain(y, x)
            _ensure(
                math.isclose(product, 1.0, rel_tol=_RTOL),
                f"antisymmetry broken: gain({x},{y}) * gain({y},{x}) "
                f"= {product!r}",
            )
            pairs += 1
    return f"{len(matrix.architectures)} architectures, {pairs} pairs antisymmetric"


# -- wall ---------------------------------------------------------------------


def _domain_scatter(domain: str, model):
    from repro.wall.limits import _limits

    row = _limits()[domain]
    study = row.study_factory()
    series = study.performance_series(model)
    base = study.chips[0].metric(study.performance_metric)
    return [(p.physical, p.gain * base) for p in series]


def _check_frontier_monotone() -> str:
    from repro.cmos.model import CmosPotentialModel
    from repro.errors import SelfCheckError as _err
    from repro.validate import require_monotone
    from repro.wall.limits import _limits
    from repro.wall.pareto import upper_frontier

    model = CmosPotentialModel.paper()
    domains = 0
    for domain in _limits():
        frontier = upper_frontier(_domain_scatter(domain, model))
        require_monotone(
            [p[0] for p in frontier], f"{domain} frontier x", error=_err
        )
        require_monotone(
            [p[1] for p in frontier], f"{domain} frontier y", error=_err
        )
        domains += 1
    return f"strictly increasing frontier in {domains} domains"


def _check_projections() -> str:
    import math

    from repro.cmos.model import CmosPotentialModel
    from repro.wall.limits import wall_report_all_domains

    model = CmosPotentialModel.paper()
    reports = wall_report_all_domains(model)
    for report in reports:
        for label, value in (
            ("projected_log", report.projected_log),
            ("projected_linear", report.projected_linear),
        ):
            _ensure(
                math.isfinite(value),
                f"{report.domain}/{report.metric}: {label} = {value!r}",
            )
            _ensure(
                value >= report.current_best * (1.0 - _RTOL),
                f"{report.domain}/{report.metric}: {label} {value!r} "
                f"regresses under achieved {report.current_best!r}",
            )
        low, high = report.headroom
        _ensure(
            math.isfinite(low) and math.isfinite(high) and 1.0 - _RTOL <= low <= high,
            f"{report.domain}/{report.metric}: headroom ({low!r}, {high!r})",
        )
    return f"{len(reports)} domain projections clamped, finite, headroom >= 1"


def _check_predict_clamp() -> str:
    from repro.cmos.model import CmosPotentialModel
    from repro.wall.limits import _limits
    from repro.wall.projection import fit_projections

    model = CmosPotentialModel.paper()
    fits = 0
    for domain in _limits():
        points = _domain_scatter(domain, model)
        for fit in fit_projections(points):
            # Querying *inside* the data range must never dip below the
            # achieved frontier — the historical clamp bug.
            lowest = min(x for x, _ in points)
            _ensure(
                fit.predict(lowest) >= fit.max_fitted_gain,
                f"{domain}/{fit.kind.value}: predict({lowest!r}) below "
                f"achieved {fit.max_fitted_gain!r}",
            )
            fits += 1
    return f"{fits} frontier fits never regress under the data"


# -- accel --------------------------------------------------------------------


def _tiny_sweep_inputs():
    from repro.accel.sweep import default_design_grid
    from repro.workloads import trd

    kernel = trd.build(n=16)
    grid = default_design_grid(
        nodes=(45.0, 5.0), partitions=(1, 4), simplifications=(1, 5)
    )
    return kernel, grid


def _check_engine_equivalence() -> str:
    from repro.accel.engine import SweepEngine

    kernel, grid = _tiny_sweep_inputs()
    serial = SweepEngine(jobs=1, use_cache=False).sweep(kernel, grid)
    parallel = SweepEngine(jobs=2, use_cache=False, chunk_size=2).sweep(
        kernel, grid
    )
    _ensure(
        serial.reports == parallel.reports,
        "jobs=1 and jobs=2 sweeps disagree on the same grid",
    )
    return f"jobs=1 == jobs=2 over {len(grid)} design points"


def _check_pareto_equivalence() -> str:
    from repro.accel.engine import SweepEngine
    from repro.accel.sweep import pareto_points

    kernel, grid = _tiny_sweep_inputs()
    result = SweepEngine(jobs=1, use_cache=False).sweep(kernel, grid)
    streaming = [
        (r.runtime_s, r.power_w) for r in result.pareto_frontier()
    ]
    batch = [
        (x, y) for x, y, _ in pareto_points(result.runtime_power_points())
    ]
    _ensure(
        streaming == batch,
        "streaming Pareto frontier disagrees with batch reference",
    )
    return f"streaming frontier == batch reference ({len(batch)} points)"


def _check_vectorized_equivalence() -> str:
    from repro.accel.batch import BatchEvaluator
    from repro.accel.power import evaluate_design

    kernel, grid = _tiny_sweep_inputs()
    batch = BatchEvaluator(kernel)
    reports = batch.evaluate(grid).reports()
    scalar = tuple(
        evaluate_design(kernel, design, batch.library) for design in grid
    )
    _ensure(
        reports == scalar,
        "vectorized batch evaluation disagrees with per-point evaluate_design",
    )
    looked = batch.cache.memo_hits + batch.cache.memo_misses
    _ensure(
        looked == len(grid),
        f"batch memo accounting covers {looked} of {len(grid)} design points",
    )
    return (
        f"vectorized == scalar over {len(grid)} design points "
        f"({batch.cache.memo_misses} unique structures)"
    )


# -- tech ---------------------------------------------------------------------


def _tech_backends(tech: Optional[str]):
    from repro.tech import backend_names, get_backend

    names = [tech] if tech else backend_names()
    return [get_backend(name) for name in names]


def _check_tech_surfaces(tech: Optional[str] = None) -> str:
    import math

    checked = []
    for backend in _tech_backends(tech):
        # Surfaces iterate SURFACE_NODES oldest-to-newest, so values must
        # rise monotonically as the node shrinks.
        density = list(backend.density_surface().values())
        _ensure(
            all(math.isfinite(v) and v > 0 for v in density),
            f"{backend.name}: density surface not finite/positive",
        )
        _ensure(
            all(b > a for a, b in zip(density, density[1:])),
            f"{backend.name}: density surface not strictly increasing in node",
        )
        tdp = list(backend.tdp_surface().values())
        _ensure(
            all(math.isfinite(v) and v > 0 for v in tdp),
            f"{backend.name}: TDP surface not finite/positive",
        )
        # Era budget laws are a step function across nodes: non-strict.
        _ensure(
            all(b >= a for a, b in zip(tdp, tdp[1:])),
            f"{backend.name}: TDP surface not monotone in node",
        )
        for node, point in backend.frequency_energy_surface().items():
            _ensure(
                all(math.isfinite(v) and v > 0 for v in point.values()),
                f"{backend.name}: device point at {node}nm not finite/positive",
            )
        checked.append(backend.name)
    return (
        f"{len(checked)} backend(s) ({', '.join(checked)}): density/TDP "
        "surfaces finite and monotone in node"
    )


def _check_tech_cmos_identity(tech: Optional[str] = None) -> str:
    from repro.cmos.model import CmosPotentialModel
    from repro.tech import get_backend

    backend_model = get_backend("cmos").model()
    legacy = CmosPotentialModel.paper()
    count = 0
    for node in (45.0, 28.0, 16.0, 7.0, 5.0):
        for area in (10.0, 100.0, 600.0):
            for tdp, cap_mode in (
                (None, "analytic"),
                (5.0, "analytic"),
                (100.0, "analytic"),
                (5.0, "empirical"),
                (100.0, "empirical"),
            ):
                ours = backend_model.evaluate(
                    node, 1000.0, area_mm2=area, tdp_w=tdp, cap_mode=cap_mode
                )
                theirs = legacy.evaluate(
                    node, 1000.0, area_mm2=area, tdp_w=tdp, cap_mode=cap_mode
                )
                _ensure(
                    ours == theirs,
                    f"cmos backend diverges from legacy model at node={node}, "
                    f"area={area}, tdp={tdp}, cap_mode={cap_mode}",
                )
                count += 1
    return (
        f"cmos backend bit-identical to CmosPotentialModel.paper() over "
        f"{count} evaluations"
    )


def _check_tech_wall_shift(tech: Optional[str] = None) -> str:
    import math

    from repro.tech.scenarios import delta_payload

    names = [
        backend.name
        for backend in _tech_backends(tech)
        if backend.name != "cmos"
    ]
    for name in names:
        payload = delta_payload(name)
        rows = payload["rows"]
        _ensure(
            len(rows) == 8,
            f"{name}: expected 8 wall-delta rows (4 domains x 2 metrics), "
            f"got {len(rows)}",
        )
        for row in rows:
            for key in (
                "physical_limit_ratio",
                "projected_log_ratio",
                "projected_linear_ratio",
            ):
                value = row[key]
                _ensure(
                    math.isfinite(value) and value > 0,
                    f"{name}: {row['domain']}/{row['metric']} {key} not "
                    f"finite/positive: {value!r}",
                )
    if not names:
        return "no non-CMOS backend selected; nothing to diff"
    return f"finite wall-shift deltas for {', '.join(names)}"


# -- driver -------------------------------------------------------------------

CHECKS = (
    ("cmos", "density-refit", _check_density_refit),
    ("cmos", "tdp-refit", _check_tdp_refit),
    ("cmos", "gains-finite", _check_gains_finite),
    ("csr", "eq2-invariant", _check_eq2_invariant),
    ("csr", "share-boundary", _check_share_boundary),
    ("csr", "relation-antisymmetry", _check_relation_matrix),
    ("wall", "frontier-monotone", _check_frontier_monotone),
    ("wall", "projection-contract", _check_projections),
    ("wall", "predict-clamp", _check_predict_clamp),
    ("accel", "engine-equivalence", _check_engine_equivalence),
    ("accel", "pareto-equivalence", _check_pareto_equivalence),
    ("accel", "vectorized-equivalence", _check_vectorized_equivalence),
    ("tech", "surfaces-monotone", _check_tech_surfaces),
    ("tech", "cmos-bit-identical", _check_tech_cmos_identity),
    ("tech", "wall-shift-finite", _check_tech_wall_shift),
)


def run_checks(
    subsystems: Optional[List[str]] = None,
    tech: Optional[str] = None,
) -> List[CheckResult]:
    """Run the self-diagnostics, optionally restricted to *subsystems*.

    *tech* restricts the per-backend ``tech`` checks to one registered
    technology backend (they cover every backend by default).
    """
    known = sorted({subsystem for subsystem, _, _ in CHECKS})
    if subsystems:
        unknown = sorted(set(subsystems) - set(known))
        if unknown:
            raise SelfCheckError(
                f"unknown subsystem(s) {unknown}; known: {known}"
            )
    if tech is not None:
        from repro.tech import get_backend

        get_backend(tech)  # fail fast with the valid-name listing
    results: List[CheckResult] = []
    for subsystem, name, fn in CHECKS:
        if subsystems and subsystem not in subsystems:
            continue
        if subsystem == "tech":
            _run(results, subsystem, name, lambda fn=fn: fn(tech))
        else:
            _run(results, subsystem, name, fn)
    return results


def render_results(results: List[CheckResult]) -> str:
    """Per-check lines plus a one-line summary, ``repro check``'s output."""
    lines = [result.describe() for result in results]
    failed = sum(1 for result in results if not result.ok)
    lines.append(
        f"{len(results) - failed}/{len(results)} checks passed"
        + (f", {failed} FAILED" if failed else "")
    )
    return "\n".join(lines)
