"""Command-line interface: regenerate the paper's evaluation from a shell.

Usage (installed as ``accelerator-wall``, or ``python -m repro``):

    accelerator-wall tables                 # print Tables I, III, IV, V
    accelerator-wall study bitcoin          # one case-study CSR series
    accelerator-wall wall                   # Figs 15-16 projections
    accelerator-wall maturity               # Section IV-E maturity classes
    accelerator-wall check                  # numerical self-diagnostics
    accelerator-wall export --out out/      # JSON of every artifact
    accelerator-wall stats                  # metrics snapshot of the last run
    accelerator-wall serve --port 8080      # HTTP JSON API over the model
    accelerator-wall report                 # list the run ledger
    accelerator-wall report --compare A B   # golden-number drift report

Observability: ``-v``/``-vv`` enable structured ``key=value`` logging on
the ``repro.*`` loggers; the DSE-backed commands (``plot``, ``export``)
additionally accept ``--profile`` (per-stage time table after the run)
and ``--trace-out FILE`` (Chrome trace-event JSON for Perfetto /
``chrome://tracing``).

Provenance: ``export``, ``plot``, and ``check`` record a run manifest
(git SHA, config/input hashes, metrics, timings) into the run ledger
(``$REPRO_RUNS_DIR`` or ``<cache-dir>/runs``) and print its ``[run] id``;
``report`` renders a single run or compares two (exit 1 on drift).

Exit codes: 0 on success; 1 when a command completes but reports failures
(``insights``, ``check``); :data:`EXIT_ERROR` (2) when a
:class:`repro.errors.ReproError` aborts the command — printed as a
one-line ``error:`` message on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.cmos.model import CmosPotentialModel
from repro.errors import ReproError
from repro.reporting.tables import (
    render_rows,
    table1_specialization_concepts,
    table3_sweep_parameters,
    table4_applications,
    table5_wall_parameters,
)

STUDIES = ("video", "gpu", "cnn", "bitcoin")

#: Exit code when a :class:`repro.errors.ReproError` aborts a command (the
#: codes 0/1 mean success / command-reported failures).
EXIT_ERROR = 2


def _model(args) -> CmosPotentialModel:
    tech = getattr(args, "tech", None)
    if tech and tech != "cmos":
        from repro.tech import get_backend

        return get_backend(tech).model()
    # The legacy path, untouched: `--tech cmos` (or no --tech) evaluates
    # bit-identically to every release before technology backends existed.
    if getattr(args, "refit", False):
        return CmosPotentialModel.reference()
    return CmosPotentialModel.paper()


def _dse_engine(args):
    """Build the sweep engine the DSE-backed commands share.

    Persistent caching is opt-in: it activates when ``--cache-dir`` is
    passed or ``$REPRO_CACHE_DIR`` is set, and ``--no-cache`` always wins.
    ``--jobs 0`` means all cores.
    """
    from repro.accel.cache import ENV_CACHE_DIR
    from repro.accel.engine import SweepEngine

    cache_dir = getattr(args, "cache_dir", None)
    use_cache = not getattr(args, "no_cache", False) and (
        cache_dir is not None or os.environ.get(ENV_CACHE_DIR) is not None
    )
    return SweepEngine(
        jobs=getattr(args, "jobs", 1),
        cache_dir=cache_dir,
        use_cache=use_cache,
        vectorize=not getattr(args, "no_vectorize", False),
    )


def _add_tech_option(parser: argparse.ArgumentParser) -> None:
    """``--tech``: evaluate under a registered technology backend."""
    parser.add_argument(
        "--tech",
        default=None,
        metavar="TECH",
        help="technology backend to evaluate under (cmos, finfet, tfet, "
        "chiplet; default: cmos — bit-identical to omitting the flag)",
    )


def _add_dse_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep-backed figures (0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent DSE cache directory (default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent DSE cache even if a directory is set",
    )
    parser.add_argument(
        "--no-vectorize", action="store_true",
        help="evaluate sweeps through the per-point scalar oracle instead "
        "of the batched numpy path (results are bit-identical)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-stage time table after the command",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON of the run "
        "(open in Perfetto or chrome://tracing)",
    )


# -- observability plumbing ---------------------------------------------------


def _metrics_path():
    """Where DSE commands persist their metrics snapshot for ``stats``.

    Always the *default* cache directory ($REPRO_CACHE_DIR or
    ``~/.cache/accelerator-wall``): the snapshot is a diagnostics
    artifact, so it is written even when ``--no-cache`` disables the
    schedule cache, and ``--cache-dir`` does not move it.
    """
    from repro.accel.cache import default_cache_dir

    return default_cache_dir() / "metrics.json"


def _obs_begin(args):
    """Install a process tracer when ``--profile``/``--trace-out`` ask for one."""
    from repro.obs.trace import Tracer, set_tracer

    if getattr(args, "profile", False) or getattr(args, "trace_out", None):
        tracer = Tracer()
        set_tracer(tracer)
        return tracer
    return None


def _obs_finish(args, tracer, manifest=None, engine=None) -> None:
    """Render/export the trace, uninstall it, persist snapshot + manifest."""
    from repro.obs.metrics import metrics
    from repro.obs.trace import set_tracer
    from repro.provenance.manifest import SCHEMA_VERSION

    if tracer is not None:
        set_tracer(None)
        if getattr(args, "trace_out", None):
            path = tracer.export_chrome(args.trace_out)
            print(f"wrote trace {path} ({len(tracer)} spans)")
        if getattr(args, "profile", False):
            print("\n=== profile: per-stage time ===")
            rows = tracer.stage_rows()
            print(render_rows(rows) if rows else "(no spans recorded)")
    snapshot = metrics().snapshot()
    if manifest is not None:
        _record_manifest(manifest, snapshot, tracer, engine)
    if not snapshot:
        return
    payload = {
        "schema_version": SCHEMA_VERSION,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "recorded_unix": time.time(),
        "command": getattr(args, "command", "?"),
        "run_id": manifest.run_id if manifest is not None else None,
        "metrics": snapshot,
    }
    path = _metrics_path()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    except OSError:
        pass  # diagnostics are best-effort; never fail the command


# -- provenance plumbing ------------------------------------------------------


def _capture_manifest(args, command: str):
    """Start a run manifest for *command*; ``None`` if capture fails."""
    from repro.provenance.manifest import capture

    try:
        return capture(
            command,
            argv=getattr(args, "_argv", None),
            model=_model(args),
            tech=getattr(args, "tech", None),
        )
    except Exception:  # noqa: BLE001 - provenance must never break the run
        return None


def _record_manifest(manifest, snapshot, tracer=None, engine=None) -> None:
    """Complete *manifest* with run outcomes and write the ledger entry."""
    from repro.provenance.manifest import RunLedger

    manifest.metrics = snapshot
    if tracer is not None:
        manifest.stages = tracer.stage_rows()
    if engine is not None:
        manifest.engine = engine.provenance()
    manifest.elapsed_s = time.time() - manifest.created_unix
    try:
        RunLedger().record(manifest)
    except OSError:
        return  # best-effort: an unwritable ledger never fails the command
    print(f"[run] {manifest.run_id}")


def _cmd_stats(args) -> int:
    """Render the metrics snapshot persisted by the last DSE-backed run."""
    from repro.obs.metrics import MetricsRegistry

    path = _metrics_path()
    if not path.exists():
        print(
            "no metrics snapshot found; run a DSE-backed command first "
            "(e.g. `accelerator-wall plot fig13`)",
            file=sys.stderr,
        )
        return 1
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"metrics snapshot {path} is unreadable ({exc}); "
            "re-run a DSE-backed command to refresh it",
            file=sys.stderr,
        )
        return 1
    fmt = getattr(args, "format", None) or (
        "json" if getattr(args, "json", False) else "table"
    )
    if fmt == "json":
        print(json.dumps(payload, indent=2))
        return 0
    print(f"=== metrics snapshot ({path}) ===")
    print(f"recorded: {payload.get('recorded_at', '?')}")
    print(f"command:  {payload.get('command', '?')}")
    if payload.get("run_id"):
        print(f"run:      {payload['run_id']}")
    print(MetricsRegistry().render(payload.get("metrics", {})))
    return 0


def _cmd_tail(args) -> int:
    """Live view of a serve fleet's flight recorder (``/debug/requests``).

    Polls the fleet-merged debug endpoint and prints each request record
    once (dedup by trace id + start + worker), newest last — a
    ``tail -f`` for HTTP traffic.  ``--slow`` switches to the slowest
    retained requests instead of the newest.
    """
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    endpoint = "/debug/slow" if args.slow else "/debug/requests"
    url = f"{base}{endpoint}?n={max(1, args.count)}"
    seen: set = set()
    try:
        while True:
            try:
                with urllib.request.urlopen(url, timeout=10.0) as resp:
                    payload = json.load(resp)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"error: {url} unreachable ({exc})", file=sys.stderr)
                if args.once:
                    return 1
                time.sleep(args.interval)
                continue
            rows = (payload.get("data") or {}).get("requests") or []
            for row in rows:
                key = (
                    row.get("trace_id"),
                    row.get("start_unix"),
                    row.get("worker"),
                    row.get("internal"),
                )
                if key in seen:
                    continue
                seen.add(key)
                worker = row.get("worker")
                stamp = time.strftime(
                    "%H:%M:%S", time.localtime(float(row.get("start_unix") or 0.0))
                )
                print(
                    f"{stamp} "
                    f"{1e3 * float(row.get('duration_s') or 0.0):9.2f}ms "
                    f"{row.get('status', '?'):>3} "
                    f"{('w' + str(worker)) if worker is not None else '-':>3} "
                    f"{row.get('method', '?'):<6} {row.get('path', '?')} "
                    f"trace={row.get('trace_id')}"
                    + (" [internal]" if row.get("internal") else ""),
                    flush=True,
                )
            if args.once:
                return 0
            if len(seen) > 100_000:
                seen.clear()  # bound memory over a very long tail
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_report(args) -> int:
    """List the run ledger, summarise one run, or compare two runs."""
    from repro.provenance.drift import compare_runs
    from repro.provenance.manifest import RunLedger
    from repro.provenance.report import (
        _summaries,
        format_drift_report,
        format_run_report,
    )

    ledger = RunLedger(args.runs_dir)
    if args.prune is not None:
        removed = ledger.prune(args.prune)
        print(f"pruned {len(removed)} runs, kept {len(ledger.ids())}")
        return 0
    if args.compare:
        run_a, run_b = args.compare
        manifest_a = ledger.get(run_a)
        manifest_b = ledger.get(run_b)
        report = compare_runs(manifest_a, manifest_b)
        rendered = format_drift_report(
            report, manifest_a, manifest_b, ledger, fmt=args.format
        )
        _emit_report(rendered, args.out)
        return 0 if report.clean else 1
    if args.run_id:
        manifest = ledger.get(args.run_id)
        _emit_report(
            format_run_report(manifest, ledger, fmt=args.format), args.out
        )
        return 0
    manifests = ledger.list()
    if args.ids:
        for manifest in manifests:
            print(manifest.run_id)
        return 0
    if not manifests:
        print(
            f"run ledger {ledger.root} is empty; run `accelerator-wall "
            "export` or `plot fig13` to record a run"
        )
        return 0
    print(f"=== run ledger ({ledger.root}) ===")
    print(render_rows(_summaries(manifests)))
    return 0


def _emit_report(rendered: str, out: Optional[str]) -> None:
    if out:
        from pathlib import Path

        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        print(f"wrote report {path}")
    else:
        print(rendered, end="")


def _cmd_tables(args) -> int:
    for title, rows in (
        ("Table I: specialization concepts", table1_specialization_concepts()),
        ("Table III: sweep parameters", table3_sweep_parameters()),
        ("Table IV: applications", table4_applications()),
        ("Table V: wall parameters", table5_wall_parameters()),
    ):
        print(f"\n=== {title} ===")
        print(render_rows(rows))
    return 0


def _study_object(name: str, model: CmosPotentialModel):
    from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders

    if name == "video":
        return video_decoders.study()
    if name == "gpu":
        return gpu_graphics.study()
    if name == "cnn":
        return fpga_cnn.study("alexnet")
    if name == "bitcoin":
        return bitcoin.study()
    raise ValueError(f"unknown study {name!r}; known: {STUDIES}")


def _cmd_study(args) -> int:
    model = _model(args)
    study = _study_object(args.name, model)
    series = study.performance_series(model)
    print(f"=== {study.name}: performance CSR series ===")
    print(render_rows([
        {"chip": p.name, "node": f"{p.node_nm:g}nm", "gain_x": p.gain,
         "physical_x": p.physical, "csr_x": p.csr}
        for p in series
    ]))
    summary = study.summary(model)
    print("\nsummary: " + ", ".join(f"{k}={v:.3g}" for k, v in summary.items()))
    return 0


def _cmd_wall(args) -> int:
    from repro.wall import time_to_wall_all_domains, wall_report_all_domains

    model = _model(args)
    rows = []
    for report in wall_report_all_domains(model):
        low, high = report.headroom
        rows.append(
            {
                "domain": report.domain,
                "metric": report.metric,
                "best_today": f"{report.current_best:.4g} {report.gain_unit}",
                "wall_log": f"{report.projected_log:.4g}",
                "wall_linear": f"{report.projected_linear:.4g}",
                "headroom": f"{low:.1f}-{high:.1f}x",
            }
        )
    print(render_rows(rows))
    print("\nat historical pace:")
    for estimate in time_to_wall_all_domains(model):
        print(f"  {estimate.describe()}")
    return 0


def _cmd_maturity(args) -> int:
    from repro.csr.trends import assess_maturity
    from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders

    model = _model(args)
    domains = [
        ("video_decoders", video_decoders.study()),
        ("gpu_graphics", gpu_graphics.study()),
        ("fpga_cnn_alexnet", fpga_cnn.study("alexnet")),
        ("bitcoin_asic", bitcoin.asic_study()),
    ]
    for name, study in domains:
        assessment = assess_maturity(study.performance_series(model), name)
        print(assessment.describe())
    return 0


PLOTS = ("fig1", "fig4", "fig9", "fig13", "fig15")


def _cmd_plot(args) -> int:
    tracer = _obs_begin(args)
    manifest = _capture_manifest(args, "plot")
    engine_box = {}
    try:
        return _plot_body(args, engine_box)
    finally:
        _obs_finish(
            args, tracer, manifest=manifest, engine=engine_box.get("engine")
        )


def _plot_body(args, engine_box) -> int:
    from repro.reporting.ascii_plots import (
        plot_csr_series,
        plot_frontier,
        plot_runtime_power,
    )

    model = _model(args)
    name = args.figure
    if name == "fig1":
        from repro.studies import bitcoin

        series = bitcoin.asic_study().performance_series(model)
        print(plot_csr_series(series, "Fig 1: Bitcoin ASIC evolution"))
    elif name == "fig4":
        from repro.studies import video_decoders

        series = video_decoders.study().performance_series(model).sorted_by_gain()
        print(plot_csr_series(series, "Fig 4a: video decoder throughput"))
    elif name == "fig9":
        from repro.studies import bitcoin

        series = bitcoin.study().performance_series(model)
        print(plot_csr_series(series, "Fig 9a: mining gains across platforms"))
    elif name == "fig13":
        from repro.accel.sweep import default_design_grid
        from repro.workloads import get_workload

        engine = engine_box["engine"] = _dse_engine(args)
        kernel = engine.trace(get_workload("S3D"))
        if getattr(args, "full_grid", False):
            grid = default_design_grid()  # full Table III cross product
        else:
            grid = default_design_grid(
                nodes=(45.0, 22.0, 10.0, 5.0),
                partitions=(1, 4, 16, 64, 256, 1024),
                simplifications=(1, 5, 9, 13),
            )
        result = engine.sweep(kernel, grid)
        print(plot_runtime_power(result.reports))
        print(f"[dse] {result.stats.describe()}")
    elif name == "fig15":
        from repro.wall import accelerator_wall, upper_frontier
        from repro.wall.limits import _limits

        tech = getattr(args, "tech", None)
        backend = None
        if tech and tech != "cmos":
            from repro.tech import get_backend

            backend = get_backend(tech)
        for domain in _limits():
            row = _limits()[domain]
            if backend is not None:
                # Scenario stance: history stays CMOS, the limit chip is
                # built under the selected backend.
                history_model = CmosPotentialModel.paper()
                report = accelerator_wall(
                    domain,
                    history_model,
                    "performance",
                    limits_row=backend.wall_limits(row),
                    limit_model=backend.model(),
                )
                title = f"Fig 15: {domain} [{backend.name}]"
            else:
                history_model = model
                report = accelerator_wall(domain, model)
                title = f"Fig 15: {domain}"
            # Reconstruct the scatter the report was fitted on.
            study = row.study_factory()
            series = study.performance_series(history_model)
            base = study.chips[0].metric(study.performance_metric)
            points = [(p.physical, p.gain * base) for p in series]
            frontier = upper_frontier(points)
            print(plot_frontier(points, frontier, title))
            if backend is not None:
                print(report.describe())
            print()
    else:  # pragma: no cover - argparse choices prevent this
        raise ValueError(name)
    return 0


def _cmd_insights(args) -> int:
    from repro.studies.insights import default_insights

    model = _model(args)
    failures = 0
    for insight in default_insights(model):
        print(insight.describe())
        failures += 0 if insight.holds else 1
    return 1 if failures else 0


def _cmd_check(args) -> int:
    from repro.check import run_checks, render_results
    from repro.obs.metrics import metrics

    manifest = _capture_manifest(args, "check")
    results = run_checks(args.subsystem or None, tech=getattr(args, "tech", None))
    print(render_results(results))
    if manifest is not None:
        manifest.checks = [result.to_dict() for result in results]
        _record_manifest(manifest, metrics().snapshot())
    return 0 if all(result.ok for result in results) else 1


def _cmd_export(args) -> int:
    from repro.reporting.export import export_all

    tracer = _obs_begin(args)
    manifest = _capture_manifest(args, "export")
    engine = None
    try:
        engine = _dse_engine(args)
        names = (
            [name.strip() for name in args.only.split(",") if name.strip()]
            if args.only
            else None
        )
        paths = export_all(
            args.out,
            _model(args),
            fast=not args.full,
            names=names,
            engine=engine,
            manifest=manifest,
            tech=getattr(args, "tech", None),
        )
        for name, path in paths.items():
            print(f"wrote {path}")
        if engine.stats.design_points:
            print(f"[dse] {engine.stats.describe()}")
        return 0
    finally:
        _obs_finish(args, tracer, manifest=manifest, engine=engine)


def _cmd_serve(args) -> int:
    from repro.serve import ServeApp, ServeConfig

    workers = max(1, args.workers)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False)
        and (getattr(args, "cache_dir", None) is not None or workers > 1),
        workers=workers,
        batching=not args.no_batching,
        batch_window_s=args.batch_window_ms / 1e3,
        batch_max=args.batch_max,
        response_cache=args.response_cache,
        rate_limit=args.rate_limit,
        max_inflight=args.max_inflight,
        job_concurrency=args.job_concurrency,
        drain_timeout_s=args.drain_timeout,
        flight_recorder=args.flight_recorder,
    )
    if workers > 1:
        from repro.serve.supervisor import Supervisor

        return Supervisor(config).run()
    return ServeApp(config).run()


class _VersionAction(argparse.Action):
    """``--version`` printing the single-sourced version + git SHA.

    A custom action (not ``action="version"``) so the git subprocess only
    runs when the flag is actually used, not on every parser build.
    """

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "show the package version and git SHA, then exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        import repro

        print(repro.version_string())
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="accelerator-wall",
        description="Reproduction of 'The Accelerator Wall' (HPCA 2019)",
    )
    parser.add_argument("--version", action=_VersionAction, dest="_version")
    parser.add_argument(
        "--refit",
        action="store_true",
        help="refit the CMOS model from the bundled chip population "
        "instead of using the paper's published constants",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured key=value logging on repro.* loggers "
        "(-v: INFO, -vv: DEBUG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables I, III, IV, V").set_defaults(
        func=_cmd_tables
    )

    study = sub.add_parser("study", help="print one case study's CSR series")
    study.add_argument("name", choices=STUDIES)
    study.set_defaults(func=_cmd_study)

    sub.add_parser("wall", help="print the Figs 15-16 projections").set_defaults(
        func=_cmd_wall
    )

    sub.add_parser(
        "maturity", help="classify each domain's CSR maturity"
    ).set_defaults(func=_cmd_maturity)

    sub.add_parser(
        "insights", help="check the Section IV-E observations"
    ).set_defaults(func=_cmd_insights)

    check = sub.add_parser(
        "check",
        help="run the numerical self-diagnostics (refits, invariants, "
        "engine equivalence); nonzero exit on any failure",
    )
    check.add_argument(
        "subsystem",
        nargs="*",
        metavar="SUBSYSTEM",
        help="restrict to these subsystems: cmos, csr, wall, accel, tech "
        "(default: all)",
    )
    _add_tech_option(check)
    check.set_defaults(func=_cmd_check)

    plot = sub.add_parser("plot", help="render a figure as an ASCII plot")
    plot.add_argument("figure", choices=PLOTS)
    plot.add_argument(
        "--full-grid", action="store_true",
        help="fig13: sweep the full Table III grid through the engine (slow)",
    )
    _add_tech_option(plot)
    _add_dse_options(plot)
    plot.set_defaults(func=_cmd_plot)

    stats = sub.add_parser(
        "stats",
        help="show the metrics snapshot persisted by the last DSE-backed run",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="print the raw snapshot as JSON (alias for --format json)",
    )
    stats.add_argument(
        "--format", choices=("table", "json"), default=None,
        help="output format (default: table)",
    )
    stats.set_defaults(func=_cmd_stats)

    tail = sub.add_parser(
        "tail",
        help="live view of a running server's recent requests "
        "(polls /debug/requests)",
    )
    tail.add_argument(
        "--url", default="http://127.0.0.1:8080", metavar="URL",
        help="server base URL (default: http://127.0.0.1:8080)",
    )
    tail.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="poll interval in seconds (default: 2)",
    )
    tail.add_argument(
        "--count", type=int, default=50, metavar="N",
        help="records fetched per poll (default: 50)",
    )
    tail.add_argument(
        "--slow", action="store_true",
        help="show the slowest retained requests (/debug/slow) instead "
        "of the newest",
    )
    tail.add_argument(
        "--once", action="store_true", help="poll once and exit"
    )
    tail.set_defaults(func=_cmd_tail)

    export = sub.add_parser("export", help="write every artifact as JSON")
    export.add_argument("--out", default="artifacts", help="output directory")
    export.add_argument(
        "--full", "--full-grid", dest="full", action="store_true",
        help="use the full Table III sweep grid for Figs 13-14 (slow)",
    )
    export.add_argument(
        "--only", default=None, metavar="NAMES",
        help="comma-separated artifact subset (e.g. fig13,table5, or "
        "per-tech names like fig15_16_tfet)",
    )
    _add_tech_option(export)
    _add_dse_options(export)
    export.set_defaults(func=_cmd_export)

    serve = sub.add_parser(
        "serve",
        help="serve the model over HTTP (JSON endpoints, batching, jobs)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="sweep-engine worker processes for background sweeps "
        "(0 = all cores)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent DSE cache directory (enables the schedule cache)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent DSE cache even if a directory is set",
    )
    serve.add_argument(
        "--no-batching", action="store_true",
        help="disable request micro-batching (each request evaluates alone)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="micro-batch collection window (default: 2ms)",
    )
    serve.add_argument(
        "--batch-max", type=int, default=64, metavar="N",
        help="max distinct payloads per batch flush (default: 64)",
    )
    serve.add_argument(
        "--response-cache", type=int, default=1024, metavar="N",
        help="LRU response-cache entries, 0 disables (default: 1024)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="serve worker processes sharing the port; >1 starts a "
        "supervisor that forks, restarts, and drains them (default: 1)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0, metavar="RPS",
        help="per-client requests/second, 0 disables (default: off)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="per-worker in-flight request cap; past it requests are shed "
        "with 503 + Retry-After, 0 disables (default: 64)",
    )
    serve.add_argument(
        "--job-concurrency", type=int, default=1, metavar="N",
        help="background sweep jobs running simultaneously (default: 1)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="graceful-drain budget on SIGTERM (default: 10s)",
    )
    serve.add_argument(
        "--flight-recorder", type=int, default=256, metavar="N",
        help="request records retained per worker for /debug/requests "
        "and `repro tail` (default: 256)",
    )
    serve.set_defaults(func=_cmd_serve)

    report = sub.add_parser(
        "report",
        help="render run-ledger provenance reports and golden-number drift",
    )
    report.add_argument(
        "run_id", nargs="?", default=None,
        help="summarise this run (default: list the ledger)",
    )
    report.add_argument(
        "--compare", nargs=2, metavar="RUN", default=None,
        help="diff two runs' golden numbers and perf stats (exit 1 on drift)",
    )
    report.add_argument(
        "--format", choices=("md", "html"), default="md",
        help="report rendering (default: md)",
    )
    report.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    report.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="run-ledger directory (default: $REPRO_RUNS_DIR or "
        "<cache-dir>/runs)",
    )
    report.add_argument(
        "--ids", action="store_true",
        help="print run ids only, oldest first (scripting)",
    )
    report.add_argument(
        "--prune", type=int, default=None, metavar="N",
        help="keep only the N most recent runs, delete the rest",
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Any :class:`~repro.errors.ReproError` a command raises is reported as a
    one-line ``error:`` message on stderr with exit code :data:`EXIT_ERROR`
    — library failures are expected operational outcomes (bad dataset,
    degenerate fit), not tracebacks.
    """
    args = build_parser().parse_args(argv)
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    if args.verbose:
        from repro.obs.log import configure_logging

        configure_logging(args.verbose)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
