"""CMOS potential model (paper Section III).

This subpackage models the *physical* capabilities of a chip independently of
any application: device scaling (Fig 3a), the transistor-count-versus-density
regression (Fig 3b), the transistor-count-versus-TDP regression (Fig 3c), and
the combined physical chip-gains model (Fig 3d).

The facade type is :class:`repro.cmos.model.CmosPotentialModel`.
"""

from repro.cmos.nodes import (
    CANONICAL_NODES,
    NODE_ERAS_DENSITY,
    NODE_ERAS_TDP,
    NodeEra,
    density_factor,
    era_for_node,
    parse_node,
)
from repro.cmos.scaling import DeviceScaling, ScalingTable, default_scaling_table
from repro.cmos.transistors import TransistorCountFit, fit_transistor_count, PAPER_DENSITY_FIT
from repro.cmos.tdp import TdpFit, TdpModel, fit_tdp_model, PAPER_TDP_FITS
from repro.cmos.gains import ChipGains, GainsModel
from repro.cmos.model import CmosPotentialModel, PhysicalChip

__all__ = [
    "CANONICAL_NODES",
    "NODE_ERAS_DENSITY",
    "NODE_ERAS_TDP",
    "NodeEra",
    "density_factor",
    "era_for_node",
    "parse_node",
    "DeviceScaling",
    "ScalingTable",
    "default_scaling_table",
    "TransistorCountFit",
    "fit_transistor_count",
    "PAPER_DENSITY_FIT",
    "TdpFit",
    "TdpModel",
    "fit_tdp_model",
    "PAPER_TDP_FITS",
    "ChipGains",
    "GainsModel",
    "CmosPotentialModel",
    "PhysicalChip",
]
