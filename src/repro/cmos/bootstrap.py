"""Bootstrap uncertainty for the CMOS model fits and wall projections.

The paper reports point estimates (one density exponent, one projection
per model).  For a limit study, the *uncertainty* of those estimates
matters: a wall projected from a noisy frontier can move a lot under
resampling.  This module adds nonparametric bootstrap confidence intervals
for the Fig 3b/3c power-law fits and for frontier projections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.cmos.transistors import fit_power_law
from repro.errors import FitError
from repro.wall.projection import ProjectionKind, fit_frontier


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap percentile confidence interval for one statistic."""

    point: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __contains__(self, value: object) -> bool:
        try:
            return self.low <= float(value) <= self.high  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False

    @property
    def width(self) -> float:
        return self.high - self.low

    def describe(self) -> str:
        return (
            f"{self.point:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @ {self.confidence:.0%}"
        )


def _percentile_interval(
    point: float,
    samples: Sequence[float],
    confidence: float,
    n_resamples: int,
) -> BootstrapInterval:
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(np.asarray(samples), [tail, 1.0 - tail])
    return BootstrapInterval(
        point=point,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_power_law_exponent(
    x: Sequence[float],
    y: Sequence[float],
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile CI for the exponent of ``y = c * x**e``.

    Resamples (x, y) pairs with replacement and refits; degenerate
    resamples (fewer than two distinct positive points) are skipped.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y) or len(x) < 3:
        raise FitError("bootstrap needs >= 3 paired points")
    _, point, _ = fit_power_law(x, y)
    rng = np.random.default_rng(seed)
    exponents = []
    attempts = 0
    while len(exponents) < n_resamples and attempts < n_resamples * 3:
        attempts += 1
        index = rng.integers(0, len(x), size=len(x))
        try:
            _, exponent, _ = fit_power_law(x[index], y[index])
        except FitError:
            continue
        exponents.append(exponent)
    if len(exponents) < max(10, n_resamples // 2):
        raise FitError("too many degenerate bootstrap resamples")
    return _percentile_interval(point, exponents, confidence, len(exponents))


def bootstrap_projection(
    points: Sequence[Tuple[float, float]],
    physical_limit: float,
    kind: ProjectionKind = ProjectionKind.LINEAR,
    n_resamples: int = 500,
    confidence: float = 0.9,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile CI for a frontier projection evaluated at the wall.

    Resampling happens over the *raw* scatter; each resample re-extracts
    its own frontier and refits, so the interval reflects both frontier
    membership and fit uncertainty.
    """
    if len(points) < 3:
        raise FitError("bootstrap projection needs >= 3 points")
    point_estimate = fit_frontier(points, kind).predict(physical_limit)
    rng = np.random.default_rng(seed)
    array = np.asarray(points, dtype=float)
    predictions = []
    attempts = 0
    while len(predictions) < n_resamples and attempts < n_resamples * 3:
        attempts += 1
        index = rng.integers(0, len(array), size=len(array))
        resample = [tuple(row) for row in array[index]]
        try:
            fit = fit_frontier(resample, kind)
        except Exception:
            continue
        predictions.append(fit.predict(physical_limit))
    if len(predictions) < max(10, n_resamples // 2):
        raise FitError("too many degenerate bootstrap resamples")
    return _percentile_interval(
        point_estimate, predictions, confidence, len(predictions)
    )


def density_exponent_interval(
    database,
    n_resamples: int = 300,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """Bootstrap CI for the Fig 3b density exponent over a chip database."""
    density, transistors = database.density_points()
    return bootstrap_power_law_exponent(
        density, transistors, n_resamples, confidence, seed
    )
