"""Physical chip-gains model (paper Fig 3d).

Integrates the device-scaling model (Fig 3a) with the transistor-budget
models (Figs 3b/3c) to estimate a chip's CMOS-driven throughput and energy
efficiency from its physical description alone.

Modelling choices (all relative quantities; absolute units cancel when gains
are expressed as ratios, which is the only way the paper uses them):

* throughput  ``T = active_transistors * frequency`` — accelerated workloads
  are highly parallel, so compute scales with switching devices.
* dynamic power  ``P_dyn = active * e_dyn(node) * f * kappa`` with ``kappa``
  calibrated via a reference full-activity power density at 45nm.
* leakage power  ``P_leak = potential * p_leak(node) * lambda`` — every
  fabricated transistor leaks whether or not the TDP lets it switch.
* TDP capping: when ``P_dyn + P_leak`` exceeds the envelope, the active
  fraction is scaled down to fit, reproducing Fig 3d's "power zones" where
  large dies on new nodes lose most of their potential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cmos.scaling import REFERENCE_NODE, ScalingTable, default_scaling_table
from repro.cmos.transistors import PAPER_DENSITY_FIT, TransistorCountFit
from repro.validate import require_finite, require_fraction, require_positive


@dataclass(frozen=True)
class GainsConfig:
    """Calibration constants for the physical gains model.

    ``ref_dynamic_density_w_mm2``
        Full-activity dynamic power density of the reference chip
        (45nm, 1GHz), in W/mm^2.  Sets how quickly TDP envelopes bite.
    ``ref_leakage_density_w_mm2``
        Leakage power density of the reference chip in W/mm^2.
    ``min_active_fraction``
        Floor on the active fraction under extreme TDP starvation, so
        throughput never reaches exactly zero (matching the paper's log-scale
        plots, which have no zero values).
    """

    ref_dynamic_density_w_mm2: float = 1.2
    ref_leakage_density_w_mm2: float = 0.016
    ref_area_mm2: float = 25.0
    ref_frequency_mhz: float = 1000.0
    min_active_fraction: float = 1e-4

    def __post_init__(self) -> None:
        require_positive(self.ref_dynamic_density_w_mm2, "ref_dynamic_density_w_mm2")
        require_positive(self.ref_leakage_density_w_mm2, "ref_leakage_density_w_mm2")
        require_positive(self.ref_area_mm2, "ref_area_mm2")
        require_positive(self.ref_frequency_mhz, "ref_frequency_mhz")
        require_fraction(self.min_active_fraction, "min_active_fraction")


@dataclass(frozen=True)
class ChipGains:
    """Physical evaluation of one chip configuration.

    ``throughput`` is in arbitrary units (transistor-gigahertz); only ratios
    between two :class:`ChipGains` are meaningful, exactly as in the paper.
    """

    node_nm: float
    area_mm2: float
    frequency_mhz: float
    tdp_w: Optional[float]
    potential_transistors: float
    active_transistors: float
    power_w: float
    tdp_limited: bool

    @property
    def throughput(self) -> float:
        """Relative compute throughput: active devices x frequency (GHz)."""
        return self.active_transistors * (self.frequency_mhz / 1e3)

    @property
    def energy_efficiency(self) -> float:
        """Relative operations per joule: throughput per watt dissipated."""
        return self.throughput / self.power_w

    @property
    def throughput_per_area(self) -> float:
        """Relative throughput per mm^2 (the Bitcoin-study metric)."""
        return self.throughput / self.area_mm2

    @property
    def active_fraction(self) -> float:
        """Share of fabricated transistors the power envelope keeps active."""
        return self.active_transistors / self.potential_transistors

    def metric(self, name: str) -> float:
        """Look up a gain metric by name.

        Supported names: ``throughput``, ``energy_efficiency``,
        ``throughput_per_area``.
        """
        try:
            return {
                "throughput": self.throughput,
                "energy_efficiency": self.energy_efficiency,
                "throughput_per_area": self.throughput_per_area,
            }[name]
        except KeyError:
            raise ValueError(f"unknown gain metric {name!r}") from None


class GainsModel:
    """Computes :class:`ChipGains` from physical chip parameters."""

    def __init__(
        self,
        density_fit: TransistorCountFit = PAPER_DENSITY_FIT,
        scaling: Optional[ScalingTable] = None,
        config: GainsConfig = GainsConfig(),
    ):
        self._density_fit = density_fit
        self._scaling = scaling if scaling is not None else default_scaling_table()
        self._config = config
        # Calibrate kappa / lambda from the reference chip so the config's
        # power densities hold exactly at (45nm, ref area, ref frequency).
        ref_tc = density_fit.transistors_for_chip(config.ref_area_mm2, REFERENCE_NODE)
        ref = self._scaling.relative(REFERENCE_NODE)
        ref_f_ghz = config.ref_frequency_mhz / 1e3
        self._kappa = (
            config.ref_dynamic_density_w_mm2
            * config.ref_area_mm2
            / (ref_tc * ref.dynamic_energy * ref_f_ghz)
        )
        self._lambda = (
            config.ref_leakage_density_w_mm2
            * config.ref_area_mm2
            / (ref_tc * ref.leakage_power)
        )

    @property
    def density_fit(self) -> TransistorCountFit:
        return self._density_fit

    @property
    def scaling(self) -> ScalingTable:
        return self._scaling

    @property
    def config(self) -> GainsConfig:
        return self._config

    def evaluate(
        self,
        node_nm: "float | str",
        frequency_mhz: float,
        area_mm2: Optional[float] = None,
        transistors: Optional[float] = None,
        tdp_w: Optional[float] = None,
    ) -> ChipGains:
        """Evaluate the physical gains of one chip configuration.

        Exactly one of *area_mm2* / *transistors* may be omitted: the missing
        one is derived through the density fit.  Without *tdp_w* the chip is
        evaluated uncapped (its power draw is reported but not limited).
        """
        from repro.cmos.nodes import parse_node

        node = parse_node(node_nm)
        require_positive(frequency_mhz, "frequency")
        if area_mm2 is None and transistors is None:
            raise ValueError("one of area_mm2 / transistors is required")
        if transistors is None:
            require_positive(area_mm2, "die area")
            potential = self._density_fit.transistors_for_chip(area_mm2, node)
        else:
            potential = require_positive(transistors, "transistor count")
            if area_mm2 is None:
                area_mm2 = self._density_fit.area_for(potential, node)
        rel = self._scaling.relative(node)
        f_ghz = frequency_mhz / 1e3
        leak_w = potential * rel.leakage_power * self._lambda
        dyn_full_w = potential * rel.dynamic_energy * f_ghz * self._kappa

        active_fraction = 1.0
        tdp_limited = False
        if tdp_w is not None:
            require_positive(tdp_w, "TDP")
            headroom = tdp_w - leak_w
            budget = max(headroom, self._config.min_active_fraction * dyn_full_w)
            if dyn_full_w > budget:
                active_fraction = budget / dyn_full_w
                tdp_limited = True
        active = potential * active_fraction
        power = leak_w + dyn_full_w * active_fraction
        require_positive(power, "modelled chip power")
        require_finite(active, "active transistor count")
        return ChipGains(
            node_nm=node,
            area_mm2=float(area_mm2),
            frequency_mhz=float(frequency_mhz),
            tdp_w=tdp_w,
            potential_transistors=potential,
            active_transistors=active,
            power_w=power,
            tdp_limited=tdp_limited,
        )
