"""Dennard-scaling counterfactuals and beyond-5nm extrapolation.

Two "what if" analyses around the paper's framing:

* **Dennard gap** — the paper's motivation is the demise of Dennard
  scaling.  Under ideal Dennard rules a shrink by factor ``s`` gives
  frequency x``s`` and voltage /``s`` at constant power density; the model
  here quantifies how far each real node fell short (the frequency
  shortfall and power-density excess that forced the turn to
  specialization).
* **Beyond-5nm counterfactual** — the wall study assumes scaling stops at
  5nm (IRDS).  Extrapolating the scaling table geometrically to
  hypothetical 3nm/2nm nodes shows how much each extra node would have been
  worth — i.e. what the end of scaling costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cmos.scaling import (
    REFERENCE_NODE,
    DeviceScaling,
    ScalingTable,
    default_scaling_table,
)


@dataclass(frozen=True)
class DennardGap:
    """How far a node fell short of ideal Dennard scaling from 45nm."""

    node_nm: float
    shrink: float                 # 45 / node
    ideal_frequency: float        # = shrink (relative to 45nm)
    actual_frequency: float
    frequency_shortfall: float    # ideal / actual  (>= 1 post-Dennard)
    ideal_power_density: float    # = 1.0 under Dennard
    actual_power_density: float   # dynamic power density relative to 45nm
    power_density_excess: float   # actual / ideal


def dennard_ideal(node_nm: float, reference_nm: float = REFERENCE_NODE) -> DeviceScaling:
    """Ideal Dennard-rule scaling factors relative to *reference_nm*.

    Shrink factor ``s = reference / node``:
    frequency x``s``, VDD /``s``, capacitance /``s``, and per-device
    leakage ~0 (Dennard-era leakage was negligible); dynamic power density
    stays exactly constant.
    """
    shrink = reference_nm / node_nm
    return DeviceScaling(
        node_nm=node_nm,
        vdd=1.0 / shrink,
        frequency=shrink,
        capacitance=1.0 / shrink,
        leakage_power=1e-6,  # effectively zero, kept positive for ratios
    )


def dennard_gap(
    node_nm: float, table: Optional[ScalingTable] = None
) -> DennardGap:
    """Quantify the Dennard gap for one node.

    Power density compares the *per-area* dynamic power: device count grows
    x``s^2`` while per-device power changes by ``C V^2 f``.
    """
    scaling_table = table if table is not None else default_scaling_table()
    actual = scaling_table.relative(node_nm)
    shrink = REFERENCE_NODE / node_nm
    # Per-area dynamic power = devices/area * C * V^2 * f (relative).
    actual_density = (shrink**2) * actual.dynamic_energy * actual.frequency
    return DennardGap(
        node_nm=node_nm,
        shrink=shrink,
        ideal_frequency=shrink,
        actual_frequency=actual.frequency,
        frequency_shortfall=shrink / actual.frequency,
        ideal_power_density=1.0,
        actual_power_density=actual_density,
        power_density_excess=actual_density,
    )


def dennard_gap_series(
    nodes: Sequence[float] = (32.0, 22.0, 14.0, 10.0, 7.0, 5.0),
    table: Optional[ScalingTable] = None,
) -> Dict[float, DennardGap]:
    """The Dennard gap across the post-45nm roadmap."""
    return {node: dennard_gap(node, table) for node in nodes}


#: Geometric per-full-node trend factors used to extrapolate the anchored
#: table below 5nm: each hypothetical shrink buys less (frequency +5%,
#: capacitance -18%, VDD -4%, leakage -10%), continuing the 7nm->5nm trend.
_BEYOND_TRENDS = {
    "vdd": 0.96,
    "frequency": 1.05,
    "capacitance": 0.82,
    "leakage_power": 0.90,
}


def extrapolated_table(
    beyond_nodes: Sequence[float] = (3.0, 2.0),
) -> ScalingTable:
    """A scaling table extended below 5nm for counterfactual studies.

    Returned table covers the real anchors plus hypothetical nodes with
    diminishing per-node improvements (see :data:`_BEYOND_TRENDS`).
    """
    from repro.cmos.scaling import _ANCHORS  # anchored real data

    anchors = dict(_ANCHORS)
    last = anchors[5.0]
    previous_node = 5.0
    for node in sorted(beyond_nodes, reverse=True):
        if node >= previous_node:
            raise ValueError("beyond nodes must shrink monotonically below 5nm")
        vdd, freq, cap, leak = last
        last = (
            vdd * _BEYOND_TRENDS["vdd"],
            freq * _BEYOND_TRENDS["frequency"],
            cap * _BEYOND_TRENDS["capacitance"],
            leak * _BEYOND_TRENDS["leakage_power"],
        )
        anchors[node] = last
        previous_node = node
    return ScalingTable(anchors)


def cost_of_the_wall(
    beyond_node: float = 3.0,
    area_mm2: float = 400.0,
    tdp_w: float = 300.0,
    frequency_mhz: float = 1000.0,
) -> Dict[str, float]:
    """What one more node past 5nm would have been worth.

    Evaluates the physical gains model at 5nm and at the hypothetical
    *beyond_node* (same die/TDP/clock) using the extrapolated scaling
    table.  Reports both the *uncapped* transistor-potential gain and the
    gain under the fixed power envelope — the striking outcome being that
    with post-Dennard trends, extra nodes deliver transistors the TDP
    cannot power: the wall is as much a power wall as a lithography wall.
    """
    from repro.cmos.gains import GainsModel

    table = extrapolated_table((beyond_node,))
    model = GainsModel(scaling=table)

    def evaluate(node, capped):
        return model.evaluate(
            node,
            frequency_mhz,
            area_mm2=area_mm2,
            tdp_w=tdp_w if capped else None,
        )

    at_wall = evaluate(5.0, capped=True)
    beyond = evaluate(beyond_node, capped=True)
    at_wall_potential = evaluate(5.0, capped=False)
    beyond_potential = evaluate(beyond_node, capped=False)
    return {
        "uncapped_throughput_gain": (
            beyond_potential.throughput / at_wall_potential.throughput
        ),
        "capped_throughput_gain": beyond.throughput / at_wall.throughput,
        "capped_efficiency_gain": (
            beyond.energy_efficiency / at_wall.energy_efficiency
        ),
        "active_fraction_at_wall": at_wall.active_fraction,
        "active_fraction_beyond": beyond.active_fraction,
    }
