"""Facade over the full CMOS potential model (paper Section III).

:class:`CmosPotentialModel` bundles the device-scaling table, the density
regression (Fig 3b), the per-era TDP budget fits (Fig 3c), and the physical
gains model (Fig 3d) behind the two operations the rest of the library needs:

* evaluate the physical (CMOS-driven) capability of one chip, and
* form the *physical gain ratio* between two chips — the denominator of the
  CSR metric (Eq 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.cmos.gains import ChipGains, GainsConfig, GainsModel
from repro.cmos.nodes import parse_node
from repro.cmos.scaling import ScalingTable, default_scaling_table
from repro.cmos.tdp import TdpModel, fit_tdp_model, paper_tdp_model
from repro.cmos.transistors import (
    PAPER_DENSITY_FIT,
    TransistorCountFit,
    fit_transistor_count,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.datasheets.database import ChipDatabase
    from repro.datasheets.schema import ChipSpec


@dataclass(frozen=True)
class PhysicalChip:
    """A chip spec together with its CMOS-model evaluation."""

    name: str
    gains: ChipGains

    def metric(self, name: str) -> float:
        return self.gains.metric(name)


class CmosPotentialModel:
    """Application-independent model of a chip's CMOS-driven capabilities."""

    def __init__(
        self,
        density_fit: TransistorCountFit = PAPER_DENSITY_FIT,
        tdp_model: Optional[TdpModel] = None,
        scaling: Optional[ScalingTable] = None,
        gains_config: GainsConfig = GainsConfig(),
    ):
        self._density_fit = density_fit
        self._tdp_model = tdp_model if tdp_model is not None else paper_tdp_model()
        self._scaling = scaling if scaling is not None else default_scaling_table()
        self._gains = GainsModel(density_fit, self._scaling, gains_config)

    # -- constructors -------------------------------------------------------

    @classmethod
    def paper(cls) -> "CmosPotentialModel":
        """Model built from the paper's published fit constants."""
        return cls()

    @classmethod
    def from_database(cls, database: "ChipDatabase") -> "CmosPotentialModel":
        """Model refitted from a datasheet population (paper methodology)."""
        return cls(
            density_fit=fit_transistor_count(database),
            tdp_model=fit_tdp_model(database),
        )

    @classmethod
    def reference(cls) -> "CmosPotentialModel":
        """Model fitted over the library's default chip population."""
        from repro.datasheets.reference import reference_database

        return cls.from_database(reference_database())

    # -- component access ----------------------------------------------------

    @property
    def density_fit(self) -> TransistorCountFit:
        return self._density_fit

    @property
    def tdp_model(self) -> TdpModel:
        return self._tdp_model

    @property
    def scaling(self) -> ScalingTable:
        return self._scaling

    @property
    def gains_model(self) -> GainsModel:
        return self._gains

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self,
        node_nm: "float | str",
        frequency_mhz: float,
        area_mm2: Optional[float] = None,
        transistors: Optional[float] = None,
        tdp_w: Optional[float] = None,
        cap_mode: str = "analytic",
    ) -> ChipGains:
        """Physical gains for a chip configuration.

        ``cap_mode`` selects how *tdp_w* limits the active budget:

        * ``"analytic"`` (default) — the Fig 3d device-power model: active
          fraction shrinks until dynamic + leakage power fit the envelope;
        * ``"empirical"`` — the Fig 3c per-era power-law fit: active
          transistors are ``min(potential, budget(node, TDP, f))``, the
          mechanism the paper quotes for its transistor-budget projections.
        """
        if cap_mode not in ("analytic", "empirical"):
            raise ValueError(f"unknown cap_mode {cap_mode!r}")
        if cap_mode == "analytic" or tdp_w is None:
            return self._gains.evaluate(
                node_nm,
                frequency_mhz,
                area_mm2=area_mm2,
                transistors=transistors,
                tdp_w=tdp_w,
            )
        uncapped = self._gains.evaluate(
            node_nm,
            frequency_mhz,
            area_mm2=area_mm2,
            transistors=transistors,
            tdp_w=None,
        )
        budget = self._tdp_model.active_transistors(
            node_nm, tdp_w, frequency_mhz
        )
        if budget >= uncapped.potential_transistors:
            return uncapped
        from dataclasses import replace

        return replace(
            uncapped,
            tdp_w=tdp_w,
            active_transistors=budget,
            # A budget-capped chip runs at its thermal envelope.
            power_w=min(uncapped.power_w, tdp_w),
            tdp_limited=True,
        )

    def evaluate_spec(
        self, spec: "ChipSpec", capped: "bool | str" = True
    ) -> PhysicalChip:
        """Evaluate a datasheet record.

        *capped* may be ``True`` (analytic TDP capping, the default),
        ``False`` (uncapped transistor potential), or one of the
        :meth:`evaluate` ``cap_mode`` strings.
        """
        if capped is False:
            tdp, mode = None, "analytic"
        elif capped is True:
            tdp, mode = spec.tdp_w, "analytic"
        else:
            tdp, mode = spec.tdp_w, str(capped)
        gains = self.evaluate(
            spec.node_nm,
            spec.frequency_mhz,
            area_mm2=spec.area_mm2,
            transistors=spec.transistors,
            tdp_w=tdp,
            cap_mode=mode,
        )
        return PhysicalChip(name=spec.name, gains=gains)

    def potential_gain(
        self,
        spec: "ChipSpec",
        baseline: "ChipSpec",
        metric: str = "throughput",
        capped: "bool | str" = True,
    ) -> float:
        """CMOS-driven gain of *spec* over *baseline* for *metric*.

        This is ``Gain(Phy_A) / Gain(Phy_B)`` from Eq 2 — the denominator of
        the CSR computation.  *capped* follows :meth:`evaluate_spec`.
        """
        a = self.evaluate_spec(spec, capped=capped).gains.metric(metric)
        b = self.evaluate_spec(baseline, capped=capped).gains.metric(metric)
        return a / b

    def active_budget(
        self, node_nm: "float | str", tdp_w: float, frequency_mhz: float
    ) -> float:
        """Fig 3c query: active transistors for (node, TDP, frequency)."""
        return self._tdp_model.active_transistors(node_nm, tdp_w, frequency_mhz)

    # -- figure regeneration ---------------------------------------------------

    def fig3d_grid(
        self,
        nodes: Sequence[float] = (45.0, 28.0, 16.0, 10.0, 7.0, 5.0),
        dies_mm2: Sequence[float] = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0),
        tdp_zones_w: Sequence[Optional[float]] = (50.0, 200.0, 800.0, None),
        frequency_mhz: float = 1000.0,
    ) -> Dict[Tuple[float, float, Optional[float]], Dict[str, float]]:
        """Fig 3d: relative throughput / energy efficiency over a grid.

        Returns ``{(node, die, tdp_zone): {"throughput": x, "energy_efficiency": y}}``
        normalised to the (oldest node, smallest die, uncapped) corner,
        matching the figure's "normalised to a 25mm^2 45nm chip".  ``None``
        in *tdp_zones_w* means an unconstrained power envelope.
        """
        base_node = max(parse_node(n) for n in nodes)
        base_die = min(dies_mm2)
        baseline = self.evaluate(base_node, frequency_mhz, area_mm2=base_die)
        grid: Dict[Tuple[float, float, Optional[float]], Dict[str, float]] = {}
        for node in nodes:
            for die in dies_mm2:
                for tdp in tdp_zones_w:
                    gains = self.evaluate(
                        node, frequency_mhz, area_mm2=die, tdp_w=tdp
                    )
                    grid[(parse_node(node), die, tdp)] = {
                        "throughput": gains.throughput / baseline.throughput,
                        "energy_efficiency": gains.energy_efficiency
                        / baseline.energy_efficiency,
                    }
        return grid
