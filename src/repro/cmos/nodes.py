"""CMOS process-node registry, parsing, and node-era grouping.

The paper groups chips into *node eras* twice:

* Fig 3b (transistor count vs. density factor) uses the eras
  ``180nm-90nm``, ``80nm-45nm``, ``40nm-20nm``, ``16nm-12nm``.
* Fig 3c (transistor budget vs. TDP) uses the eras
  ``55nm-40nm``, ``32nm-28nm``, ``22nm-12nm``, ``10nm-5nm`` (the last one a
  projection).

The *density factor* ``D = area / node^2`` (mm^2 / nm^2, scaled by 1e6 to keep
numbers readable in the paper's figure axes — we keep raw mm^2/nm^2 and note
the scale where it matters) is the x-axis of the Fig 3b regression.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import UnknownNodeError

#: Process nodes (nm) appearing anywhere in the paper, newest last.
CANONICAL_NODES: tuple[float, ...] = (
    180.0, 130.0, 110.0, 90.0, 80.0, 65.0, 55.0, 45.0, 40.0, 32.0, 28.0,
    22.0, 20.0, 16.0, 14.0, 12.0, 10.0, 7.0, 5.0,
)

#: The final CMOS node projected by IRDS 2017 and used for the wall study.
FINAL_NODE: float = 5.0

#: Hard plausibility bounds for node parsing.  Wider than the canonical
#: roadmap so counterfactual sub-5nm studies (repro.cmos.history) can run;
#: still narrow enough to catch unit mistakes (e.g. 0.028 for 28nm).
_MIN_NODE_NM: float = 1.0
_MAX_NODE_NM: float = 250.0

_VALID_RANGE = (_MAX_NODE_NM, _MIN_NODE_NM)

_NODE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*nm\s*$", re.IGNORECASE)


def parse_node(node: "float | int | str") -> float:
    """Normalise a node given as ``28``, ``28.0`` or ``"28nm"`` to float nm.

    Raises :class:`repro.errors.UnknownNodeError` for values outside the
    modelled range (5nm..180nm) or unparseable strings.
    """
    if isinstance(node, str):
        match = _NODE_RE.match(node)
        if match is None:
            raise UnknownNodeError(node, _VALID_RANGE)
        value = float(match.group(1))
    else:
        value = float(node)
    if not (_MIN_NODE_NM <= value <= _MAX_NODE_NM):
        raise UnknownNodeError(node, _VALID_RANGE)
    return value


def density_factor(area_mm2: float, node_nm: float) -> float:
    """Chip transistor density factor ``D = A / N^2`` in mm^2/nm^2.

    This is the abscissa of the paper's Fig 3b.  ``D`` grows with die area and
    with process shrinks; a 100mm^2 die at 10nm has ``D = 1.0``.
    """
    if area_mm2 <= 0:
        raise ValueError(f"die area must be positive, got {area_mm2!r}")
    node = parse_node(node_nm)
    return area_mm2 / (node * node)


@dataclass(frozen=True)
class NodeEra:
    """A contiguous range of process nodes treated as one technology era."""

    name: str
    newest_nm: float  # smallest feature size in the era
    oldest_nm: float  # largest feature size in the era

    def __post_init__(self) -> None:
        if self.newest_nm > self.oldest_nm:
            raise ValueError(
                f"era {self.name!r}: newest node {self.newest_nm} must be <= "
                f"oldest node {self.oldest_nm}"
            )

    def __contains__(self, node: object) -> bool:
        try:
            value = parse_node(node)  # type: ignore[arg-type]
        except UnknownNodeError:
            return False
        return self.newest_nm <= value <= self.oldest_nm

    @property
    def midpoint_nm(self) -> float:
        """Geometric midpoint of the era, used for representative scaling."""
        return (self.newest_nm * self.oldest_nm) ** 0.5


#: Node eras used by the Fig 3b transistor-count regression legend.
NODE_ERAS_DENSITY: tuple[NodeEra, ...] = (
    NodeEra("180nm-90nm", 90.0, 180.0),
    NodeEra("80nm-45nm", 45.0, 80.0),
    NodeEra("40nm-20nm", 20.0, 40.0),
    NodeEra("16nm-12nm", 12.0, 16.0),
)

#: Node eras used by the Fig 3c TDP transistor-budget fits.
NODE_ERAS_TDP: tuple[NodeEra, ...] = (
    NodeEra("55nm-40nm", 40.0, 55.0),
    NodeEra("32nm-28nm", 28.0, 32.0),
    NodeEra("22nm-12nm", 12.0, 22.0),
    NodeEra("10nm-5nm", 5.0, 10.0),
)


def era_for_node(
    node: "float | int | str",
    eras: Sequence[NodeEra] = NODE_ERAS_TDP,
    *,
    nearest: bool = True,
) -> Optional[NodeEra]:
    """Return the era containing *node*.

    When *nearest* is true (the default) a node falling in a gap between eras
    is assigned to the era whose boundary is geometrically closest, so every
    modelled node maps to some era.  With ``nearest=False`` gaps return
    ``None``.
    """
    value = parse_node(node)
    for era in eras:
        if value in era:
            return era
    if not nearest:
        return None

    def distance(era: NodeEra) -> float:
        if value < era.newest_nm:
            return era.newest_nm / value
        return value / era.oldest_nm

    return min(eras, key=distance)


def nodes_between(
    oldest_nm: float, newest_nm: float, nodes: Iterable[float] = CANONICAL_NODES
) -> tuple[float, ...]:
    """All canonical nodes in ``[newest_nm, oldest_nm]``, oldest first."""
    lo, hi = sorted((parse_node(oldest_nm), parse_node(newest_nm)))
    selected = [n for n in nodes if lo <= n <= hi]
    return tuple(sorted(selected, reverse=True))
