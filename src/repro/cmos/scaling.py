"""Device-level CMOS scaling model (paper Fig 3a).

The paper derives device scaling from the Stillmaker & Baas scaling equations
(180nm..7nm) extended with the IRDS 2017 projection for 5nm.  We encode the
same information as a table of per-node scaling factors, normalised to 45nm,
with geometric (log-log) interpolation for nodes between table entries.

Modelled quantities per node:

``vdd``
    Nominal supply voltage in volts (absolute, not relative).
``frequency``
    Achievable clock frequency relative to 45nm (inverse FO4 delay).
``capacitance``
    Switched gate capacitance per device relative to 45nm.
``leakage_power``
    Static power per device relative to 45nm.
``dynamic_energy``
    Energy per switching event, ``C * VDD^2``, relative to 45nm (derived).
``dynamic_power``
    Dynamic power per device at the node's native frequency,
    ``C * VDD^2 * f``, relative to 45nm (derived).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.cmos.nodes import parse_node
from repro.errors import UnknownNodeError

#: Reference node everything is normalised to (matching Fig 3a / Fig 3d).
REFERENCE_NODE: float = 45.0

# Per-node anchors: node -> (vdd_volts, rel_frequency, rel_capacitance,
# rel_leakage_power).  Derived from the Stillmaker & Baas scaling tables with
# the IRDS-2017 5nm projection; relative columns are normalised to 45nm.
_ANCHORS: Dict[float, Tuple[float, float, float, float]] = {
    180.0: (1.80, 0.30, 4.00, 1.50),
    130.0: (1.30, 0.42, 2.90, 1.40),
    110.0: (1.20, 0.48, 2.45, 1.35),
    90.0:  (1.10, 0.58, 2.00, 1.30),
    80.0:  (1.10, 0.63, 1.78, 1.25),
    65.0:  (1.00, 0.78, 1.45, 1.15),
    55.0:  (1.00, 0.88, 1.22, 1.07),
    45.0:  (0.97, 1.00, 1.00, 1.00),
    40.0:  (0.95, 1.07, 0.89, 0.95),
    32.0:  (0.90, 1.20, 0.72, 0.85),
    28.0:  (0.88, 1.28, 0.63, 0.80),
    22.0:  (0.84, 1.40, 0.50, 0.70),
    20.0:  (0.82, 1.45, 0.46, 0.67),
    16.0:  (0.78, 1.58, 0.38, 0.58),
    14.0:  (0.76, 1.63, 0.34, 0.55),
    12.0:  (0.74, 1.70, 0.30, 0.51),
    10.0:  (0.72, 1.78, 0.26, 0.47),
    7.0:   (0.68, 1.90, 0.20, 0.40),
    5.0:   (0.63, 2.00, 0.16, 0.35),
}


@dataclass(frozen=True)
class DeviceScaling:
    """Scaling factors for a single process node (relative to 45nm)."""

    node_nm: float
    vdd: float
    frequency: float
    capacitance: float
    leakage_power: float

    @property
    def dynamic_energy(self) -> float:
        """Energy per switching event: ``C * VDD^2``.

        For a row produced by :meth:`relative_to` every field is a ratio, so
        this is the exact dynamic-energy ratio between the two nodes.  For an
        absolute table row the value carries arbitrary units — normalise by
        the reference row's ``dynamic_energy`` before comparing.
        """
        return self.capacitance * self.vdd**2

    @property
    def dynamic_power(self) -> float:
        """Dynamic power per device at native frequency, relative to 45nm."""
        return self.dynamic_energy * self.frequency

    def relative_to(self, other: "DeviceScaling") -> "DeviceScaling":
        """Re-normalise this node's factors against *other* (ratio form)."""
        return DeviceScaling(
            node_nm=self.node_nm,
            vdd=self.vdd / other.vdd,
            frequency=self.frequency / other.frequency,
            capacitance=self.capacitance / other.capacitance,
            leakage_power=self.leakage_power / other.leakage_power,
        )


class ScalingTable:
    """Interpolating lookup of :class:`DeviceScaling` by process node.

    Interpolation is geometric in (log node, log factor) space, which keeps
    ratios consistent: halving the node applies the same multiplicative step
    regardless of where in the range it happens.
    """

    def __init__(self, anchors: Mapping[float, Tuple[float, float, float, float]]):
        if len(anchors) < 2:
            raise ValueError("scaling table needs at least two anchor nodes")
        self._nodes = tuple(sorted(anchors))
        self._anchors = {float(k): tuple(map(float, v)) for k, v in anchors.items()}

    @property
    def nodes(self) -> Tuple[float, ...]:
        """Anchor nodes, oldest (largest) last."""
        return tuple(sorted(self._nodes, reverse=True))

    @property
    def anchors(self) -> Dict[float, Tuple[float, float, float, float]]:
        """A copy of the raw anchor rows (node -> (vdd, f, C, leak))."""
        return {node: tuple(self._anchors[node]) for node in self._nodes}

    def scaled(
        self,
        vdd_scale: float = 1.0,
        frequency_scale: float = 1.0,
        capacitance_scale: float = 1.0,
        leakage_scale: float = 1.0,
    ) -> "ScalingTable":
        """A derived table with every anchor column uniformly rescaled.

        Technology backends (:mod:`repro.tech`) use this to express a
        device technology's published operating point (lower VDD, steeper
        subthreshold slope, different drive current) through the same
        Fig 3a table.  Note that the potential model consumes this table
        only in *ratio* form (node vs. 45nm reference), where uniform
        scales cancel — the derived table changes the absolute device
        surfaces reported per backend, while the power-side effect on chip
        gains enters through the :class:`~repro.cmos.gains.GainsConfig`
        reference densities.
        """
        for label, scale in (
            ("vdd", vdd_scale),
            ("frequency", frequency_scale),
            ("capacitance", capacitance_scale),
            ("leakage", leakage_scale),
        ):
            if not (math.isfinite(scale) and scale > 0):
                raise ValueError(f"non-positive {label} scale {scale!r}")
        return ScalingTable(
            {
                node: (
                    vdd * vdd_scale,
                    freq * frequency_scale,
                    cap * capacitance_scale,
                    leak * leakage_scale,
                )
                for node, (vdd, freq, cap, leak) in self._anchors.items()
            }
        )

    def scaling(self, node: "float | str") -> DeviceScaling:
        """Scaling factors for *node*, interpolating between anchors."""
        value = parse_node(node)
        if value in self._anchors:
            vdd, freq, cap, leak = self._anchors[value]
            return DeviceScaling(value, vdd, freq, cap, leak)
        if not (self._nodes[0] <= value <= self._nodes[-1]):
            raise UnknownNodeError(node, (self._nodes[-1], self._nodes[0]))
        lo = max(n for n in self._nodes if n < value)
        hi = min(n for n in self._nodes if n > value)
        t = (math.log(value) - math.log(lo)) / (math.log(hi) - math.log(lo))

        def lerp(a: float, b: float) -> float:
            return math.exp(math.log(a) * (1 - t) + math.log(b) * t)

        lo_vals = self._anchors[lo]
        hi_vals = self._anchors[hi]
        vdd, freq, cap, leak = (lerp(a, b) for a, b in zip(lo_vals, hi_vals))
        return DeviceScaling(value, vdd, freq, cap, leak)

    def relative(self, node: "float | str", reference: "float | str" = REFERENCE_NODE) -> DeviceScaling:
        """Scaling of *node* expressed relative to *reference*."""
        return self.scaling(node).relative_to(self.scaling(reference))

    def fig3a_series(
        self, nodes: Sequence[float] = (45.0, 28.0, 16.0, 10.0, 7.0, 5.0)
    ) -> Dict[str, Dict[float, float]]:
        """The five panels of Fig 3a: each quantity relative to the first node.

        Returns ``{quantity: {node: relative value}}`` with every series
        normalised so the oldest node in *nodes* equals 1.0 (matching the
        figure, where all curves start at 1.0 and decrease — frequency is
        reported as *delay-normalised* ``1/f`` so that it, too, decreases).
        """
        reference = max(nodes)
        series: Dict[str, Dict[float, float]] = {
            "leakage_power": {},
            "capacitance": {},
            "vdd": {},
            "frequency": {},
            "dynamic_power": {},
        }
        ref = self.scaling(reference)
        for node in sorted(nodes, reverse=True):
            rel = self.scaling(node).relative_to(ref)
            series["leakage_power"][node] = rel.leakage_power
            series["capacitance"][node] = rel.capacitance
            series["vdd"][node] = rel.vdd
            # The figure's "Frequency" panel shows the per-device energy cost
            # of running at speed shrinking; report inverse relative delay
            # gain so the series is <= 1.0 like the others.
            series["frequency"][node] = 1.0 / rel.frequency
            series["dynamic_power"][node] = rel.dynamic_energy
        return series


def default_scaling_table() -> ScalingTable:
    """The library-default scaling table (Stillmaker & Baas + IRDS anchors)."""
    return ScalingTable(_ANCHORS)
