"""TDP transistor-budget model (paper Fig 3c).

Power limitations restrict the fraction of chip transistors that can be kept
active within a TDP envelope.  The paper captures this by fitting, per node
era, the power law::

    TC[1e9] * f[GHz] = c_era * TDP**e_era

Given a chip's TDP, node, and operating frequency, the model yields the
number of *active* transistors the power budget supports.  Newer eras have a
larger coefficient (denser chips) but a shallower exponent (power density
limits bite harder).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.cmos.nodes import NODE_ERAS_TDP, NodeEra, era_for_node
from repro.cmos.transistors import fit_power_law
from repro.errors import FitError
from repro.obs.trace import span
from repro.validate import require_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.datasheets.database import ChipDatabase


@dataclass(frozen=True)
class TdpFit:
    """Per-era power law ``TC[1e9] * f[GHz] = coefficient * TDP**exponent``."""

    era: NodeEra
    coefficient: float
    exponent: float
    r2: float = float("nan")
    n_points: int = 0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.coefficient) and self.coefficient > 0):
            raise FitError(
                f"era {self.era.name}: non-positive TDP-law coefficient "
                f"{self.coefficient!r}"
            )
        if not math.isfinite(self.exponent):
            raise FitError(
                f"era {self.era.name}: non-finite TDP-law exponent "
                f"{self.exponent!r}"
            )

    def budget_product(self, tdp_w: float) -> float:
        """``TC[1e9] * f[GHz]`` supported by a *tdp_w* envelope."""
        require_positive(tdp_w, "TDP")
        return self.coefficient * tdp_w**self.exponent

    def active_transistors(self, tdp_w: float, frequency_mhz: float) -> float:
        """Active transistor count at *frequency* under a *tdp_w* envelope."""
        require_positive(frequency_mhz, "frequency")
        freq_ghz = frequency_mhz / 1e3
        return self.budget_product(tdp_w) / freq_ghz * 1e9

    def tdp_for(self, transistors: float, frequency_mhz: float) -> float:
        """Inverse: TDP needed to keep *transistors* active at *frequency*."""
        require_positive(transistors, "transistor count")
        require_positive(frequency_mhz, "frequency")
        product = (transistors / 1e9) * (frequency_mhz / 1e3)
        return (product / self.coefficient) ** (1.0 / self.exponent)

    def describe(self) -> str:
        """Human-readable fit equation, matching the Fig 3c legend."""
        return (
            f"{self.era.name}: {self.coefficient:.2f} * TDP^{self.exponent:.3f}"
            f"  (n={self.n_points})"
        )


#: The paper's published Fig 3c fits, keyed by era name.  The 10nm-5nm entry
#: is the paper's forward projection (dashed in the figure).
PAPER_TDP_FITS: Dict[str, Tuple[float, float]] = {
    "55nm-40nm": (0.02, 0.869),
    "32nm-28nm": (0.11, 0.729),
    "22nm-12nm": (0.49, 0.557),
    "10nm-5nm": (2.15, 0.402),
}


class TdpModel:
    """Collection of per-era :class:`TdpFit` rows with node-based lookup."""

    def __init__(self, fits: Sequence[TdpFit]):
        if not fits:
            raise FitError("TDP model needs at least one era fit")
        self._fits: Tuple[TdpFit, ...] = tuple(fits)
        self._by_name = {fit.era.name: fit for fit in self._fits}

    @property
    def fits(self) -> Tuple[TdpFit, ...]:
        return self._fits

    def era_fit(self, node: "float | str") -> TdpFit:
        """The fit governing *node* (nearest era when the node sits in a gap)."""
        era = era_for_node(node, [fit.era for fit in self._fits])
        assert era is not None  # nearest=True guarantees a match
        return self._by_name[era.name]

    def active_transistors(
        self, node: "float | str", tdp_w: float, frequency_mhz: float
    ) -> float:
        """Active transistor budget for a chip at *node*, *TDP*, *frequency*."""
        return self.era_fit(node).active_transistors(tdp_w, frequency_mhz)

    def scaled(
        self, coefficient_scale: float = 1.0, exponent_delta: float = 0.0
    ) -> "TdpModel":
        """A derived model with every era law re-parameterised.

        Used by :mod:`repro.tech` backends: a device technology whose
        switches draw ``s`` times less dynamic power sustains ``1/s`` times
        more active transistors inside the same TDP envelope, which is a
        uniform coefficient scale on the Fig 3c era laws; *exponent_delta*
        shifts how strongly power density flattens the budget curve.  Fit
        provenance (r2, n_points) is cleared on the derived rows.
        """
        if not (math.isfinite(coefficient_scale) and coefficient_scale > 0):
            raise FitError(
                f"non-positive TDP-law coefficient scale {coefficient_scale!r}"
            )
        if not math.isfinite(exponent_delta):
            raise FitError(f"non-finite TDP-law exponent delta {exponent_delta!r}")
        return TdpModel(
            [
                TdpFit(
                    era=fit.era,
                    coefficient=fit.coefficient * coefficient_scale,
                    exponent=fit.exponent + exponent_delta,
                )
                for fit in self._fits
            ]
        )

    def describe(self) -> str:
        return "\n".join(fit.describe() for fit in self._fits)


def paper_tdp_model() -> TdpModel:
    """TDP model built from the paper's published Fig 3c constants."""
    fits = []
    for era in NODE_ERAS_TDP:
        coefficient, exponent = PAPER_TDP_FITS[era.name]
        fits.append(TdpFit(era=era, coefficient=coefficient, exponent=exponent))
    return TdpModel(fits)


def fit_tdp_model(
    database: "ChipDatabase",
    eras: Sequence[NodeEra] = NODE_ERAS_TDP,
    min_points: int = 8,
) -> TdpModel:
    """Fit the Fig 3c per-era power laws over *database*.

    Eras with fewer than *min_points* usable rows fall back to the paper's
    published constants (this mirrors the paper, whose 10nm-5nm curve is a
    projection, not a fit).
    """
    fits = []
    for era in eras:
        with span("cmos.fit.tdp", era=era.name):
            fits.append(_fit_era(database, era, min_points))
    return TdpModel(fits)


def _fit_era(database: "ChipDatabase", era: NodeEra, min_points: int) -> TdpFit:
    rows = database.in_era(era).with_transistors()
    try:
        if len(rows) < min_points:
            raise FitError(f"only {len(rows)} rows in era {era.name}")
        tdp, product = rows.tdp_points()
        coefficient, exponent, r2 = fit_power_law(tdp, product)
        return TdpFit(
            era=era,
            coefficient=coefficient,
            exponent=exponent,
            r2=r2,
            n_points=len(rows),
        )
    except FitError:
        if era.name in PAPER_TDP_FITS:
            coefficient, exponent = PAPER_TDP_FITS[era.name]
            return TdpFit(era=era, coefficient=coefficient, exponent=exponent)
        raise
