"""Transistor-budget regression (paper Fig 3b).

Transistor count scales sub-linearly with the density factor ``D = A / N^2``:
for larger chips, design complexity makes it harder to fully utilise the die.
The paper fits ``TC(D) = 4.99e9 * D**0.877`` over its datasheet population via
least-squares in log-log space; we do the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cmos.nodes import density_factor
from repro.errors import FitError
from repro.obs.trace import span
from repro.validate import (
    guarded_numpy,
    require_all_finite,
    require_positive,
    require_well_conditioned,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.datasheets.database import ChipDatabase


@dataclass(frozen=True)
class TransistorCountFit:
    """Power law ``TC = coefficient * D**exponent`` fitted over a population.

    ``r2`` is the coefficient of determination in log space; ``n_points`` the
    population size the fit was computed from (0 for constants taken from the
    paper rather than fitted).
    """

    coefficient: float
    exponent: float
    r2: float = float("nan")
    n_points: int = 0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.coefficient) and self.coefficient > 0):
            raise FitError(f"non-positive fit coefficient {self.coefficient!r}")
        if not math.isfinite(self.exponent):
            raise FitError(f"non-finite fit exponent {self.exponent!r}")

    def transistors(self, density: float) -> float:
        """Predicted transistor count for density factor *D* (mm^2/nm^2)."""
        require_positive(density, "density factor")
        return self.coefficient * density**self.exponent

    def transistors_for_chip(self, area_mm2: float, node_nm: float) -> float:
        """Predicted transistor count for a die of *area* at *node*."""
        return self.transistors(density_factor(area_mm2, node_nm))

    def density_for(self, transistors: float) -> float:
        """Inverse: density factor needed to hold *transistors* devices."""
        require_positive(transistors, "transistor count")
        return (transistors / self.coefficient) ** (1.0 / self.exponent)

    def area_for(self, transistors: float, node_nm: float) -> float:
        """Inverse: die area (mm^2) needed at *node* for *transistors*."""
        from repro.cmos.nodes import parse_node

        node = parse_node(node_nm)
        return self.density_for(transistors) * node * node

    def scaled(
        self, coefficient_scale: float = 1.0, exponent_delta: float = 0.0
    ) -> "TransistorCountFit":
        """A derived fit with the law re-parameterised.

        Technology backends (:mod:`repro.tech`) express alternative device
        technologies through the *same* Fig 3b machinery by scaling the
        fitted coefficient (areal density multiplier at the reference
        density factor) and shifting the exponent (how design complexity
        erodes density for large dice).  The fit provenance fields are
        cleared: a perturbed law is a scenario parameter, not a fit.
        """
        if not (math.isfinite(coefficient_scale) and coefficient_scale > 0):
            raise FitError(
                f"non-positive density coefficient scale {coefficient_scale!r}"
            )
        if not math.isfinite(exponent_delta):
            raise FitError(f"non-finite density exponent delta {exponent_delta!r}")
        return TransistorCountFit(
            coefficient=self.coefficient * coefficient_scale,
            exponent=self.exponent + exponent_delta,
        )

    def describe(self) -> str:
        """Human-readable fit equation, matching the Fig 3b annotation."""
        return (
            f"TC(D) = {self.coefficient / 1e9:.2f}e9 * D^{self.exponent:.3f}"
            f"  (n={self.n_points}, log-R^2={self.r2:.3f})"
        )


#: The paper's published Fig 3b fit.
PAPER_DENSITY_FIT = TransistorCountFit(coefficient=4.99e9, exponent=0.877)


def fit_power_law(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Least-squares power-law fit ``y = c * x**e`` in log-log space.

    Returns ``(coefficient, exponent, r2)``.  Raises :class:`FitError` when
    fewer than two valid points remain after dropping non-positive values.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    mask = np.isfinite(x) & np.isfinite(y) & (x > 0) & (y > 0)
    if mask.sum() < 2:
        raise FitError(
            f"power-law fit needs >= 2 positive points, got {int(mask.sum())}"
        )
    lx = np.log(x[mask])
    ly = np.log(y[mask])
    require_well_conditioned(lx, "power-law log design", FitError)
    with guarded_numpy(FitError, "power-law fit"):
        exponent, intercept = np.polyfit(lx, ly, deg=1)
        predicted = exponent * lx + intercept
        ss_res = float(np.sum((ly - predicted) ** 2))
        ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    require_all_finite(
        (intercept, exponent, r2), "power-law fit coefficients", FitError
    )
    # Beyond +-700 math.exp overflows or underflows a double, which would
    # leak an inf or a coefficient of exactly 0.0 out of a "successful" fit.
    if abs(intercept) > 700.0:
        raise FitError(
            f"power-law coefficient out of float range: exp({intercept:g})"
        )
    return math.exp(intercept), float(exponent), r2


def fit_transistor_count(database: "ChipDatabase") -> TransistorCountFit:
    """Fit the Fig 3b density law over *database*.

    Uses every row that discloses both die area and transistor count.
    """
    with span("cmos.fit.density"):
        density, transistors = database.density_points()
        coefficient, exponent, r2 = fit_power_law(density, transistors)
        return TransistorCountFit(
            coefficient=coefficient,
            exponent=exponent,
            r2=r2,
            n_points=int(len(density)),
        )
