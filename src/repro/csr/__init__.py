"""Chip Specialization Return (CSR) metric (paper Section II).

CSR isolates the CMOS-independent part of a chip's gain::

    CSR = Gain(Alg, Fwk, Plt, Eng, Phy) / Gain(Phy)          (Eq 1)

and every reported gain ratio between two chips factors as::

    Gain_A / Gain_B = (CSR_A / CSR_B) * (Phy_A / Phy_B)      (Eq 2)
"""

from repro.csr.metric import GainDecomposition, csr, decompose_gain
from repro.csr.relations import RelationMatrix, build_relation_matrix, geometric_mean
from repro.csr.series import CsrPoint, CsrSeries, compute_csr_series
from repro.csr.trends import (
    Maturity,
    MaturityAssessment,
    TrendFit,
    assess_maturity,
    fit_quadratic_trend,
)

__all__ = [
    "GainDecomposition",
    "csr",
    "decompose_gain",
    "RelationMatrix",
    "build_relation_matrix",
    "geometric_mean",
    "CsrPoint",
    "CsrSeries",
    "compute_csr_series",
    "Maturity",
    "MaturityAssessment",
    "TrendFit",
    "assess_maturity",
    "fit_quadratic_trend",
]
