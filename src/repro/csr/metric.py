"""The CSR metric and the Eq 2 gain decomposition."""

from __future__ import annotations

from dataclasses import dataclass


def csr(reported_gain: float, physical_gain: float) -> float:
    """Chip Specialization Return (paper Eq 1).

    *reported_gain* is the measured end-to-end gain of a chip over a
    baseline for the target computation; *physical_gain* is the gain the
    CMOS potential model predicts from physical properties alone.  Their
    ratio is the specialization-driven share: "how good a job did the
    designer do with the transistors given".

    A CSR of 1.0 means the chip merely kept pace with its silicon; below 1.0
    the design extracts *less* from its budget than its predecessor did.
    """
    if reported_gain <= 0:
        raise ValueError(f"reported gain must be positive, got {reported_gain!r}")
    if physical_gain <= 0:
        raise ValueError(f"physical gain must be positive, got {physical_gain!r}")
    return reported_gain / physical_gain


@dataclass(frozen=True)
class GainDecomposition:
    """Eq 2 factoring of a reported gain ratio between two chips.

    Invariant (exact by construction, tested as a property):
    ``reported == specialization * cmos``.
    """

    reported: float
    specialization: float
    cmos: float

    @property
    def specialization_share(self) -> float:
        """Fraction of the (log) gain attributable to specialization."""
        import math

        if self.reported == 1.0:
            return 0.0
        return math.log(self.specialization) / math.log(self.reported)

    @property
    def cmos_share(self) -> float:
        """Fraction of the (log) gain attributable to CMOS improvement."""
        return 1.0 - self.specialization_share


def decompose_gain(reported_gain: float, physical_gain: float) -> GainDecomposition:
    """Split a reported gain into specialization-driven and CMOS-driven parts.

    ``reported = CSR * physical`` (Eq 2), so the specialization factor is the
    CSR and the CMOS factor is the physical gain itself.
    """
    return GainDecomposition(
        reported=reported_gain,
        specialization=csr(reported_gain, physical_gain),
        cmos=physical_gain,
    )
