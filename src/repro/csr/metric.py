"""The CSR metric and the Eq 2 gain decomposition."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.validate import require_finite, require_positive

#: Reported gains within this relative distance of 1.0 are treated as "no
#: gain" by the share decomposition: the share denominator ``log(reported)``
#: vanishes there, so shares computed inside the band would be numerically
#: meaningless (a 1e-12 measurement wobble flips them between huge positive
#: and huge negative values).
SHARE_TOLERANCE: float = 1e-9


def csr(reported_gain: float, physical_gain: float) -> float:
    """Chip Specialization Return (paper Eq 1).

    *reported_gain* is the measured end-to-end gain of a chip over a
    baseline for the target computation; *physical_gain* is the gain the
    CMOS potential model predicts from physical properties alone.  Their
    ratio is the specialization-driven share: "how good a job did the
    designer do with the transistors given".

    A CSR of 1.0 means the chip merely kept pace with its silicon; below 1.0
    the design extracts *less* from its budget than its predecessor did.
    """
    require_positive(reported_gain, "reported gain")
    require_positive(physical_gain, "physical gain")
    return require_finite(
        reported_gain / physical_gain, "CSR (reported / physical)"
    )


@dataclass(frozen=True)
class GainDecomposition:
    """Eq 2 factoring of a reported gain ratio between two chips.

    Invariant (exact by construction, tested as a property):
    ``reported == specialization * cmos``.
    """

    reported: float
    specialization: float
    cmos: float

    @property
    def specialization_share(self) -> float:
        """Fraction of the (log) gain attributable to specialization.

        Reported gains within :data:`SHARE_TOLERANCE` of 1.0 are treated as
        "no gain" (share 0): the ``log(reported)`` denominator vanishes
        there, and dividing by it would blow a rounding-sized wobble up
        into an arbitrarily large share.
        """
        require_positive(self.reported, "reported gain")
        require_positive(self.specialization, "specialization factor")
        if math.isclose(self.reported, 1.0, rel_tol=SHARE_TOLERANCE):
            return 0.0
        return math.log(self.specialization) / math.log(self.reported)

    @property
    def cmos_share(self) -> float:
        """Fraction of the (log) gain attributable to CMOS improvement."""
        return 1.0 - self.specialization_share


def decompose_gain(reported_gain: float, physical_gain: float) -> GainDecomposition:
    """Split a reported gain into specialization-driven and CMOS-driven parts.

    ``reported = CSR * physical`` (Eq 2), so the specialization factor is the
    CSR and the CMOS factor is the physical gain itself.
    """
    return GainDecomposition(
        reported=reported_gain,
        specialization=csr(reported_gain, physical_gain),
        cmos=physical_gain,
    )
