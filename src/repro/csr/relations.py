"""Relative-gain relation matrix with transitive closure (paper Eqs 3-4).

The GPU architecture study compares pairs of architectures through the
geometric mean of their shared applications' gains (Eq 3).  Pairs with fewer
than five shared applications are bridged transitively through intermediary
architectures (Eq 4), iterating until no new pair can be added.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.errors import DatasetError
from repro.validate import require_positive


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; raises on empty or non-positive."""
    log_sum = 0.0
    count = 0
    for value in values:
        require_positive(value, "geometric mean operand")
        log_sum += math.log(value)
        count += 1
    if count == 0:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(log_sum / count)


@dataclass(frozen=True)
class RelationMatrix:
    """Pairwise relative gains ``Gain(X -> Y)`` over a set of architectures.

    ``direct`` pairs come straight from Eq 3; the rest were filled by the
    Eq 4 transitive closure.  The matrix is antisymmetric in log space:
    ``gain(x, y) * gain(y, x) == 1`` for every known pair.
    """

    architectures: Tuple[str, ...]
    gains: Mapping[Tuple[str, str], float]
    direct: FrozenSet[Tuple[str, str]]

    def gain(self, x: str, y: str) -> float:
        """Relative gain of architecture *x* over *y*."""
        if x == y:
            return 1.0
        try:
            return self.gains[(x, y)]
        except KeyError:
            raise DatasetError(
                f"no relation between {x!r} and {y!r}; transitive closure "
                "could not connect them"
            ) from None

    def has(self, x: str, y: str) -> bool:
        return x == y or (x, y) in self.gains

    def is_direct(self, x: str, y: str) -> bool:
        return (x, y) in self.direct or (y, x) in self.direct

    def relative_to(self, baseline: str) -> Dict[str, float]:
        """Every architecture's gain relative to *baseline* (baseline = 1.0)."""
        return {arch: self.gain(arch, baseline) for arch in self.architectures
                if self.has(arch, baseline)}


def _direct_gain(
    apps_x: Mapping[str, float], apps_y: Mapping[str, float], min_shared: int
) -> Optional[float]:
    """Eq 3: geometric mean over shared applications, or None if too few."""
    shared = sorted(set(apps_x) & set(apps_y))
    if len(shared) < min_shared:
        return None
    return geometric_mean(apps_x[app] / apps_y[app] for app in shared)


def build_relation_matrix(
    measurements: Mapping[str, Mapping[str, float]],
    min_shared_apps: int = 5,
) -> RelationMatrix:
    """Construct the Eq 3/4 relation matrix.

    Parameters
    ----------
    measurements:
        ``{architecture: {application: gain}}``.  Gains must be positive and
        expressed in a common unit per application (any per-application
        normalisation cancels in the ratios).
    min_shared_apps:
        Minimum number of shared applications for a *direct* Eq 3 relation
        (the paper uses five).

    The closure loop mirrors the paper: "we iteratively construct the
    relations matrix, until we do not add a new pair", bridging each missing
    pair through the geometric mean over all M intermediaries that relate to
    both endpoints (Eq 4).
    """
    if not measurements:
        raise DatasetError("no architecture measurements supplied")
    for arch, apps in measurements.items():
        if not apps:
            raise DatasetError(f"architecture {arch!r} has no measurements")
        for app, gain in apps.items():
            if not (isinstance(gain, (int, float)) and math.isfinite(gain)) or gain <= 0:
                raise DatasetError(
                    f"architecture {arch!r}, app {app!r}: gain must be "
                    f"finite and positive, got {gain!r}"
                )

    archs: List[str] = sorted(measurements)
    gains: Dict[Tuple[str, str], float] = {}
    direct: set[Tuple[str, str]] = set()

    for i, x in enumerate(archs):
        for y in archs[i + 1:]:
            value = _direct_gain(measurements[x], measurements[y], min_shared_apps)
            if value is not None:
                gains[(x, y)] = value
                gains[(y, x)] = 1.0 / value
                direct.add((x, y))

    # Eq 4 transitive closure, to fixpoint.
    changed = True
    while changed:
        changed = False
        for i, x in enumerate(archs):
            for y in archs[i + 1:]:
                if (x, y) in gains:
                    continue
                bridges = [
                    gains[(x, mid)] * gains[(mid, y)]
                    for mid in archs
                    if mid not in (x, y)
                    and (x, mid) in gains
                    and (mid, y) in gains
                ]
                if bridges:
                    value = geometric_mean(bridges)
                    gains[(x, y)] = value
                    gains[(y, x)] = 1.0 / value
                    changed = True

    return RelationMatrix(
        architectures=tuple(archs), gains=gains, direct=frozenset(direct)
    )
