"""CSR time/population series over measured chips.

All four case studies in the paper's Section IV do the same thing: take a
population of chips with *measured* application gains, normalise to a
baseline chip, evaluate each chip's *physical* potential with the CMOS model,
and report the normalised gain, the normalised physical (transistor-driven)
gain, and their ratio — the CSR series.  This module implements that shared
machinery once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cmos.model import CmosPotentialModel
from repro.csr.metric import csr as csr_value
from repro.datasheets.schema import ChipSpec
from repro.errors import DatasetError


@dataclass(frozen=True)
class CsrPoint:
    """One chip's position in a CSR series (all values baseline-normalised)."""

    name: str
    node_nm: float
    year: Optional[int]
    gain: float
    physical: float

    @property
    def csr(self) -> float:
        """Chip Specialization Return relative to the series baseline."""
        return csr_value(self.gain, self.physical)


@dataclass(frozen=True)
class CsrSeries:
    """A baseline-normalised series of measured vs. physical gains."""

    metric: str
    baseline_name: str
    points: Tuple[CsrPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def max_gain(self) -> float:
        return max(p.gain for p in self.points)

    @property
    def max_physical(self) -> float:
        return max(p.physical for p in self.points)

    @property
    def max_csr(self) -> float:
        return max(p.csr for p in self.points)

    @property
    def final_csr(self) -> float:
        """CSR of the last point in series order."""
        return self.points[-1].csr

    def best_performer(self) -> CsrPoint:
        """The point with the highest measured gain."""
        return max(self.points, key=lambda p: p.gain)

    def sorted_by_gain(self) -> "CsrSeries":
        return CsrSeries(
            metric=self.metric,
            baseline_name=self.baseline_name,
            points=tuple(sorted(self.points, key=lambda p: p.gain)),
        )

    def gain_physical_pairs(self) -> List[Tuple[float, float]]:
        """(physical, gain) pairs — the scatter behind Figs 15/16."""
        return [(p.physical, p.gain) for p in self.points]

    def to_rows(self) -> List[dict]:
        """JSON-friendly per-chip rows (used by export and scenario payloads)."""
        return [
            {
                "name": p.name,
                "node_nm": p.node_nm,
                "year": p.year,
                "gain": p.gain,
                "physical": p.physical,
                "csr": p.csr,
            }
            for p in self.points
        ]


def compute_csr_series(
    chips: Sequence[Tuple[ChipSpec, float]],
    model: CmosPotentialModel,
    metric: str = "throughput",
    baseline: Optional[str] = None,
    capped: bool = True,
) -> CsrSeries:
    """Build a :class:`CsrSeries` from measured chips.

    Parameters
    ----------
    chips:
        ``(spec, measured_gain)`` pairs.  Measured gains must share a unit
        (e.g. MPixels/s) but need no normalisation — the series normalises
        to the baseline chip.
    model:
        The CMOS potential model supplying ``Gain(Phy)``.
    metric:
        Physical metric matching the measured quantity: ``throughput``,
        ``energy_efficiency``, or ``throughput_per_area``.
    baseline:
        Name of the baseline chip; defaults to the first entry.
    capped:
        Whether each chip's TDP limits its physical potential.  True for
        chips that run at their thermal envelope (CPUs, GPUs, miners);
        False for designs far below their silicon's thermal capacity
        (low-power ASIC IP blocks, research FPGA boards), where the
        paper's "transistor performance" is the uncapped ``TC x f``
        potential.
    """
    if not chips:
        raise DatasetError("cannot build a CSR series from zero chips")
    for spec, gain in chips:
        if gain <= 0:
            raise DatasetError(
                f"{spec.name}: measured gain must be positive, got {gain!r}"
            )

    if baseline is None:
        base_spec, base_gain = chips[0]
    else:
        matches = [(s, g) for s, g in chips if s.name == baseline]
        if not matches:
            raise DatasetError(f"baseline chip {baseline!r} not in series")
        base_spec, base_gain = matches[0]

    base_physical = model.evaluate_spec(base_spec, capped=capped).gains.metric(metric)
    points = []
    for spec, gain in chips:
        physical = model.evaluate_spec(spec, capped=capped).gains.metric(metric)
        points.append(
            CsrPoint(
                name=spec.name,
                node_nm=spec.node_nm,
                year=spec.year,
                gain=gain / base_gain,
                physical=physical / base_physical,
            )
        )
    return CsrSeries(
        metric=metric, baseline_name=base_spec.name, points=tuple(points)
    )
