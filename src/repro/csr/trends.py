"""CSR trend fitting and domain-maturity classification.

The paper fits quadratic curves to frame-rate and CSR series (Fig 5) and
draws its central maturity insight from their shape: *"for mature
computation domains ... specialization returns either plateau or drop for
high performing chips ... for emerging applications the counter phenomena
can be seen"* (Section IV-E).  This module packages that analysis: fit a
quadratic trend to a CSR series over time, measure its end-slope, and
classify the domain as emerging, mature, or declining.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.csr.series import CsrSeries
from repro.errors import FitError


@dataclass(frozen=True)
class TrendFit:
    """A least-squares quadratic trend ``y = a*x^2 + b*x + c``.

    ``x`` is centred (x - x_mean) before fitting for conditioning; use
    :meth:`predict` rather than the raw coefficients.
    """

    a: float
    b: float
    c: float
    x_center: float
    r2: float
    x_range: Tuple[float, float]

    def predict(self, x: float) -> float:
        t = x - self.x_center
        return self.a * t * t + self.b * t + self.c

    def slope(self, x: float) -> float:
        """First derivative at *x*."""
        t = x - self.x_center
        return 2 * self.a * t + self.b

    @property
    def end_slope(self) -> float:
        """Trend slope at the newest observation."""
        return self.slope(self.x_range[1])

    @property
    def end_value(self) -> float:
        """Trend value at the newest observation."""
        return self.predict(self.x_range[1])

    @property
    def relative_end_slope(self) -> float:
        """End slope normalised by the end value (per-x fractional change)."""
        value = self.end_value
        if value == 0:
            return float("inf")
        return self.end_slope / abs(value)


def fit_quadratic_trend(
    xs: Sequence[float], ys: Sequence[float]
) -> TrendFit:
    """Fit the paper's quadratic trend through (x, y) observations."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    mask = np.isfinite(xs) & np.isfinite(ys)
    xs, ys = xs[mask], ys[mask]
    if len(xs) < 3:
        raise FitError(
            f"quadratic trend needs >= 3 points, got {len(xs)}"
        )
    if float(xs.max()) == float(xs.min()):
        raise FitError("quadratic trend needs a spread of x values")
    center = float(xs.mean())
    t = xs - center
    a, b, c = np.polyfit(t, ys, deg=2)
    predicted = a * t * t + b * t + c
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return TrendFit(
        a=float(a), b=float(b), c=float(c), x_center=center, r2=r2,
        x_range=(float(xs.min()), float(xs.max())),
    )


class Maturity(enum.Enum):
    """Domain maturity classes from the paper's Section IV-E insight."""

    EMERGING = "emerging"    # CSR still rising: algorithmic headroom left
    MATURE = "mature"        # CSR plateaued: gains ride CMOS alone
    DECLINING = "declining"  # CSR falling: silicon outpaces design


@dataclass(frozen=True)
class MaturityAssessment:
    """Classification of one domain's CSR trajectory."""

    domain: str
    maturity: Maturity
    csr_trend: TrendFit
    gain_trend: Optional[TrendFit]

    @property
    def csr_end_slope(self) -> float:
        return self.csr_trend.relative_end_slope

    def describe(self) -> str:
        return (
            f"{self.domain}: {self.maturity.value} "
            f"(CSR end slope {self.csr_end_slope:+.2%}/step, "
            f"trend R^2 {self.csr_trend.r2:.2f})"
        )


#: Relative end-slope thresholds separating the maturity classes.  The band
#: is asymmetric: a mildly negative slope is still "plateau" (mature), since
#: per-chip noise easily tilts a flat CSR series slightly downward.
PLATEAU_BAND: Tuple[float, float] = (-0.08, 0.05)


def _series_axis(series: CsrSeries) -> List[float]:
    """X axis for a series: years when available, else rank order."""
    years = [p.year for p in series]
    if all(y is not None for y in years) and len(set(years)) >= 3:
        return [float(y) for y in years]
    return [float(i) for i in range(len(series))]


def assess_maturity(
    series: CsrSeries,
    domain: str,
    plateau_band: Tuple[float, float] = PLATEAU_BAND,
) -> MaturityAssessment:
    """Classify a domain from its CSR series.

    A relative CSR end-slope above the band is *emerging*, inside it is
    *mature*, and below it is *declining*.
    """
    xs = _series_axis(series)
    csr_trend = fit_quadratic_trend(xs, [p.csr for p in series])
    try:
        gain_trend = fit_quadratic_trend(xs, [p.gain for p in series])
    except FitError:
        gain_trend = None
    low, high = plateau_band
    slope = csr_trend.relative_end_slope
    if slope > high:
        maturity = Maturity.EMERGING
    elif slope < low:
        maturity = Maturity.DECLINING
    else:
        maturity = Maturity.MATURE
    return MaturityAssessment(
        domain=domain,
        maturity=maturity,
        csr_trend=csr_trend,
        gain_trend=gain_trend,
    )
