"""Chip datasheet substrate.

The paper builds its CMOS potential model from datasheets of 1612 CPUs and
1001 GPUs scraped from CPU-DB and TechPowerUp.  We reproduce that population
with (a) a curated seed of well-known real chips (:mod:`repro.datasheets.curated`)
and (b) a calibrated synthetic population generator
(:mod:`repro.datasheets.synthetic`) whose regressions recover the paper's
published fit constants.  See DESIGN.md section 2 for the substitution note.
"""

from repro.datasheets.schema import ChipSpec, Category
from repro.datasheets.database import ChipDatabase
from repro.datasheets.curated import curated_database
from repro.datasheets.synthetic import SyntheticPopulationConfig, synthetic_database
from repro.datasheets.reference import reference_database

__all__ = [
    "ChipSpec",
    "Category",
    "ChipDatabase",
    "curated_database",
    "SyntheticPopulationConfig",
    "synthetic_database",
    "reference_database",
]
