"""Curated seed of real-chip datasheet records.

These are well-known, publicly documented chips (CPU-DB / TechPowerUp-style
fields).  Values are approximate public datasheet numbers: die area in mm^2,
transistor count, nominal frequency in MHz, TDP in watts.  The seed anchors
the synthetic population (see :mod:`repro.datasheets.synthetic`) to reality
and is itself sufficient to fit the CMOS model, just with more variance than
the paper's 2613-chip scrape.
"""

from __future__ import annotations

from typing import Tuple

from repro.datasheets.database import ChipDatabase
from repro.datasheets.schema import Category, ChipSpec


def _cpu(name, vendor, node, area, trans_m, freq, tdp, year) -> ChipSpec:
    return ChipSpec(
        name=name, vendor=vendor, category=Category.CPU, node_nm=node,
        area_mm2=area, transistors=trans_m * 1e6, frequency_mhz=freq,
        tdp_w=tdp, year=year, source="curated",
    )


def _gpu(name, vendor, node, area, trans_m, freq, tdp, year) -> ChipSpec:
    return ChipSpec(
        name=name, vendor=vendor, category=Category.GPU, node_nm=node,
        area_mm2=area, transistors=trans_m * 1e6, frequency_mhz=freq,
        tdp_w=tdp, year=year, source="curated",
    )


#: (name, vendor, node nm, area mm2, transistors 1e6, freq MHz, TDP W, year)
_CPUS: Tuple[ChipSpec, ...] = (
    _cpu("Pentium III Coppermine", "Intel", 180, 106, 28.1, 1000, 29, 2000),
    _cpu("Pentium III Tualatin", "Intel", 130, 80, 44, 1400, 32, 2001),
    _cpu("Pentium 4 Willamette", "Intel", 180, 217, 42, 1500, 58, 2000),
    _cpu("Pentium 4 Northwood", "Intel", 130, 146, 55, 2400, 60, 2002),
    _cpu("Pentium 4 Prescott", "Intel", 90, 112, 125, 3400, 89, 2004),
    _cpu("Pentium M Dothan", "Intel", 90, 84, 140, 2100, 27, 2004),
    _cpu("Pentium D 940", "Intel", 65, 162, 376, 3200, 130, 2006),
    _cpu("Core 2 Duo E6700", "Intel", 65, 143, 291, 2667, 65, 2006),
    _cpu("Core 2 Quad Q6600", "Intel", 65, 286, 582, 2400, 105, 2007),
    _cpu("Core 2 Duo E8400", "Intel", 45, 107, 410, 3000, 65, 2008),
    _cpu("Core i7-920", "Intel", 45, 263, 731, 2667, 130, 2008),
    _cpu("Core i7-980X", "Intel", 32, 248, 1170, 3333, 130, 2010),
    _cpu("Core i5-2500K", "Intel", 32, 216, 1160, 3300, 95, 2011),
    _cpu("Core i7-3770K", "Intel", 22, 160, 1400, 3500, 77, 2012),
    _cpu("Core i7-4770K", "Intel", 22, 177, 1400, 3500, 84, 2013),
    _cpu("Core i7-5960X", "Intel", 22, 356, 2600, 3000, 140, 2014),
    _cpu("Core i7-6700K", "Intel", 14, 122, 1750, 4000, 91, 2015),
    _cpu("Core i7-7700K", "Intel", 14, 126, 1750, 4200, 91, 2017),
    _cpu("Core i9-7900X", "Intel", 14, 322, 3100, 3300, 140, 2017),
    _cpu("Core i7-8700K", "Intel", 14, 151, 2100, 3700, 95, 2017),
    _cpu("Core i9-9900K", "Intel", 14, 177, 2300, 3600, 95, 2018),
    _cpu("Itanium 2 Madison", "Intel", 130, 374, 410, 1500, 130, 2003),
    _cpu("Itanium Poulson", "Intel", 32, 544, 3100, 2530, 170, 2012),
    _cpu("Xeon E5-2690", "Intel", 32, 416, 2270, 2900, 135, 2012),
    _cpu("Xeon E5-2699 v3", "Intel", 22, 662, 5570, 2300, 145, 2014),
    _cpu("Xeon E5-2699 v4", "Intel", 14, 456, 7200, 2200, 145, 2016),
    _cpu("Xeon Platinum 8180", "Intel", 14, 694, 8000, 2500, 205, 2017),
    _cpu("Athlon 64 3200+", "AMD", 130, 193, 106, 2000, 89, 2003),
    _cpu("Athlon 64 X2 4800+", "AMD", 90, 199, 233, 2400, 110, 2005),
    _cpu("Phenom X4 9850", "AMD", 65, 285, 450, 2500, 125, 2008),
    _cpu("Phenom II X4 965", "AMD", 45, 258, 758, 3400, 125, 2009),
    _cpu("FX-8150", "AMD", 32, 315, 1200, 3600, 125, 2011),
    _cpu("FX-8350", "AMD", 32, 315, 1200, 4000, 125, 2012),
    _cpu("Opteron 6174", "AMD", 45, 692, 1800, 2200, 115, 2010),
    _cpu("Ryzen 7 1800X", "AMD", 14, 213, 4800, 3600, 95, 2017),
    _cpu("Ryzen 7 2700X", "AMD", 12, 213, 4800, 3700, 105, 2018),
    _cpu("Threadripper 1950X", "AMD", 14, 426, 9600, 3400, 180, 2017),
    _cpu("EPYC 7601", "AMD", 14, 852, 19200, 2200, 180, 2017),
    _cpu("POWER7", "IBM", 45, 567, 1200, 3550, 200, 2010),
    _cpu("POWER8", "IBM", 22, 649, 4200, 3500, 250, 2014),
    _cpu("POWER9", "IBM", 14, 695, 8000, 3800, 190, 2017),
    _cpu("SPARC M7", "Oracle", 20, 700, 10000, 4130, 250, 2015),
    _cpu("Pentium 4 Cedar Mill", "Intel", 65, 81, 188, 3600, 86, 2006),
    _cpu("Core 2 Duo T7200", "Intel", 65, 143, 291, 2000, 34, 2006),
    _cpu("Atom N270", "Intel", 45, 26, 47, 1600, 2.5, 2008),
    _cpu("Atom Z3740", "Intel", 22, 102, 960, 1860, 4, 2013),
    _cpu("Core i3-2100", "Intel", 32, 131, 504, 3100, 65, 2011),
    _cpu("Core i5-4690K", "Intel", 22, 177, 1400, 3500, 88, 2014),
    _cpu("Core i5-6600K", "Intel", 14, 122, 1750, 3500, 91, 2015),
    _cpu("Celeron G3900", "Intel", 14, 99, 1300, 2800, 51, 2016),
    _cpu("Xeon X5690", "Intel", 32, 248, 1170, 3460, 130, 2011),
    _cpu("Xeon E7-8890 v3", "Intel", 22, 662, 5690, 2500, 165, 2015),
    _cpu("Xeon Phi 7290", "Intel", 14, 683, 7200, 1500, 245, 2016),
    _cpu("Athlon XP 3200+", "AMD", 130, 101, 54, 2200, 77, 2003),
    _cpu("Sempron 3000+", "AMD", 90, 84, 69, 1800, 62, 2005),
    _cpu("Athlon II X4 640", "AMD", 45, 169, 300, 3000, 95, 2010),
    _cpu("A10-7850K", "AMD", 28, 245, 2410, 3700, 95, 2014),
    _cpu("FX-9590", "AMD", 32, 315, 1200, 4700, 220, 2013),
    _cpu("Ryzen 5 1600", "AMD", 14, 213, 4800, 3200, 65, 2017),
    _cpu("Ryzen 3 1300X", "AMD", 14, 213, 4800, 3500, 65, 2017),
    _cpu("Opteron 2435", "AMD", 45, 346, 904, 2600, 75, 2009),
    _cpu("UltraSPARC T2", "Oracle", 65, 342, 503, 1400, 95, 2007),
    _cpu("POWER6", "IBM", 65, 341, 790, 4700, 160, 2007),
)

_GPUS: Tuple[ChipSpec, ...] = (
    _gpu("Radeon 9700 Pro", "AMD", 150, 218, 107, 325, 45, 2002),
    _gpu("GeForce FX 5900", "NVIDIA", 130, 207, 135, 400, 60, 2003),
    _gpu("GeForce 6800 Ultra", "NVIDIA", 130, 287, 222, 400, 81, 2004),
    _gpu("GeForce 7900 GTX", "NVIDIA", 90, 196, 278, 650, 84, 2006),
    _gpu("Radeon X1950 XTX", "AMD", 90, 352, 384, 650, 125, 2006),
    _gpu("GeForce 8800 GTX", "NVIDIA", 90, 484, 681, 575, 145, 2006),
    _gpu("Radeon HD 2900 XT", "AMD", 80, 420, 700, 743, 215, 2007),
    _gpu("Radeon HD 3870", "AMD", 55, 192, 666, 775, 105, 2007),
    _gpu("GeForce 9800 GTX", "NVIDIA", 65, 324, 754, 675, 140, 2008),
    _gpu("GeForce GTX 280", "NVIDIA", 65, 576, 1400, 602, 236, 2008),
    _gpu("GeForce GTX 285", "NVIDIA", 55, 470, 1400, 648, 204, 2009),
    _gpu("Radeon HD 4870", "AMD", 55, 256, 956, 750, 150, 2008),
    _gpu("Radeon HD 5870", "AMD", 40, 334, 2154, 850, 188, 2009),
    _gpu("Radeon HD 6450", "AMD", 40, 67, 370, 625, 27, 2011),
    _gpu("Radeon HD 6970", "AMD", 40, 389, 2640, 880, 250, 2010),
    _gpu("GeForce GTX 460", "NVIDIA", 40, 332, 1950, 675, 160, 2010),
    _gpu("GeForce GTX 480", "NVIDIA", 40, 529, 3100, 701, 250, 2010),
    _gpu("GeForce GTX 560 Ti", "NVIDIA", 40, 332, 1950, 822, 170, 2011),
    _gpu("GeForce GTX 580", "NVIDIA", 40, 520, 3000, 772, 244, 2010),
    _gpu("Radeon HD 7970", "AMD", 28, 352, 4312, 925, 250, 2011),
    _gpu("GeForce GT 640", "NVIDIA", 28, 118, 1270, 900, 65, 2012),
    _gpu("GeForce GTX 680", "NVIDIA", 28, 294, 3540, 1006, 195, 2012),
    _gpu("GeForce GTX 750 Ti", "NVIDIA", 28, 148, 1870, 1020, 60, 2014),
    _gpu("GeForce GTX 780 Ti", "NVIDIA", 28, 561, 7080, 876, 250, 2013),
    _gpu("Radeon R9 290X", "AMD", 28, 438, 6200, 1000, 290, 2013),
    _gpu("GeForce GTX 980", "NVIDIA", 28, 398, 5200, 1126, 165, 2014),
    _gpu("Radeon R9 Fury X", "AMD", 28, 596, 8900, 1050, 275, 2015),
    _gpu("GeForce GTX 980 Ti", "NVIDIA", 28, 601, 8000, 1000, 250, 2015),
    _gpu("Radeon RX 480", "AMD", 14, 232, 5700, 1266, 150, 2016),
    _gpu("Radeon RX 580", "AMD", 14, 232, 5700, 1257, 185, 2017),
    _gpu("GeForce GTX 1050 Ti", "NVIDIA", 14, 132, 3300, 1392, 75, 2016),
    _gpu("GeForce GT 1030", "NVIDIA", 14, 74, 1800, 1468, 30, 2017),
    _gpu("GeForce GTX 1060", "NVIDIA", 16, 200, 4400, 1506, 120, 2016),
    _gpu("GeForce GTX 1080", "NVIDIA", 16, 314, 7200, 1607, 180, 2016),
    _gpu("GeForce GTX 1080 Ti", "NVIDIA", 16, 471, 11800, 1481, 250, 2017),
    _gpu("Titan X Pascal", "NVIDIA", 16, 471, 11800, 1417, 250, 2016),
    _gpu("Tesla P100", "NVIDIA", 16, 610, 15300, 1328, 300, 2016),
    _gpu("Radeon RX Vega 64", "AMD", 14, 495, 12500, 1546, 295, 2017),
    _gpu("Tesla V100", "NVIDIA", 12, 815, 21100, 1370, 300, 2017),
    _gpu("Titan V", "NVIDIA", 12, 815, 21100, 1200, 250, 2017),
    _gpu("GeForce RTX 2080 Ti", "NVIDIA", 12, 754, 18600, 1350, 250, 2018),
    _gpu("GeForce 7600 GT", "NVIDIA", 90, 125, 177, 560, 36, 2006),
    _gpu("GeForce 8600 GTS", "NVIDIA", 80, 169, 289, 675, 71, 2007),
    _gpu("GeForce 9600 GT", "NVIDIA", 65, 240, 505, 650, 96, 2008),
    _gpu("GeForce GTS 250", "NVIDIA", 55, 260, 754, 738, 150, 2009),
    _gpu("GeForce GT 430", "NVIDIA", 40, 116, 585, 700, 49, 2010),
    _gpu("GeForce GTX 650", "NVIDIA", 28, 118, 1270, 1058, 64, 2012),
    _gpu("GeForce GTX 770", "NVIDIA", 28, 294, 3540, 1046, 230, 2013),
    _gpu("GeForce GTX 960", "NVIDIA", 28, 228, 2940, 1127, 120, 2015),
    _gpu("GeForce GTX 1070", "NVIDIA", 16, 314, 7200, 1506, 150, 2016),
    _gpu("Titan X Maxwell", "NVIDIA", 28, 601, 8000, 1000, 250, 2015),
    _gpu("Tesla K40", "NVIDIA", 28, 561, 7080, 745, 235, 2013),
    _gpu("Tesla M40", "NVIDIA", 28, 601, 8000, 948, 250, 2015),
    _gpu("Quadro P6000", "NVIDIA", 16, 471, 11800, 1506, 250, 2016),
    _gpu("Radeon X800 XT", "AMD", 130, 281, 160, 500, 65, 2004),
    _gpu("Radeon HD 4770", "AMD", 40, 137, 826, 750, 80, 2009),
    _gpu("Radeon HD 5770", "AMD", 40, 166, 1040, 850, 108, 2009),
    _gpu("Radeon HD 7770", "AMD", 28, 123, 1500, 1000, 80, 2012),
    _gpu("Radeon R7 260X", "AMD", 28, 160, 2080, 1100, 115, 2013),
    _gpu("Radeon R9 380", "AMD", 28, 359, 5000, 970, 190, 2015),
    _gpu("Radeon R9 Nano", "AMD", 28, 596, 8900, 1000, 175, 2015),
    _gpu("Radeon RX 460", "AMD", 14, 123, 3000, 1200, 75, 2016),
    _gpu("Radeon Pro Duo", "AMD", 28, 596, 8900, 1000, 350, 2016),
    _gpu("FirePro W9100", "AMD", 28, 438, 6200, 930, 275, 2014),
)


def curated_database() -> ChipDatabase:
    """The curated seed of real chips (CPUs and GPUs)."""
    return ChipDatabase(_CPUS + _GPUS)
