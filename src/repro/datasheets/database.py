"""In-memory chip datasheet database with query helpers."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Tuple

import numpy as np

from repro.cmos.nodes import NodeEra
from repro.datasheets.schema import Category, ChipSpec
from repro.errors import DatasetError


class ChipDatabase:
    """An immutable collection of :class:`ChipSpec` rows.

    Provides the filtering and array-extraction operations the CMOS model
    fits need, plus set-style composition (``+``) to combine curated and
    synthetic populations.
    """

    def __init__(self, chips: Iterable[ChipSpec]):
        self._chips: Tuple[ChipSpec, ...] = tuple(chips)

    def __len__(self) -> int:
        return len(self._chips)

    def __iter__(self) -> Iterator[ChipSpec]:
        return iter(self._chips)

    def __getitem__(self, index: int) -> ChipSpec:
        return self._chips[index]

    def __add__(self, other: "ChipDatabase") -> "ChipDatabase":
        if not isinstance(other, ChipDatabase):
            return NotImplemented
        return ChipDatabase(self._chips + other._chips)

    def __repr__(self) -> str:
        by_cat = {cat.value: len(self.category(cat)) for cat in Category}
        populated = {k: v for k, v in by_cat.items() if v}
        return f"ChipDatabase({len(self)} chips: {populated})"

    # -- queries ----------------------------------------------------------

    def filter(self, predicate: Callable[[ChipSpec], bool]) -> "ChipDatabase":
        """Rows for which *predicate* is true."""
        return ChipDatabase(c for c in self._chips if predicate(c))

    def category(self, category: "Category | str") -> "ChipDatabase":
        """Rows of a given platform class."""
        wanted = Category(category)
        return self.filter(lambda c: c.category is wanted)

    def in_era(self, era: NodeEra) -> "ChipDatabase":
        """Rows whose process node falls inside *era*."""
        return self.filter(lambda c: c.node_nm in era)

    def with_area(self) -> "ChipDatabase":
        """Rows that disclose die area (usable for density regression)."""
        return self.filter(lambda c: c.area_mm2 is not None)

    def with_transistors(self) -> "ChipDatabase":
        """Rows that disclose transistor count."""
        return self.filter(lambda c: c.transistors is not None)

    def names(self) -> List[str]:
        """All chip names, in insertion order."""
        return [c.name for c in self._chips]

    def get(self, name: str) -> ChipSpec:
        """Look a chip up by exact name; raises :class:`DatasetError`."""
        for chip in self._chips:
            if chip.name == name:
                return chip
        raise DatasetError(f"no chip named {name!r} in database")

    def sorted_by(
        self, key: Callable[[ChipSpec], float], reverse: bool = False
    ) -> "ChipDatabase":
        """Rows reordered by *key*."""
        return ChipDatabase(sorted(self._chips, key=key, reverse=reverse))

    # -- array extraction --------------------------------------------------

    def column(self, attribute: str) -> np.ndarray:
        """Extract one attribute as a float array (``nan`` for ``None``)."""
        values = []
        for chip in self._chips:
            value = getattr(chip, attribute)
            values.append(np.nan if value is None else float(value))
        return np.asarray(values, dtype=float)

    def density_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """(density factor, transistor count) pairs for the Fig 3b fit."""
        rows = [
            (c.density, c.transistors)
            for c in self._chips
            if c.density is not None and c.transistors is not None
        ]
        if not rows:
            raise DatasetError(
                "no rows with both die area and transistor count; "
                "cannot build density regression"
            )
        d, tc = zip(*rows)
        return np.asarray(d, dtype=float), np.asarray(tc, dtype=float)

    def tdp_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """(TDP watts, transistors[1e9] * frequency[GHz]) for the Fig 3c fit."""
        rows = [
            (c.tdp_w, (c.transistors / 1e9) * c.frequency_ghz)
            for c in self._chips
            if c.transistors is not None
        ]
        if not rows:
            raise DatasetError(
                "no rows with transistor counts; cannot build TDP regression"
            )
        tdp, product = zip(*rows)
        return np.asarray(tdp, dtype=float), np.asarray(product, dtype=float)

    def summary(self) -> dict:
        """Aggregate statistics used by reports and sanity tests."""
        nodes = self.column("node_nm")
        return {
            "count": len(self),
            "categories": {cat.value: len(self.category(cat)) for cat in Category},
            "node_min_nm": float(np.nanmin(nodes)) if len(self) else None,
            "node_max_nm": float(np.nanmax(nodes)) if len(self) else None,
            "with_area": len(self.with_area()),
            "with_transistors": len(self.with_transistors()),
        }
