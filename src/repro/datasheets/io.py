"""CSV / JSON import and export for chip databases.

Downstream users bring their own datasheet scrapes; these helpers round-trip
:class:`~repro.datasheets.database.ChipDatabase` through the two formats the
public chip databases (CPU-DB, TechPowerUp exports) commonly use.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.datasheets.database import ChipDatabase
from repro.datasheets.schema import ChipSpec
from repro.errors import InvalidChipSpecError

#: Column order for CSV output.
FIELDS = (
    "name", "category", "node_nm", "area_mm2", "transistors",
    "frequency_mhz", "tdp_w", "year", "vendor", "source",
)

PathLike = Union[str, Path]


def _row_of(chip: ChipSpec) -> Dict[str, object]:
    return {
        "name": chip.name,
        "category": chip.category.value,
        "node_nm": chip.node_nm,
        "area_mm2": chip.area_mm2,
        "transistors": chip.transistors,
        "frequency_mhz": chip.frequency_mhz,
        "tdp_w": chip.tdp_w,
        "year": chip.year,
        "vendor": chip.vendor,
        "source": chip.source,
    }


def _chip_of(row: Dict[str, object]) -> ChipSpec:
    def opt_float(key: str) -> Optional[float]:
        value = row.get(key)
        if value in (None, "", "None"):
            return None
        return float(value)

    def opt_int(key: str) -> Optional[int]:
        value = opt_float(key)
        return None if value is None else int(value)

    name = str(row.get("name", "")).strip()
    try:
        return ChipSpec(
            name=name,
            category=str(row["category"]),
            node_nm=float(row["node_nm"]),
            area_mm2=opt_float("area_mm2"),
            transistors=opt_float("transistors"),
            frequency_mhz=float(row["frequency_mhz"]),
            tdp_w=float(row["tdp_w"]),
            year=opt_int("year"),
            vendor=(str(row["vendor"]) if row.get("vendor") not in (None, "", "None") else None),
            source=str(row.get("source") or "imported"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidChipSpecError(
            f"malformed datasheet row {name or row!r}: {exc}"
        ) from exc


def to_csv(database: ChipDatabase, path: PathLike) -> None:
    """Write *database* as CSV with the :data:`FIELDS` columns."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        for chip in database:
            writer.writerow(_row_of(chip))


def from_csv(path: PathLike) -> ChipDatabase:
    """Load a CSV written by :func:`to_csv` (or hand-authored with the same
    columns) into a validated database."""
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    return ChipDatabase(_chip_of(row) for row in rows)


def to_json(database: ChipDatabase, path: PathLike) -> None:
    """Write *database* as a JSON list of chip objects."""
    payload = [_row_of(chip) for chip in database]
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def from_json(path: PathLike) -> ChipDatabase:
    """Load a JSON file written by :func:`to_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise InvalidChipSpecError("datasheet JSON must be a list of objects")
    return ChipDatabase(_chip_of(row) for row in payload)
