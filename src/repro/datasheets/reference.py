"""The library's default chip population.

``reference_database()`` is the population every model fits against unless
told otherwise: the curated real-chip seed plus the calibrated synthetic
population.  The result is cached because it is deterministic.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasheets.curated import curated_database
from repro.datasheets.database import ChipDatabase
from repro.datasheets.synthetic import SyntheticPopulationConfig, synthetic_database


@lru_cache(maxsize=1)
def reference_database() -> ChipDatabase:
    """Curated seed + default synthetic population (deterministic)."""
    return curated_database() + synthetic_database(SyntheticPopulationConfig())
