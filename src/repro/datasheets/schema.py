"""Datasheet record schema and validation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cmos.nodes import density_factor, parse_node
from repro.errors import InvalidChipSpecError


class Category(str, enum.Enum):
    """Broad chip platform classes used throughout the paper."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    ASIC = "asic"


@dataclass(frozen=True)
class ChipSpec:
    """One datasheet row: the physical description of a manufactured chip.

    Only physical fields live here; measured application gains belong to the
    case-study datasets (:mod:`repro.studies`), keeping the potential model
    strictly application-independent as the paper requires.

    Parameters
    ----------
    name:
        Human-readable chip name (e.g. ``"GeForce GTX 1080"``).
    category:
        Platform class; accepts a :class:`Category` or its string value.
    node_nm:
        Process node in nanometres.
    frequency_mhz:
        Nominal/boost operating frequency in MHz.
    tdp_w:
        Thermal design power in watts.
    area_mm2:
        Die area in mm^2 (optional when ``transistors`` is given).
    transistors:
        Transistor count (optional when ``area_mm2`` is given).
    year:
        Introduction year (optional; used by time-series case studies).
    vendor:
        Manufacturer name (optional).
    """

    name: str
    category: Category
    node_nm: float
    frequency_mhz: float
    tdp_w: float
    area_mm2: Optional[float] = None
    transistors: Optional[float] = None
    year: Optional[int] = None
    vendor: Optional[str] = None
    source: str = field(default="curated", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "category", Category(self.category))
        try:
            object.__setattr__(self, "node_nm", parse_node(self.node_nm))
        except Exception as exc:
            raise InvalidChipSpecError(f"{self.name}: {exc}") from exc
        if not self.name or not self.name.strip():
            raise InvalidChipSpecError("chip name must be non-empty")
        if self.frequency_mhz <= 0:
            raise InvalidChipSpecError(
                f"{self.name}: frequency must be positive, got {self.frequency_mhz}"
            )
        if self.tdp_w <= 0:
            raise InvalidChipSpecError(
                f"{self.name}: TDP must be positive, got {self.tdp_w}"
            )
        if self.area_mm2 is None and self.transistors is None:
            raise InvalidChipSpecError(
                f"{self.name}: at least one of area_mm2 / transistors is required"
            )
        if self.area_mm2 is not None and self.area_mm2 <= 0:
            raise InvalidChipSpecError(
                f"{self.name}: area must be positive, got {self.area_mm2}"
            )
        if self.transistors is not None and self.transistors <= 0:
            raise InvalidChipSpecError(
                f"{self.name}: transistor count must be positive, got {self.transistors}"
            )
        if self.year is not None and not (1970 <= self.year <= 2035):
            raise InvalidChipSpecError(
                f"{self.name}: implausible introduction year {self.year}"
            )

    @property
    def density(self) -> Optional[float]:
        """Density factor ``D = area / node^2`` (mm^2/nm^2), if area known."""
        if self.area_mm2 is None:
            return None
        return density_factor(self.area_mm2, self.node_nm)

    @property
    def frequency_ghz(self) -> float:
        """Operating frequency in GHz."""
        return self.frequency_mhz / 1e3

    def with_source(self, source: str) -> "ChipSpec":
        """Copy of this record tagged with a different provenance string."""
        return replace(self, source=source)
