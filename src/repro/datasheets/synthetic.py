"""Calibrated synthetic datasheet population.

The paper fits its CMOS potential model over 2613 scraped chip datasheets.
We cannot ship that scrape, so this module generates a deterministic
population whose two fitted power laws recover the paper's published
constants:

* density law (Fig 3b):   ``TC(D) = 4.99e9 * D**0.877``
* TDP laws   (Fig 3c):    ``TC[1e9] * f[GHz] = c_era * TDP**e_era`` with
  ``(c, e)`` = (0.02, 0.869) for 55-40nm, (0.11, 0.729) for 32-28nm,
  (0.49, 0.557) for 22-12nm and (2.15, 0.402) for the 10-5nm projection.

Each synthetic chip is generated to satisfy *both* laws simultaneously (the
laws are mutually consistent for realistic chips), with lognormal noise, so
re-fitting the population returns the constants up to sampling error.  This
preserves exactly the information the paper extracts from its population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.datasheets.database import ChipDatabase
from repro.datasheets.schema import Category, ChipSpec

#: Paper's Fig 3b density-law constants.
DENSITY_LAW: Tuple[float, float] = (4.99e9, 0.877)

#: Paper's Fig 3c TDP-law constants per era name (plus a legacy
#: extrapolation for pre-55nm chips, which Fig 3c does not cover).
TDP_LAWS: Dict[str, Tuple[float, float]] = {
    "180nm-65nm": (0.0015, 0.950),
    "55nm-40nm": (0.02, 0.869),
    "32nm-28nm": (0.11, 0.729),
    "22nm-12nm": (0.49, 0.557),
    "10nm-5nm": (2.15, 0.402),
}


@dataclass(frozen=True)
class _EraPlan:
    """Generation recipe for one node era."""

    name: str
    nodes: Tuple[float, ...]
    cpu_freq_ghz: Tuple[float, float]
    gpu_freq_ghz: Tuple[float, float]
    tdp_w: Tuple[float, float]
    #: Legacy chips (outside every Fig 3c era) are generated density-first:
    #: sample a die, apply the density law, and back out a plausible TDP.
    #: Modern chips are generated TDP-first so the per-era Fig 3c fits
    #: recover the paper's constants.
    density_first: bool = False
    area_mm2: Tuple[float, float] = (60.0, 450.0)


_ERA_PLANS: Tuple[_EraPlan, ...] = (
    _EraPlan(
        "180nm-65nm", (180, 130, 110, 90, 80, 65), (0.8, 3.4), (0.3, 0.8),
        (10, 250), density_first=True, area_mm2=(60.0, 450.0),
    ),
    _EraPlan("55nm-40nm", (55, 45, 40), (2.0, 3.8), (0.6, 0.95), (25, 300)),
    _EraPlan("32nm-28nm", (32, 28), (2.5, 4.0), (0.8, 1.2), (30, 350)),
    _EraPlan("22nm-12nm", (22, 20, 16, 14, 12), (2.2, 4.3), (1.0, 1.7), (30, 500)),
    _EraPlan("10nm-5nm", (10, 7, 5), (2.5, 4.5), (1.2, 2.0), (30, 800)),
)

#: Largest manufacturable die (reticle limit), mm^2.
_MAX_AREA_MM2 = 880.0

#: First-silicon year per node, used to stamp plausible introduction years.
_NODE_YEAR: Dict[float, float] = {
    180: 2000.0, 130: 2002.5, 110: 2004.0, 90: 2005.0, 80: 2006.5,
    65: 2007.0, 55: 2008.5, 45: 2009.5, 40: 2010.5, 32: 2011.0,
    28: 2012.5, 22: 2013.5, 20: 2014.5, 16: 2016.0, 14: 2016.5,
    12: 2017.5, 10: 2018.0, 7: 2019.5, 5: 2021.0,
}


@dataclass(frozen=True)
class SyntheticPopulationConfig:
    """Knobs for the synthetic population generator.

    ``chips_per_era`` controls population size (5 eras; the default of 400
    yields 2000 chips, comparable to the paper's 2613).  ``tc_noise_sigma``
    and ``tdp_noise_sigma`` are lognormal sigmas applied to the density and
    TDP laws respectively.  ``gpu_fraction`` splits each era between CPU-like
    and GPU-like frequency/area profiles.
    """

    seed: int = 20190216  # HPCA 2019 conference date
    chips_per_era: int = 400
    tc_noise_sigma: float = 0.22
    tdp_noise_sigma: float = 0.28
    gpu_fraction: float = 0.4
    density_law: Tuple[float, float] = DENSITY_LAW
    tdp_laws: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: dict(TDP_LAWS)
    )

    def __post_init__(self) -> None:
        if self.chips_per_era < 1:
            raise ValueError("chips_per_era must be >= 1")
        if not (0.0 <= self.gpu_fraction <= 1.0):
            raise ValueError("gpu_fraction must lie in [0, 1]")
        if self.tc_noise_sigma < 0 or self.tdp_noise_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")


def synthetic_database(
    config: SyntheticPopulationConfig = SyntheticPopulationConfig(),
) -> ChipDatabase:
    """Generate the deterministic synthetic chip population.

    The same ``config`` (including seed) always yields the same database.
    """
    rng = np.random.default_rng(config.seed)
    coeff, exponent = config.density_law
    chips = []
    for plan in _ERA_PLANS:
        c_era, e_era = config.tdp_laws[plan.name]
        for index in range(config.chips_per_era):
            node = float(rng.choice(plan.nodes))
            is_gpu = rng.random() < config.gpu_fraction
            lo_f, hi_f = plan.gpu_freq_ghz if is_gpu else plan.cpu_freq_ghz
            freq_ghz = rng.uniform(lo_f, hi_f)
            if plan.density_first:
                lo_a, hi_a = plan.area_mm2
                area = math.exp(rng.uniform(math.log(lo_a), math.log(hi_a)))
                density = area / (node * node)
                transistors = (
                    coeff
                    * density**exponent
                    * math.exp(rng.normal(0.0, config.tc_noise_sigma))
                )
                product = (transistors / 1e9) * freq_ghz
                tdp = (product / c_era) ** (1.0 / e_era) * math.exp(
                    rng.normal(0.0, config.tdp_noise_sigma)
                )
                tdp = float(np.clip(tdp, 5.0, 400.0))
            else:
                lo_t, hi_t = plan.tdp_w
                tdp = math.exp(rng.uniform(math.log(lo_t), math.log(hi_t)))
                product = (
                    c_era
                    * tdp**e_era
                    * math.exp(rng.normal(0.0, config.tdp_noise_sigma))
                )
                transistors = product / freq_ghz * 1e9
                density = (transistors / coeff) ** (1.0 / exponent)
                area = (
                    density
                    * node
                    * node
                    * math.exp(rng.normal(0.0, config.tc_noise_sigma))
                )
                area = float(np.clip(area, 5.0, _MAX_AREA_MM2))
            year = int(round(_NODE_YEAR[node] + rng.normal(0.0, 1.0)))
            year = int(np.clip(year, 1998, 2030))
            category = Category.GPU if is_gpu else Category.CPU
            chips.append(
                ChipSpec(
                    name=f"synthetic-{plan.name}-{category.value}-{index:04d}",
                    vendor="synthetic",
                    category=category,
                    node_nm=node,
                    area_mm2=area,
                    transistors=transistors,
                    frequency_mhz=freq_ghz * 1e3,
                    tdp_w=tdp,
                    year=year,
                    source="synthetic",
                )
            )
    return ChipDatabase(chips)
