"""Population quality checks for imported chip databases.

Downstream users feeding their own scrapes through :mod:`repro.datasheets.io`
get per-row validation from :class:`~repro.datasheets.schema.ChipSpec`, but
model *fits* also need population-level sanity: enough rows per era, no
gross outliers against the density law, physically consistent ranges.  This
module produces a validation report before a database is trusted for
refitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cmos.nodes import NODE_ERAS_TDP
from repro.cmos.transistors import PAPER_DENSITY_FIT, TransistorCountFit
from repro.datasheets.database import ChipDatabase


@dataclass(frozen=True)
class PopulationReport:
    """Outcome of the population checks."""

    n_chips: int
    density_outliers: Tuple[str, ...]
    implausible_power_density: Tuple[str, ...]
    thin_eras: Tuple[str, ...]
    warnings: Tuple[str, ...]

    @property
    def fit_ready(self) -> bool:
        """Whether the population can be refitted without caveats."""
        return not self.thin_eras and not self.warnings

    def describe(self) -> str:
        lines = [f"{self.n_chips} chips"]
        if self.density_outliers:
            lines.append(
                f"density outliers ({len(self.density_outliers)}): "
                + ", ".join(self.density_outliers[:5])
                + ("..." if len(self.density_outliers) > 5 else "")
            )
        if self.implausible_power_density:
            lines.append(
                f"implausible power density ({len(self.implausible_power_density)}): "
                + ", ".join(self.implausible_power_density[:5])
            )
        if self.thin_eras:
            lines.append("thin eras: " + ", ".join(self.thin_eras))
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        if self.fit_ready:
            lines.append("fit-ready")
        return "\n".join(lines)


def validate_population(
    database: ChipDatabase,
    density_fit: TransistorCountFit = PAPER_DENSITY_FIT,
    outlier_factor: float = 8.0,
    max_power_density_w_mm2: float = 2.0,
    min_chips_per_era: int = 8,
    min_total: int = 30,
) -> PopulationReport:
    """Check *database* for fit-readiness.

    * **density outliers** — transistor count more than *outlier_factor*
      away from the density law's prediction for the chip's die and node;
    * **implausible power density** — TDP above
      *max_power_density_w_mm2* W/mm^2 (beyond anything air-cooled) or
      below 0.001 W/mm^2;
    * **thin eras** — Fig 3c eras with fewer than *min_chips_per_era*
      rows, where a refit would silently fall back to paper constants.
    """
    density_outliers: List[str] = []
    implausible: List[str] = []
    warnings: List[str] = []

    for chip in database:
        if chip.area_mm2 is not None and chip.transistors is not None:
            predicted = density_fit.transistors_for_chip(
                chip.area_mm2, chip.node_nm
            )
            ratio = chip.transistors / predicted
            if ratio > outlier_factor or ratio < 1.0 / outlier_factor:
                density_outliers.append(chip.name)
        if chip.area_mm2 is not None:
            power_density = chip.tdp_w / chip.area_mm2
            if not (1e-3 <= power_density <= max_power_density_w_mm2):
                implausible.append(chip.name)

    thin = [
        era.name
        for era in NODE_ERAS_TDP
        if len(database.in_era(era).with_transistors()) < min_chips_per_era
    ]
    if len(database) < min_total:
        warnings.append(
            f"population too small for stable fits ({len(database)} < {min_total})"
        )
    usable = database.with_area().with_transistors()
    if len(usable) < max(2, len(database) // 4):
        warnings.append(
            "too few rows disclose both area and transistor count "
            f"({len(usable)}/{len(database)})"
        )

    return PopulationReport(
        n_chips=len(database),
        density_outliers=tuple(density_outliers),
        implausible_power_density=tuple(implausible),
        thin_eras=tuple(thin),
        warnings=tuple(warnings),
    )
