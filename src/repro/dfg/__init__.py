"""Dataflow-graph substrate (paper Section V).

The paper models computation problems as dataflow graphs (DFGs) — directed
acyclic graphs whose sources are input variables, sinks are output variables,
and interior vertices are computation operands.  Specialization concepts
(simplification, partitioning, heterogeneity) are rewrites/resource mappings
over this representation, and their theoretical limits (Table II) are
closed-form in DFG statistics.
"""

from repro.dfg.graph import Dfg, DfgNode, NodeKind
from repro.dfg.analysis import DfgStats, analyze, critical_path, stage_levels, topological_order
from repro.dfg.transforms import (
    dead_code_eliminate,
    eliminate_common_subexpressions,
    fuse_nodes,
    is_convex,
    stage_partition,
)
from repro.dfg.complexity import (
    Component,
    Concept,
    ConceptLimit,
    complexity_table,
    concept_limit,
)

__all__ = [
    "Dfg",
    "DfgNode",
    "NodeKind",
    "DfgStats",
    "analyze",
    "critical_path",
    "stage_levels",
    "topological_order",
    "dead_code_eliminate",
    "eliminate_common_subexpressions",
    "fuse_nodes",
    "is_convex",
    "stage_partition",
    "Component",
    "Concept",
    "ConceptLimit",
    "complexity_table",
    "concept_limit",
]
