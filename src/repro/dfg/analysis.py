"""DFG structural analysis: depth, stages, working sets, paths.

Implements the definitions of paper Section V-B:

* **depth** ``D`` — the number of vertices on the longest input→output path;
* **computation stage** — the ASAP level of a vertex (inputs are stage 1,
  every other vertex is one past its deepest predecessor);
* **stage working set** ``WS_s`` — the variables live in stage ``s``, whose
  maximum size bounds partitioning (Table II);
* **computation paths** ``P`` — all input→output routes (counted by dynamic
  programming; enumeration would be exponential).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dfg.graph import Dfg
from repro.errors import GraphStructureError


def topological_order(dfg: Dfg) -> List[int]:
    """Kahn topological order; raises :class:`GraphStructureError` on cycles."""
    in_degree = {nid: len(dfg.predecessors(nid)) for nid in dfg.node_ids()}
    ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
    order: List[int] = []
    while ready:
        nid = ready.pop()
        order.append(nid)
        for succ in dfg.successors(nid):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
    if len(order) != len(dfg):
        raise GraphStructureError(f"{dfg.name}: graph contains a cycle")
    return order


def stage_levels(dfg: Dfg) -> Dict[int, int]:
    """ASAP stage per vertex, 1-based (inputs are stage 1)."""
    levels: Dict[int, int] = {}
    for nid in topological_order(dfg):
        preds = dfg.predecessors(nid)
        levels[nid] = 1 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def stage_working_sets(dfg: Dfg) -> Dict[int, List[int]]:
    """``WS_s``: the vertices computed in each stage ``s``."""
    sets: Dict[int, List[int]] = {}
    for nid, level in stage_levels(dfg).items():
        sets.setdefault(level, []).append(nid)
    return sets


def depth(dfg: Dfg) -> int:
    """DFG depth ``D``: vertex count of the longest path."""
    return max(stage_levels(dfg).values())


def count_paths(dfg: Dfg) -> int:
    """Number of input→output computation paths (exact, via DP).

    May be astronomically large for wide graphs; Python integers make the
    count exact regardless.
    """
    paths_from: Dict[int, int] = {}
    for nid in reversed(topological_order(dfg)):
        succs = dfg.successors(nid)
        if not succs:
            paths_from[nid] = 1
        else:
            paths_from[nid] = sum(paths_from[s] for s in succs)
    return sum(paths_from[nid] for nid in dfg.inputs())


def critical_path(dfg: Dfg) -> List[int]:
    """One longest input→output path (vertex ids, source first)."""
    levels = stage_levels(dfg)
    # Walk backwards from the deepest vertex, always taking a deepest pred.
    tail = max(levels, key=lambda nid: levels[nid])
    path = [tail]
    while dfg.predecessors(path[-1]):
        preds = dfg.predecessors(path[-1])
        path.append(max(preds, key=lambda p: levels[p]))
    path.reverse()
    return path


@dataclass(frozen=True)
class DfgStats:
    """The DFG statistics consumed by the Table II complexity limits."""

    name: str
    n_vertices: int
    n_edges: int
    n_inputs: int
    n_outputs: int
    n_compute: int
    depth: int
    max_working_set: int
    stage_sizes: Tuple[int, ...]
    path_count: int

    @property
    def parallelism(self) -> float:
        """Average work per stage — the graph's inherent parallelism."""
        return self.n_vertices / self.depth

    def describe(self) -> str:
        return (
            f"{self.name}: |V|={self.n_vertices} |E|={self.n_edges} "
            f"in={self.n_inputs} out={self.n_outputs} D={self.depth} "
            f"max|WS|={self.max_working_set} paths={self.path_count}"
        )


def analyze(dfg: Dfg) -> DfgStats:
    """Compute all Table II-relevant statistics in one pass set."""
    dfg.validate()
    working_sets = stage_working_sets(dfg)
    stage_sizes = tuple(
        len(working_sets[s]) for s in sorted(working_sets)
    )
    return DfgStats(
        name=dfg.name,
        n_vertices=len(dfg),
        n_edges=dfg.num_edges,
        n_inputs=len(dfg.inputs()),
        n_outputs=len(dfg.outputs()),
        n_compute=len(dfg.compute_nodes()),
        depth=max(working_sets),
        max_working_set=max(stage_sizes),
        stage_sizes=stage_sizes,
        path_count=count_paths(dfg),
    )
