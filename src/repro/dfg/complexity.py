"""Theoretical limits of chip-specialization concepts (paper Table II).

Each (component, concept) pair has a closed-form asymptotic time and space
limit in DFG statistics.  We evaluate those formulas numerically for concrete
graphs (dropping the Θ constants, i.e. constant factor 1), which lets the
library compare concepts quantitatively: e.g. the speedup bound of memory
heterogeneity over memory simplification for a given kernel is
``(|V| * log max|WS|) / D``.

============== =============== ============================== ======================
Component      Concept         Time                           Space
============== =============== ============================== ======================
memory         simplification  |V| * log2(max|WS|)            max|WS|
memory         heterogeneity   D                              |E|
memory         partitioning    D * log2(max|WS|)              max|WS|
communication  simplification  |E|                            |V|
communication  heterogeneity   D                              |E|
communication  partitioning    D                              max|WS|
computation    simplification  |E|                            1
computation    heterogeneity   |V_IN|                         2^|V_IN| * |V_OUT|
computation    partitioning    D                              max|WS|
============== =============== ============================== ======================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.dfg.analysis import DfgStats


class Component(enum.Enum):
    """The three processing components specialization acts on."""

    MEMORY = "memory"
    COMMUNICATION = "communication"
    COMPUTATION = "computation"


class Concept(enum.Enum):
    """The three chip-specialization concepts (paper Section V-A)."""

    SIMPLIFICATION = "simplification"
    PARTITIONING = "partitioning"
    HETEROGENEITY = "heterogeneity"


@dataclass(frozen=True)
class ConceptLimit:
    """Numeric Table II entry for one (component, concept) pair.

    ``time`` and ``space`` evaluate the asymptotic formulas with constant
    factor 1; ``time_formula`` / ``space_formula`` are the symbolic forms for
    reports.  ``space`` can overflow floats for computation heterogeneity
    (``2^|V_IN|``), so it is kept as an exact Python integer-ish float via
    ``math.inf`` guarding.
    """

    component: Component
    concept: Concept
    time: float
    space: float
    time_formula: str
    space_formula: str


def _log2_ws(stats: DfgStats) -> float:
    """``log2(max|WS|)``, floored at 1 so degenerate graphs stay positive."""
    return max(1.0, math.log2(max(stats.max_working_set, 2)))


_TABLE: Dict[
    Tuple[Component, Concept],
    Tuple[Callable[[DfgStats], float], str, Callable[[DfgStats], float], str],
] = {
    (Component.MEMORY, Concept.SIMPLIFICATION): (
        lambda s: s.n_vertices * _log2_ws(s), "|V| * log(max|WS|)",
        lambda s: float(s.max_working_set), "max|WS|",
    ),
    (Component.MEMORY, Concept.HETEROGENEITY): (
        lambda s: float(s.depth), "D",
        lambda s: float(s.n_edges), "|E|",
    ),
    (Component.MEMORY, Concept.PARTITIONING): (
        lambda s: s.depth * _log2_ws(s), "D * log(max|WS|)",
        lambda s: float(s.max_working_set), "max|WS|",
    ),
    (Component.COMMUNICATION, Concept.SIMPLIFICATION): (
        lambda s: float(s.n_edges), "|E|",
        lambda s: float(s.n_vertices), "|V|",
    ),
    (Component.COMMUNICATION, Concept.HETEROGENEITY): (
        lambda s: float(s.depth), "D",
        lambda s: float(s.n_edges), "|E|",
    ),
    (Component.COMMUNICATION, Concept.PARTITIONING): (
        lambda s: float(s.depth), "D",
        lambda s: float(s.max_working_set), "max|WS|",
    ),
    (Component.COMPUTATION, Concept.SIMPLIFICATION): (
        lambda s: float(s.n_edges), "|E|",
        lambda s: 1.0, "1",
    ),
    (Component.COMPUTATION, Concept.HETEROGENEITY): (
        lambda s: float(s.n_inputs), "|V_IN|",
        lambda s: _lookup_table_space(s), "2^|V_IN| * |V_OUT|",
    ),
    (Component.COMPUTATION, Concept.PARTITIONING): (
        lambda s: float(s.depth), "D",
        lambda s: float(s.max_working_set), "max|WS|",
    ),
}


def _lookup_table_space(stats: DfgStats) -> float:
    """``2^|V_IN| * |V_OUT|`` with overflow clamped to infinity.

    The extreme of computation heterogeneity is one lookup table over all
    input bits — astronomically large for any realistic kernel, which is the
    paper's point: this concept's space limit is unreachable in practice.
    """
    if stats.n_inputs > 1000:
        return math.inf
    try:
        return float(2**stats.n_inputs) * stats.n_outputs
    except OverflowError:
        return math.inf


def concept_limit(
    stats: DfgStats, component: Component, concept: Concept
) -> ConceptLimit:
    """Evaluate the Table II entry for one (component, concept) pair."""
    time_fn, time_formula, space_fn, space_formula = _TABLE[(component, concept)]
    return ConceptLimit(
        component=component,
        concept=concept,
        time=time_fn(stats),
        space=space_fn(stats),
        time_formula=time_formula,
        space_formula=space_formula,
    )


def complexity_table(stats: DfgStats) -> Dict[Tuple[Component, Concept], ConceptLimit]:
    """All nine Table II entries for one analysed DFG."""
    return {
        key: concept_limit(stats, component, concept)
        for key in _TABLE
        for component, concept in [key]
    }


def speedup_bound(stats: DfgStats, component: Component) -> float:
    """Best-case speedup of heterogeneity/partitioning over simplification.

    For each component the simplification concept gives the *cheapest* but
    *slowest* design; the bound is its time limit divided by the fastest
    concept's time limit.  This quantifies the paper's observation that the
    optimization space is finite: once a design runs within a constant of
    ``Θ(D)`` (or ``Θ(|V_IN|)`` for computation), no further specialization
    of that component can improve asymptotic runtime.
    """
    simplification = concept_limit(stats, component, Concept.SIMPLIFICATION).time
    fastest = min(
        concept_limit(stats, component, concept).time
        for concept in (Concept.PARTITIONING, Concept.HETEROGENEITY)
    )
    return simplification / fastest
