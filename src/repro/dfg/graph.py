"""The dataflow-graph (DFG) type.

A DFG is a DAG ``G(V, E)`` with three vertex kinds (paper Section V-B):

* *input variables* — no incoming edges,
* *output variables* — no outgoing edges,
* *computation nodes* — interior vertices carrying an operation.

The type is a mutable builder: workload generators add nodes and edges, then
callers freeze-validate via :meth:`Dfg.validate` before analysis.  Mutation
is O(1); acyclicity is checked once at validation (and by every analysis,
which topologically sorts anyway).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphStructureError


class NodeKind(enum.Enum):
    """Vertex role in the dataflow graph."""

    INPUT = "input"
    OUTPUT = "output"
    COMPUTE = "compute"


@dataclass(frozen=True)
class DfgNode:
    """One DFG vertex.

    ``op`` names the operation for compute nodes (e.g. ``"add"``, ``"mul"``,
    ``"load"``) and is ``None`` for pure input/output variables.  ``label``
    is a free-form annotation for debugging and example output.
    """

    node_id: int
    kind: NodeKind
    op: Optional[str] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is NodeKind.COMPUTE and not self.op:
            raise GraphStructureError(
                f"compute node {self.node_id} must carry an operation"
            )
        if self.kind is not NodeKind.COMPUTE and self.op is not None:
            raise GraphStructureError(
                f"{self.kind.value} node {self.node_id} cannot carry an operation"
            )


class Dfg:
    """A directed acyclic dataflow graph."""

    def __init__(self, name: str = "dfg"):
        self.name = name
        self._nodes: Dict[int, DfgNode] = {}
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        self._next_id = 0

    # -- construction --------------------------------------------------------

    def _add(self, kind: NodeKind, op: Optional[str], label: Optional[str]) -> int:
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = DfgNode(node_id, kind, op, label)
        self._succ[node_id] = []
        self._pred[node_id] = []
        return node_id

    def add_input(self, label: Optional[str] = None) -> int:
        """Add an input-variable vertex; returns its id."""
        return self._add(NodeKind.INPUT, None, label)

    def add_output(self, source: int, label: Optional[str] = None) -> int:
        """Add an output-variable vertex fed by *source*; returns its id."""
        node_id = self._add(NodeKind.OUTPUT, None, label)
        self.add_edge(source, node_id)
        return node_id

    def add_compute(
        self, op: str, operands: Iterable[int], label: Optional[str] = None
    ) -> int:
        """Add a computation vertex consuming *operands*; returns its id."""
        operand_list = list(operands)
        if not operand_list:
            raise GraphStructureError(f"compute op {op!r} needs >= 1 operand")
        node_id = self._add(NodeKind.COMPUTE, op, label)
        for operand in operand_list:
            self.add_edge(operand, node_id)
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        """Add a dependence edge ``src -> dst``."""
        if src not in self._nodes or dst not in self._nodes:
            raise GraphStructureError(f"edge ({src}, {dst}) references unknown node")
        if src == dst:
            raise GraphStructureError(f"self-loop on node {src}")
        if self._nodes[src].kind is NodeKind.OUTPUT:
            raise GraphStructureError(f"output node {src} cannot have successors")
        if self._nodes[dst].kind is NodeKind.INPUT:
            raise GraphStructureError(f"input node {dst} cannot have predecessors")
        if dst in self._succ[src]:
            return  # idempotent: duplicate dependence carries no information
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    # -- accessors ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterator[DfgNode]:
        return iter(self._nodes.values())

    def node(self, node_id: int) -> DfgNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphStructureError(f"unknown node id {node_id}") from None

    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def successors(self, node_id: int) -> Tuple[int, ...]:
        return tuple(self._succ[node_id])

    def predecessors(self, node_id: int) -> Tuple[int, ...]:
        return tuple(self._pred[node_id])

    def edges(self) -> Iterator[Tuple[int, int]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    @property
    def num_edges(self) -> int:
        return sum(len(dsts) for dsts in self._succ.values())

    def inputs(self) -> List[int]:
        """Vertices with no incoming edges (the set ``V_IN``)."""
        return [nid for nid in self._nodes if not self._pred[nid]]

    def outputs(self) -> List[int]:
        """Vertices with no outgoing edges (the set ``V_OUT``)."""
        return [nid for nid in self._nodes if not self._succ[nid]]

    def compute_nodes(self) -> List[int]:
        """Interior vertices (the set ``V_CMP``)."""
        return [
            nid
            for nid in self._nodes
            if self._pred[nid] and self._succ[nid]
        ]

    # -- validation -----------------------------------------------------------

    def validate(self) -> "Dfg":
        """Check all structural invariants; returns self for chaining.

        Raises :class:`GraphStructureError` on: empty graph, a cycle, a
        declared-INPUT vertex with predecessors (guarded at insert but
        re-checked), a declared-OUTPUT vertex with successors, a compute
        vertex with no consumers (dead code must be eliminated explicitly),
        or a compute vertex with no operands.
        """
        if not self._nodes:
            raise GraphStructureError(f"{self.name}: empty graph")
        for node in self._nodes.values():
            preds = self._pred[node.node_id]
            succs = self._succ[node.node_id]
            if node.kind is NodeKind.INPUT and preds:
                raise GraphStructureError(
                    f"{self.name}: input node {node.node_id} has predecessors"
                )
            if node.kind is NodeKind.OUTPUT and succs:
                raise GraphStructureError(
                    f"{self.name}: output node {node.node_id} has successors"
                )
            if node.kind is NodeKind.OUTPUT and not preds:
                raise GraphStructureError(
                    f"{self.name}: output node {node.node_id} is unconnected"
                )
            if node.kind is NodeKind.COMPUTE:
                if not preds:
                    raise GraphStructureError(
                        f"{self.name}: compute node {node.node_id} has no operands"
                    )
                if not succs:
                    raise GraphStructureError(
                        f"{self.name}: compute node {node.node_id} is dead "
                        "(no consumers); run dead_code_eliminate first"
                    )
        self._check_acyclic()
        return self

    def _check_acyclic(self) -> None:
        """Kahn's algorithm; raises if any vertex is left unprocessed."""
        in_degree = {nid: len(self._pred[nid]) for nid in self._nodes}
        ready = [nid for nid, deg in in_degree.items() if deg == 0]
        seen = 0
        while ready:
            nid = ready.pop()
            seen += 1
            for succ in self._succ[nid]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if seen != len(self._nodes):
            raise GraphStructureError(f"{self.name}: graph contains a cycle")

    # -- structural copy -------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Dfg":
        """Deep structural copy."""
        clone = Dfg(name or self.name)
        clone._nodes = dict(self._nodes)
        clone._succ = {nid: list(dsts) for nid, dsts in self._succ.items()}
        clone._pred = {nid: list(srcs) for nid, srcs in self._pred.items()}
        clone._next_id = self._next_id
        return clone

    def subgraph(self, keep: Set[int], name: Optional[str] = None) -> "Dfg":
        """Induced subgraph over the vertex set *keep*."""
        missing = keep - set(self._nodes)
        if missing:
            raise GraphStructureError(f"subgraph references unknown nodes {missing}")
        clone = Dfg(name or f"{self.name}-sub")
        clone._nodes = {nid: self._nodes[nid] for nid in keep}
        clone._succ = {
            nid: [d for d in self._succ[nid] if d in keep] for nid in keep
        }
        clone._pred = {
            nid: [s for s in self._pred[nid] if s in keep] for nid in keep
        }
        clone._next_id = self._next_id
        return clone

    def __repr__(self) -> str:
        return (
            f"Dfg({self.name!r}: {len(self)} nodes, {self.num_edges} edges, "
            f"{len(self.inputs())} in, {len(self.outputs())} out)"
        )
