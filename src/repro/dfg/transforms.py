"""DFG rewrites modelling the chip-specialization concepts.

* **heterogeneity** — :func:`fuse_nodes` merges a convex set of compute
  vertices into one problem-specific "super node";
* **simplification** — :func:`eliminate_common_subexpressions` and
  :func:`dead_code_eliminate` shrink the graph without changing its
  input/output function;
* **partitioning** — :func:`stage_partition` slices the graph into the
  per-stage working sets a maximally partitioned design processes in
  parallel.

Every transform returns a new graph; inputs are never mutated.  Acyclicity
preservation is a library invariant (property-tested in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.dfg.analysis import stage_working_sets, topological_order
from repro.dfg.graph import Dfg, NodeKind
from repro.errors import GraphStructureError


def is_convex(dfg: Dfg, nodes: Set[int]) -> bool:
    """True when no path leaves *nodes* and re-enters it.

    Fusing a non-convex set would create a cycle between the super node and
    the outside vertices on the re-entering path.
    """
    outside_reachable: Set[int] = set()
    # Seed with outside successors of the set, then flood forward.
    frontier = [
        succ
        for nid in nodes
        for succ in dfg.successors(nid)
        if succ not in nodes
    ]
    while frontier:
        current = frontier.pop()
        if current in outside_reachable:
            continue
        outside_reachable.add(current)
        frontier.extend(dfg.successors(current))
    return not (outside_reachable & nodes)


def fuse_nodes(dfg: Dfg, nodes: Sequence[int], op: str = "fused") -> Dfg:
    """Heterogeneity rewrite: merge compute vertices into one super node.

    *nodes* must be a non-empty convex set of compute vertices.  The fused
    vertex inherits all external predecessors and successors (deduplicated).
    """
    node_set = set(nodes)
    if not node_set:
        raise GraphStructureError("cannot fuse an empty node set")
    for nid in node_set:
        if dfg.node(nid).kind is not NodeKind.COMPUTE:
            raise GraphStructureError(
                f"cannot fuse non-compute node {nid} ({dfg.node(nid).kind.value})"
            )
    if not is_convex(dfg, node_set):
        raise GraphStructureError(
            "fusion set is not convex: a path leaves and re-enters the set"
        )
    return _rebuild_with_fusion(dfg, node_set, op)


_FUSED = -1  # sentinel id for the contracted super node


def _contracted_order(dfg: Dfg, node_set: Set[int]) -> List[int]:
    """Topological order of the graph with *node_set* contracted to one node.

    Convexity of *node_set* guarantees the contracted graph is acyclic.  The
    sentinel :data:`_FUSED` stands for the super node in the returned order.
    """
    ids = [nid for nid in dfg.node_ids() if nid not in node_set] + [_FUSED]

    def contract(nid: int) -> int:
        return _FUSED if nid in node_set else nid

    preds: Dict[int, Set[int]] = {nid: set() for nid in ids}
    for src, dst in dfg.edges():
        csrc, cdst = contract(src), contract(dst)
        if csrc != cdst:
            preds[cdst].add(csrc)
    in_degree = {nid: len(p) for nid, p in preds.items()}
    succs: Dict[int, List[int]] = {nid: [] for nid in ids}
    for nid, ps in preds.items():
        for p in ps:
            succs[p].append(nid)
    ready = [nid for nid, deg in in_degree.items() if deg == 0]
    order: List[int] = []
    while ready:
        nid = ready.pop()
        order.append(nid)
        for succ in succs[nid]:
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
    if len(order) != len(ids):
        raise GraphStructureError("contracted graph contains a cycle")
    return order


def _rebuild_with_fusion(dfg: Dfg, node_set: Set[int], op: str) -> Dfg:
    """Rebuild along the contracted topological order (see fuse_nodes)."""
    result = Dfg(f"{dfg.name}+fused")
    id_map: Dict[int, int] = {}

    # External operands of the fused super node, in deterministic order.
    fused_external_preds: List[int] = []
    seen_preds: Set[int] = set()
    for nid in topological_order(dfg):
        if nid in node_set:
            for p in dfg.predecessors(nid):
                if p not in node_set and p not in seen_preds:
                    seen_preds.add(p)
                    fused_external_preds.append(p)

    for nid in _contracted_order(dfg, node_set):
        if nid == _FUSED:
            preds = [id_map[p] for p in fused_external_preds]
            if not preds:
                raise GraphStructureError(
                    "fused set has no external operands; it would become "
                    "an input, not a compute node"
                )
            fused_new_id = result.add_compute(op, preds, label=op)
            for member in node_set:
                id_map[member] = fused_new_id
            continue
        node = dfg.node(nid)
        if node.kind is NodeKind.INPUT:
            id_map[nid] = result.add_input(node.label)
        elif node.kind is NodeKind.OUTPUT:
            (src,) = dfg.predecessors(nid)
            id_map[nid] = result.add_output(id_map[src], node.label)
        else:
            preds = []
            for p in dfg.predecessors(nid):
                mapped = id_map[p]
                if mapped not in preds:
                    preds.append(mapped)
            id_map[nid] = result.add_compute(node.op, preds, node.label)
    return result


def dead_code_eliminate(dfg: Dfg) -> Dfg:
    """Simplification rewrite: drop vertices that reach no output.

    Removes dead compute vertices *and* unused inputs, so the surviving
    graph's degree-based ``V_IN`` / ``V_OUT`` sets (paper Section V-B) stay
    meaningful: every source feeds some output, every sink is a declared
    output.
    """
    useful: Set[int] = set()
    frontier = [
        nid for nid in dfg.node_ids() if dfg.node(nid).kind is NodeKind.OUTPUT
    ]
    while frontier:
        nid = frontier.pop()
        if nid in useful:
            continue
        useful.add(nid)
        frontier.extend(dfg.predecessors(nid))
    return dfg.subgraph(useful, name=f"{dfg.name}+dce")


def eliminate_common_subexpressions(dfg: Dfg) -> Dfg:
    """Simplification rewrite: merge identical compute vertices.

    Two compute vertices are identical when they carry the same operation
    over the same (mapped) operand multiset.  Applied in topological order so
    chains of duplicates collapse fully in one call.
    """
    result = Dfg(f"{dfg.name}+cse")
    id_map: Dict[int, int] = {}
    canonical: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    for nid in topological_order(dfg):
        node = dfg.node(nid)
        if node.kind is NodeKind.INPUT:
            id_map[nid] = result.add_input(node.label)
        elif node.kind is NodeKind.OUTPUT:
            (src,) = dfg.predecessors(nid)
            id_map[nid] = result.add_output(id_map[src], node.label)
        else:
            # Dfg stores at most one edge per (src, dst) pair, so operand
            # *sets* (not multisets) are the canonical identity — this also
            # makes the rewrite idempotent (property-tested).
            operands = tuple(sorted({id_map[p] for p in dfg.predecessors(nid)}))
            key = (node.op, operands)
            if key in canonical:
                id_map[nid] = canonical[key]
            else:
                new_id = result.add_compute(node.op, operands, node.label)
                canonical[key] = new_id
                id_map[nid] = new_id
    return result


def stage_partition(dfg: Dfg, max_lanes: int) -> List[List[List[int]]]:
    """Partitioning view: per-stage working sets chunked into *max_lanes*.

    Returns, for each computation stage, the list of lanes (each a list of
    vertex ids) a design with *max_lanes* parallel paths would process.  The
    number of serialised chunks per stage is the stage's execution time under
    that partitioning factor — the quantity Table II bounds by ``Θ(D)`` when
    ``max_lanes >= max|WS_s|``.
    """
    if max_lanes < 1:
        raise GraphStructureError(f"partition factor must be >= 1, got {max_lanes}")
    stages = stage_working_sets(dfg)
    partitioned: List[List[List[int]]] = []
    for stage in sorted(stages):
        members = sorted(stages[stage])
        lanes = [
            members[i : i + max_lanes] for i in range(0, len(members), max_lanes)
        ]
        partitioned.append(lanes)
    return partitioned
