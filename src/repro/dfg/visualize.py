"""Graphviz DOT export for dataflow graphs.

``to_dot`` renders a DFG as DOT text (inputs as boxes, outputs as double
circles, compute vertices as ellipses labelled with their op), optionally
clustered by computation stage so the working-set structure is visible.
Feed the output to any Graphviz installation; nothing here imports one.
"""

from __future__ import annotations

from typing import Optional

from repro.dfg.analysis import stage_levels
from repro.dfg.graph import Dfg, NodeKind


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_line(dfg: Dfg, nid: int) -> str:
    node = dfg.node(nid)
    if node.kind is NodeKind.INPUT:
        label = node.label or f"in{nid}"
        shape = "box"
    elif node.kind is NodeKind.OUTPUT:
        label = node.label or f"out{nid}"
        shape = "doublecircle"
    else:
        label = node.op if not node.label else f"{node.op}\\n{node.label}"
        shape = "ellipse"
    return f'  n{nid} [label="{_escape(label)}", shape={shape}];'


def to_dot(
    dfg: Dfg,
    cluster_stages: bool = False,
    max_nodes: Optional[int] = 2000,
) -> str:
    """Render *dfg* as DOT text.

    With ``cluster_stages=True`` vertices are grouped into per-stage
    subgraph clusters (the ASAP levels of the Section V-B analysis).
    *max_nodes* guards against accidentally dumping a huge trace; pass
    ``None`` to disable.
    """
    if max_nodes is not None and len(dfg) > max_nodes:
        raise ValueError(
            f"{dfg.name}: {len(dfg)} nodes exceeds max_nodes={max_nodes}; "
            "pass max_nodes=None to force"
        )
    lines = [f'digraph "{_escape(dfg.name)}" {{', "  rankdir=TB;"]
    if cluster_stages:
        levels = stage_levels(dfg)
        by_stage: dict = {}
        for nid, stage in levels.items():
            by_stage.setdefault(stage, []).append(nid)
        for stage in sorted(by_stage):
            lines.append(f"  subgraph cluster_stage{stage} {{")
            lines.append(f'    label="stage {stage}";')
            for nid in sorted(by_stage[stage]):
                lines.append("  " + _node_line(dfg, nid))
            lines.append("  }")
    else:
        for nid in dfg.node_ids():
            lines.append(_node_line(dfg, nid))
    for src, dst in dfg.edges():
        lines.append(f"  n{src} -> n{dst};")
    lines.append("}")
    return "\n".join(lines)
