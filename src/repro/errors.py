"""Exception hierarchy for the accelerator-wall reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class UnknownNodeError(ReproError, ValueError):
    """A CMOS process node was requested that the model cannot represent."""

    def __init__(self, node: object, valid_range: tuple[float, float]):
        self.node = node
        self.valid_range = valid_range
        super().__init__(
            f"unknown CMOS node {node!r}: model covers "
            f"{valid_range[0]:g}nm down to {valid_range[1]:g}nm"
        )


class InvalidChipSpecError(ReproError, ValueError):
    """A chip datasheet record failed validation."""


class InvalidDesignPointError(ReproError, ValueError):
    """An accelerator design point lies outside the explored space."""


class GraphStructureError(ReproError, ValueError):
    """A dataflow graph violates a structural invariant (e.g. a cycle)."""


class FitError(ReproError, RuntimeError):
    """A regression fit could not be computed (e.g. too few points)."""


class ProjectionError(ReproError, RuntimeError):
    """A Pareto-frontier projection could not be constructed."""


class DatasetError(ReproError, ValueError):
    """An embedded case-study dataset is malformed or empty after filtering."""


class ValidationError(ReproError, ValueError):
    """A numerical guard rejected an input or an intermediate result.

    Raised by the :mod:`repro.validate` guards when a quantity that must be
    finite, positive, monotone, or well-conditioned is not — instead of
    letting ``nan``/``inf`` or a raw numpy warning propagate silently into
    downstream fits and projections.
    """


class SelfCheckError(ReproError, RuntimeError):
    """A ``repro check`` self-diagnostic found a violated invariant."""
