"""Observability layer: span tracing, metrics, structured logging.

The DSE pipeline applies the paper's measurement discipline to itself:
just as Eqs 1-2 decompose a chip's gain into CMOS- and specialization-
driven parts, this package decomposes a run's wall time into named stages
(schedule, evaluate, cache traffic) so the next optimisation round starts
from measurements instead of guesses.

Three cooperating modules:

* :mod:`repro.obs.trace` — nested spans with monotonic timestamps and
  process/thread ids, exportable as Chrome trace-event JSON (open the
  file in Perfetto or ``chrome://tracing``).  Worker processes record
  their own spans, which the engine ships back with chunk results and
  merges into the parent trace.
* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges, and timers.  Cache hit/miss/write/drop counts and per-stage
  times are published here; ``repro stats`` renders the snapshot.
* :mod:`repro.obs.log` — ``key=value`` structured logging on ``repro.*``
  loggers, configured once from the CLI ``-v``/``-vv`` flags.

All three are dormant by default: no tracer installed means ``span()``
is a reusable no-op, metrics are plain in-process integers, and loggers
propagate to whatever the host application configured.
"""

from repro.obs.log import configure_logging, get_logger, kv, set_log_run_id
from repro.obs.metrics import Histogram, MetricsRegistry, metrics, reset_metrics
from repro.obs.trace import (
    Span,
    Tracer,
    current_trace_id,
    get_tracer,
    new_trace_id,
    parse_traceparent,
    set_tracer,
    span,
    trace_id_from_headers,
    trace_scope,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "configure_logging",
    "current_trace_id",
    "get_logger",
    "get_tracer",
    "kv",
    "metrics",
    "new_trace_id",
    "parse_traceparent",
    "reset_metrics",
    "set_log_run_id",
    "set_tracer",
    "span",
    "trace_id_from_headers",
    "trace_scope",
]
