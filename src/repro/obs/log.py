"""Structured ``key=value`` logging on the ``repro.*`` logger tree.

Library modules obtain loggers with :func:`get_logger` and format their
messages with :func:`kv`, so every line is a greppable sequence of
``key=value`` pairs::

    logger.info("sweep.done %s", kv(kernel="S3D", points=96, elapsed_s=0.41))

Nothing is emitted until a handler is attached: :func:`configure_logging`
is called exactly once by the CLI, mapping ``-v`` to INFO and ``-vv`` to
DEBUG on the ``repro`` root logger.  Library code never configures
handlers itself, so embedding applications keep full control.

Lines emitted while a request trace id is bound (:func:`trace_scope`)
carry a trailing `` trace_id=<id>`` so logs correlate with the flight
recorder and `/debug/trace/{id}` (METHODOLOGY §15); a server additionally
calls :func:`set_log_run_id` once at startup so every line names the run.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["configure_logging", "get_logger", "kv", "set_log_run_id"]

ROOT_LOGGER = "repro"

_FORMAT = "%(relativeCreated)8.1fms %(levelname)-7s %(name)s %(message)s%(obs_context)s"

_RUN_ID: Optional[str] = None


def set_log_run_id(run_id: Optional[str]) -> None:
    """Attach *run_id* to every subsequent log line (``None`` detaches)."""
    global _RUN_ID
    _RUN_ID = run_id


class _ContextFilter(logging.Filter):
    """Stamp ``record.obs_context`` with the bound trace id and run id.

    A Filter rather than a Formatter so the fields exist on the record
    (greppable by downstream handlers too), and so lines outside any
    request context stay byte-identical to the old format.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        from repro.obs.trace import current_trace_id

        parts = []
        trace_id = current_trace_id()
        if trace_id:
            parts.append(f"trace_id={trace_id}")
        if _RUN_ID:
            parts.append(f"run_id={_RUN_ID}")
        record.obs_context = " " + " ".join(parts) if parts else ""
        return True


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str):
        # Quote only when needed so the common case stays clean.
        return value if value and " " not in value and "=" not in value else repr(value)
    return str(value)


def kv(**fields: object) -> str:
    """Render *fields* as space-separated ``key=value`` pairs."""
    return " ".join(f"{key}={_format_value(value)}" for key, value in fields.items())


def configure_logging(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root logger.

    ``verbosity`` 0 leaves logging at WARNING (quiet), 1 enables INFO,
    2+ enables DEBUG.  Idempotent: a handler installed by a previous call
    is replaced, not duplicated, so tests and repeated CLI invocations in
    one process never double-log.
    """
    root = logging.getLogger(ROOT_LOGGER)
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO
        if verbosity == 1
        else logging.DEBUG
    )
    root.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.addFilter(_ContextFilter())
    handler.set_name("repro-obs")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs":
            root.removeHandler(existing)
    root.addHandler(handler)
    return root
