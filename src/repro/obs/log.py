"""Structured ``key=value`` logging on the ``repro.*`` logger tree.

Library modules obtain loggers with :func:`get_logger` and format their
messages with :func:`kv`, so every line is a greppable sequence of
``key=value`` pairs::

    logger.info("sweep.done %s", kv(kernel="S3D", points=96, elapsed_s=0.41))

Nothing is emitted until a handler is attached: :func:`configure_logging`
is called exactly once by the CLI, mapping ``-v`` to INFO and ``-vv`` to
DEBUG on the ``repro`` root logger.  Library code never configures
handlers itself, so embedding applications keep full control.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["configure_logging", "get_logger", "kv"]

ROOT_LOGGER = "repro"

_FORMAT = "%(relativeCreated)8.1fms %(levelname)-7s %(name)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, str):
        # Quote only when needed so the common case stays clean.
        return value if value and " " not in value and "=" not in value else repr(value)
    return str(value)


def kv(**fields: object) -> str:
    """Render *fields* as space-separated ``key=value`` pairs."""
    return " ".join(f"{key}={_format_value(value)}" for key, value in fields.items())


def configure_logging(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root logger.

    ``verbosity`` 0 leaves logging at WARNING (quiet), 1 enables INFO,
    2+ enables DEBUG.  Idempotent: a handler installed by a previous call
    is replaced, not duplicated, so tests and repeated CLI invocations in
    one process never double-log.
    """
    root = logging.getLogger(ROOT_LOGGER)
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO
        if verbosity == 1
        else logging.DEBUG
    )
    root.setLevel(level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.set_name("repro-obs")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs":
            root.removeHandler(existing)
    root.addHandler(handler)
    return root
