"""Process-wide registry of named counters, gauges, timers, and histograms.

Instrumented code publishes what it is doing under stable dotted names —
``cache.schedules.hits``, ``engine.sweeps``, ``serve.latency_s`` — and
operators read the aggregate through :meth:`MetricsRegistry.snapshot`
(machine-readable) or :meth:`MetricsRegistry.render` (a table, surfaced
by the ``repro stats`` CLI command).

Four instrument kinds:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Gauge` — a point-in-time float, last write wins.
* :class:`Timer` — accumulated duration + observation count (mean only).
* :class:`Histogram` — a log-linear-bucket latency distribution with
  :meth:`~Histogram.quantile` estimates, mergeable across processes.
  Hot-path request/stage timings use this so operators see p50/p99, not
  just means (METHODOLOGY §15).

Every instrument takes its own lock around mutation, so concurrent
threads in the serve harness never lose increments — the registry lock
only guards instrument *creation*.

The registry is per *process*.  The sweep engine folds its worker
processes' cache/stage counters into the parent's ``engine.*`` metrics
via :class:`repro.accel.sweep.SweepStats`, so the parent snapshot covers
the whole run; the ``cache.*`` families count only the calling process's
own cache traffic (see METHODOLOGY §10).

Snapshots are plain dicts, so they can be persisted as JSON and merged
with :meth:`MetricsRegistry.absorb` (counters, timers, and histograms
add; gauges keep the absorbed value).  A histogram snapshot round-trips
through JSON bit-exactly: bucket counts are integers and the sum is a
float JSON preserves.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "bucket_bounds",
    "bucket_index",
    "metrics",
    "reset_metrics",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> int:
        with self._lock:
            self.value += int(amount)
            return self.value


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> float:
        with self._lock:
            self.value = float(value)
            return self.value


class Timer:
    """Accumulated duration with an observation count."""

    __slots__ = ("count", "total_s", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total_s += float(seconds)

    def time(self) -> "_TimerContext":
        """Context manager observing the duration of its body."""
        return _TimerContext(self)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class _TimerContext:
    __slots__ = ("_observe", "_start")

    def __init__(self, instrument):
        self._observe = instrument.observe
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._observe(time.perf_counter() - self._start)
        return False


# -- log-linear histogram buckets ---------------------------------------------
#
# Values are bucketed on a log-linear grid: each power-of-two octave above
# ``HIST_MIN`` is split into ``HIST_SUBBUCKETS`` equal linear sub-buckets,
# so the relative bucket width is bounded by ``1 / HIST_SUBBUCKETS`` of an
# octave (12.5% with 8 sub-buckets) across the whole dynamic range.
# Bucket 0 is the underflow bucket (everything at or below ``HIST_MIN``,
# including zero and negative durations from clock weirdness); the last
# index is the overflow bucket.  For second-scale latencies the grid spans
# 1µs .. ~1.1Ms with 321 possible buckets, stored sparsely.

HIST_MIN = 1e-6
HIST_SUBBUCKETS = 8
HIST_OCTAVES = 40
HIST_MAX_INDEX = HIST_OCTAVES * HIST_SUBBUCKETS + 1


def bucket_index(value: float) -> int:
    """The bucket index for *value* (0 = underflow, max = overflow)."""
    if not value > HIST_MIN:  # also catches NaN -> underflow
        return 0
    # frexp is exact: ratio = m * 2**e with m in [0.5, 1), so the octave
    # is e-1 and the position within it is 2*m in [1, 2) — no log() edge
    # cases at the power-of-two boundaries.
    m, e = math.frexp(value / HIST_MIN)
    octave = e - 1
    if octave >= HIST_OCTAVES:
        return HIST_MAX_INDEX
    sub = int((2.0 * m - 1.0) * HIST_SUBBUCKETS)
    if sub >= HIST_SUBBUCKETS:  # 2*m rounded up to 2.0 at the edge
        sub = HIST_SUBBUCKETS - 1
    return 1 + octave * HIST_SUBBUCKETS + sub


def bucket_bounds(index: int) -> "tuple[float, float]":
    """``(lower, upper]`` value bounds of bucket *index* in seconds."""
    if index <= 0:
        return 0.0, HIST_MIN
    if index >= HIST_MAX_INDEX:
        return HIST_MIN * 2.0 ** HIST_OCTAVES, math.inf
    octave, sub = divmod(index - 1, HIST_SUBBUCKETS)
    base = HIST_MIN * 2.0 ** octave
    return (
        base * (1.0 + sub / HIST_SUBBUCKETS),
        base * (1.0 + (sub + 1) / HIST_SUBBUCKETS),
    )


class Histogram:
    """A mergeable latency distribution over log-linear buckets.

    ``observe`` is O(1) and lock-cheap (a frexp, a dict increment); the
    exact min/max/sum ride along so quantile estimates can be clamped to
    the observed range.  ``quantile`` returns the upper bound of the
    bucket holding the requested rank, clamped to ``[min, max]`` — always
    within one bucket width (≤ 12.5% relative) of the true quantile.
    """

    __slots__ = ("count", "sum_s", "min_s", "max_s", "buckets", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.sum_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        value = float(seconds)
        index = bucket_index(value)
        with self._lock:
            self.count += 1
            self.sum_s += value
            if self.min_s is None or value < self.min_s:
                self.min_s = value
            if self.max_s is None or value > self.max_s:
                self.max_s = value
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def time(self) -> _TimerContext:
        """Context manager observing the duration of its body."""
        return _TimerContext(self)

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0..1) of the observed values."""
        with self._lock:
            if not self.count:
                return 0.0
            need = min(self.count, max(1, math.ceil(q * self.count)))
            cumulative = 0
            index = HIST_MAX_INDEX
            for index in sorted(self.buckets):
                cumulative += self.buckets[index]
                if cumulative >= need:
                    break
            _, upper = bucket_bounds(index)
            low = self.min_s if self.min_s is not None else 0.0
            high = self.max_s if self.max_s is not None else upper
            return min(max(upper, low), high)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s observations into this histogram (in place)."""
        with other._lock:
            entry = {
                "count": other.count,
                "sum": other.sum_s,
                "min": other.min_s,
                "max": other.max_s,
                "buckets": {str(k): v for k, v in other.buckets.items()},
            }
        self.absorb_entry(entry)
        return self

    def absorb_entry(self, entry: Dict[str, object]) -> None:
        """Merge one snapshot entry (the JSON shape) into this histogram.

        Everything is parsed before anything is applied, so a malformed
        entry raises without half-applying.
        """
        count = int(entry.get("count", 0))  # type: ignore[arg-type]
        total = float(entry.get("sum", 0.0))  # type: ignore[arg-type]
        low = entry.get("min")
        low = None if low is None else float(low)  # type: ignore[arg-type]
        high = entry.get("max")
        high = None if high is None else float(high)  # type: ignore[arg-type]
        buckets = entry.get("buckets") or {}
        if not isinstance(buckets, dict):
            raise TypeError("histogram buckets must be a dict")
        parsed = {int(key): int(value) for key, value in buckets.items()}
        if count < 0 or any(v < 0 for v in parsed.values()):
            raise ValueError("negative histogram count")
        with self._lock:
            self.count += count
            self.sum_s += total
            if low is not None:
                self.min_s = low if self.min_s is None else min(self.min_s, low)
            if high is not None:
                self.max_s = high if self.max_s is None else max(self.max_s, high)
            for index, value in parsed.items():
                self.buckets[index] = self.buckets.get(index, 0) + value

    def snapshot_entry(self) -> Dict[str, object]:
        """This histogram as the JSON-safe snapshot shape."""
        with self._lock:
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.sum_s,
                "min": self.min_s,
                "max": self.max_s,
                "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            }


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> Timer:
        try:
            return self._timers[name]
        except KeyError:
            with self._lock:
                return self._timers.setdefault(name, Timer())

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram())

    def reset(self) -> None:
        """Drop every instrument (tests, or a fresh CLI invocation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view: ``name -> {"type", "value", ...}``, JSON-safe."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            timers = list(self._timers.items())
            histograms = list(self._histograms.items())
        for name, counter in counters:
            out[name] = {"type": "counter", "value": counter.value}
        for name, gauge in gauges:
            out[name] = {"type": "gauge", "value": gauge.value}
        for name, timer in timers:
            with timer._lock:
                out[name] = {
                    "type": "timer",
                    "count": timer.count,
                    "total_s": timer.total_s,
                }
        for name, histogram in histograms:
            out[name] = histogram.snapshot_entry()
        return out

    def absorb(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Merge a :meth:`snapshot` (counters/timers/histograms add, gauges
        overwrite).

        Tolerant of snapshots written by other library versions: entries
        with an unknown metric kind, a non-dict shape, or non-numeric
        fields are skipped — counted in the ``metrics.absorb.skipped``
        counter and reported once per call as a structured warning — so
        old persisted ledgers stay readable instead of raising.
        """
        skipped: List[str] = []
        for name, entry in snapshot.items():
            kind = entry.get("type") if isinstance(entry, dict) else None
            try:
                if kind == "counter":
                    self.counter(name).inc(int(entry.get("value", 0)))
                elif kind == "gauge":
                    self.gauge(name).set(float(entry.get("value", 0.0)))
                elif kind == "timer":
                    count = int(entry.get("count", 0))
                    total_s = float(entry.get("total_s", 0.0))
                    timer = self.timer(name)
                    with timer._lock:
                        timer.count += count
                        timer.total_s += total_s
                elif kind == "histogram":
                    # Validate into a scratch first so a malformed entry
                    # doesn't leave an empty instrument behind.
                    scratch = Histogram()
                    scratch.absorb_entry(entry)
                    self.histogram(name).merge(scratch)
                else:
                    skipped.append(name)
            except (TypeError, ValueError):
                skipped.append(name)
        if skipped:
            from repro.obs.log import get_logger, kv

            self.counter("metrics.absorb.skipped").inc(len(skipped))
            get_logger("obs.metrics").warning(
                "metrics.absorb.skipped %s",
                kv(count=len(skipped), names=",".join(sorted(skipped)[:8])),
            )

    def render(self, snapshot: Optional[Dict[str, Dict[str, object]]] = None) -> str:
        """Human-readable table of *snapshot* (default: the live registry)."""
        snap = snapshot if snapshot is not None else self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        lines: List[str] = []
        width = max(len(name) for name in snap)
        for name in sorted(snap):
            entry = snap[name]
            kind = entry.get("type", "?")
            if kind == "timer":
                count = int(entry.get("count", 0))
                total = float(entry.get("total_s", 0.0))
                mean_ms = 1e3 * total / count if count else 0.0
                value = f"{total:.4f}s over {count} calls ({mean_ms:.3f} ms/call)"
            elif kind == "histogram":
                scratch = Histogram()
                try:
                    scratch.absorb_entry(entry)
                except (TypeError, ValueError):
                    value = "(malformed histogram)"
                else:
                    value = (
                        f"{scratch.sum_s:.4f}s over {scratch.count} calls "
                        f"(p50 {1e3 * scratch.quantile(0.5):.3f} ms, "
                        f"p99 {1e3 * scratch.quantile(0.99):.3f} ms)"
                    )
            else:
                value = f"{entry.get('value', 0)}"
            lines.append(f"{name:<{width}}  {kind:<7}  {value}")
        return "\n".join(lines)


# -- the process-wide registry ------------------------------------------------

_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide default registry instrumented code publishes to."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process-wide registry (test isolation, CLI startup)."""
    _REGISTRY.reset()
