"""Process-wide registry of named counters, gauges, and timers.

Instrumented code publishes what it is doing under stable dotted names —
``cache.schedules.hits``, ``engine.sweeps``, ``engine.elapsed_s`` — and
operators read the aggregate through :meth:`MetricsRegistry.snapshot`
(machine-readable) or :meth:`MetricsRegistry.render` (a table, surfaced
by the ``repro stats`` CLI command).

The registry is per *process*.  The sweep engine folds its worker
processes' cache/stage counters into the parent's ``engine.*`` metrics
via :class:`repro.accel.sweep.SweepStats`, so the parent snapshot covers
the whole run; the ``cache.*`` families count only the calling process's
own cache traffic (see METHODOLOGY §10).

Snapshots are plain dicts, so they can be persisted as JSON and merged
with :meth:`MetricsRegistry.absorb` (counters and timers add, gauges
keep the absorbed value).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "metrics",
    "reset_metrics",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        self.value += int(amount)
        return self.value


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value


class Timer:
    """Accumulated duration with an observation count."""

    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += float(seconds)

    def time(self) -> "_TimerContext":
        """Context manager observing the duration of its body."""
        return _TimerContext(self)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> Timer:
        try:
            return self._timers[name]
        except KeyError:
            with self._lock:
                return self._timers.setdefault(name, Timer())

    def reset(self) -> None:
        """Drop every instrument (tests, or a fresh CLI invocation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view: ``name -> {"type", "value", ...}``, JSON-safe."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for name, counter in self._counters.items():
                out[name] = {"type": "counter", "value": counter.value}
            for name, gauge in self._gauges.items():
                out[name] = {"type": "gauge", "value": gauge.value}
            for name, timer in self._timers.items():
                out[name] = {
                    "type": "timer",
                    "count": timer.count,
                    "total_s": timer.total_s,
                }
        return out

    def absorb(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Merge a :meth:`snapshot` (counters/timers add, gauges overwrite).

        Tolerant of snapshots written by other library versions: entries
        with an unknown metric kind, a non-dict shape, or non-numeric
        fields are skipped — counted in the ``metrics.absorb.skipped``
        counter and reported once per call as a structured warning — so
        old persisted ledgers stay readable instead of raising.
        """
        skipped: List[str] = []
        for name, entry in snapshot.items():
            kind = entry.get("type") if isinstance(entry, dict) else None
            try:
                if kind == "counter":
                    self.counter(name).inc(int(entry.get("value", 0)))
                elif kind == "gauge":
                    self.gauge(name).set(float(entry.get("value", 0.0)))
                elif kind == "timer":
                    count = int(entry.get("count", 0))
                    total_s = float(entry.get("total_s", 0.0))
                    timer = self.timer(name)
                    timer.count += count
                    timer.total_s += total_s
                else:
                    skipped.append(name)
            except (TypeError, ValueError):
                skipped.append(name)
        if skipped:
            from repro.obs.log import get_logger, kv

            self.counter("metrics.absorb.skipped").inc(len(skipped))
            get_logger("obs.metrics").warning(
                "metrics.absorb.skipped %s",
                kv(count=len(skipped), names=",".join(sorted(skipped)[:8])),
            )

    def render(self, snapshot: Optional[Dict[str, Dict[str, object]]] = None) -> str:
        """Human-readable table of *snapshot* (default: the live registry)."""
        snap = snapshot if snapshot is not None else self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        lines: List[str] = []
        width = max(len(name) for name in snap)
        for name in sorted(snap):
            entry = snap[name]
            kind = entry.get("type", "?")
            if kind == "timer":
                count = int(entry.get("count", 0))
                total = float(entry.get("total_s", 0.0))
                mean_ms = 1e3 * total / count if count else 0.0
                value = f"{total:.4f}s over {count} calls ({mean_ms:.3f} ms/call)"
            else:
                value = f"{entry.get('value', 0)}"
            lines.append(f"{name:<{width}}  {kind:<7}  {value}")
        return "\n".join(lines)


# -- the process-wide registry ------------------------------------------------

_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide default registry instrumented code publishes to."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process-wide registry (test isolation, CLI startup)."""
    _REGISTRY.reset()
