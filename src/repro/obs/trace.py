"""Nested span tracing with Chrome trace-event export.

A :class:`Tracer` records :class:`Span` rows — name, monotonic start time,
duration, process id, thread id, nesting depth, and a small attribute
dict.  Spans are opened through the module-level :func:`span` context
manager, which is a shared no-op object while no tracer is installed, so
instrumented hot loops (one span per design point) cost almost nothing in
ordinary runs.

Timestamps come from :func:`time.monotonic`.  On Linux that is
``CLOCK_MONOTONIC``, which is machine-wide, so spans recorded inside the
engine's worker processes line up with the parent's on a shared timeline;
the engine ships each chunk's finished spans back with the chunk result
and the parent :meth:`Tracer.absorb`\\ s them.

:meth:`Tracer.export_chrome` writes the Chrome trace-event format
(``{"traceEvents": [...]}``, one complete ``"ph": "X"`` event per span,
microsecond units) understood by Perfetto and ``chrome://tracing``.

Request tracing (METHODOLOGY §15) rides on top: :func:`trace_scope`
binds a trace id in a :class:`contextvars.ContextVar`, every span
finished inside the scope is stamped with it, and
:meth:`Tracer.take` pulls one trace's spans back out so the serve layer
can ship them across worker processes and stitch a multi-hop request
into a single timeline.
"""

from __future__ import annotations

import contextvars
import json
import os
import re
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "current_trace_id",
    "get_tracer",
    "new_trace_id",
    "parse_traceparent",
    "set_tracer",
    "span",
    "trace_id_from_headers",
    "trace_scope",
]

AttrValue = Union[str, int, float, bool]


@dataclass(frozen=True)
class Span:
    """One finished span: a named interval on a (pid, tid) track.

    ``start_s`` is :func:`time.monotonic` seconds; ``depth`` is the
    nesting level within its thread at the time the span opened (0 for a
    top-level span).  Instances are plain picklable data so worker
    processes can ship them back to the parent.
    """

    name: str
    start_s: float
    duration_s: float
    pid: int
    tid: int
    depth: int
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    trace_id: Optional[str] = None

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def contains(self, other: "Span") -> bool:
        """Whether *other* lies within this span's interval (same track)."""
        return (
            self.pid == other.pid
            and self.tid == other.tid
            and self.start_s <= other.start_s
            and other.end_s <= self.end_s + 1e-9
        )


class _ActiveSpan:
    """Context manager recording one span on *tracer*."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, AttrValue]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._stack().append(self._name)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self._start
        stack = self._tracer._stack()
        stack.pop()
        self._tracer._finish(
            Span(
                name=self._name,
                start_s=self._start,
                duration_s=duration,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=len(stack),
                attrs=self._attrs,
                trace_id=current_trace_id(),
            )
        )
        return False


class _NoopSpan:
    """Shared, stateless stand-in used while no tracer is installed."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


# -- trace ids ----------------------------------------------------------------
#
# A trace id names one end-to-end request across processes.  The serve
# layer honors an incoming W3C ``traceparent`` header (or a bare
# ``X-Trace-Id``), mints an id otherwise, and binds it here so every span
# finished while handling the request — including inside executor threads,
# provided the caller copies the context — carries the id.

_TRACE_ID: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_trace_id", default=None
)

_TRACEPARENT_RE = re.compile(
    r"^[0-9a-f]{2}-([0-9a-f]{32})-[0-9a-f]{16}-[0-9a-f]{2}$"
)
_TRACE_ID_RE = re.compile(r"^[0-9a-zA-Z_.-]{1,64}$")


def new_trace_id() -> str:
    """Mint a 32-hex trace id (the W3C trace-id width)."""
    return uuid.uuid4().hex


def current_trace_id() -> Optional[str]:
    """The trace id bound in this context, or ``None`` outside a request."""
    return _TRACE_ID.get()


def parse_traceparent(value: str) -> Optional[str]:
    """The 32-hex trace-id field of a W3C ``traceparent`` header, if valid."""
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if match is None:
        return None
    trace_id = match.group(1)
    return None if trace_id == "0" * 32 else trace_id


def trace_id_from_headers(headers: Dict[str, str]) -> Optional[str]:
    """Extract a trace id from lower-cased *headers*, if one was sent.

    ``traceparent`` wins over ``x-trace-id``; a malformed value is treated
    as absent (the caller mints a fresh id) rather than rejected.
    """
    parent = headers.get("traceparent")
    if parent:
        parsed = parse_traceparent(parent)
        if parsed:
            return parsed
    bare = headers.get("x-trace-id", "").strip()
    if bare and _TRACE_ID_RE.match(bare):
        return bare
    return None


class trace_scope:
    """Bind *trace_id* for the dynamic extent of a ``with`` body.

    Re-entrant and exception-safe; ``trace_scope(None)`` explicitly
    clears the binding (a background worker starting unrelated work).
    """

    __slots__ = ("_trace_id", "_token")

    def __init__(self, trace_id: Optional[str]):
        self._trace_id = trace_id
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Optional[str]:
        self._token = _TRACE_ID.set(self._trace_id)
        return self._trace_id

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _TRACE_ID.reset(self._token)
            self._token = None
        return False


class Tracer:
    """Collects finished spans; safe for concurrent threads.

    One tracer lives in the parent process (installed by the CLI when
    ``--profile`` or ``--trace-out`` is given, or by a long-running
    server at startup); each worker process installs its own and the
    engine merges the workers' spans back with :meth:`absorb`.

    ``max_spans`` bounds the buffer for long-running servers: once full,
    the oldest spans are evicted.  The default (``None``) keeps every
    span, which is what one-shot CLI profiling wants.
    """

    def __init__(self, max_spans: Optional[int] = None) -> None:
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------------

    def span(self, name: str, **attrs: AttrValue) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("schedule", partition=4):``."""
        return _ActiveSpan(self, name, attrs)

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, finished: Span) -> None:
        with self._lock:
            self._spans.append(finished)

    def absorb(self, spans: Iterable[Span]) -> None:
        """Merge spans recorded elsewhere (worker processes) into this trace."""
        with self._lock:
            self._spans.extend(spans)

    def drain(self) -> List[Span]:
        """Remove and return every finished span (worker → parent shipping)."""
        with self._lock:
            drained = list(self._spans)
            self._spans.clear()
        return drained

    def take(self, trace_id: str) -> List[Span]:
        """Remove and return the spans stamped with *trace_id*.

        The serve layer calls this at the end of each request to move the
        request's spans into its flight recorder, so the shared ring stays
        small and a trace survives even after the tracer evicts.
        """
        with self._lock:
            taken = [s for s in self._spans if s.trace_id == trace_id]
            if taken:
                kept = [s for s in self._spans if s.trace_id != trace_id]
                self._spans.clear()
                self._spans.extend(kept)
        return taken

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- reporting ------------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, object]]:
        """Spans as Chrome trace-event ``"ph": "X"`` complete events.

        Timestamps are rebased to the earliest span so the trace starts
        near zero, and converted to the format's microsecond unit.
        """
        spans = self.spans
        if not spans:
            return []
        epoch = min(s.start_s for s in spans)
        events: List[Dict[str, object]] = []
        for s in sorted(spans, key=lambda s: s.start_s):
            args = dict(s.attrs)
            if s.trace_id:
                args["trace_id"] = s.trace_id
            events.append(
                {
                    "name": s.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (s.start_s - epoch) * 1e6,
                    "dur": s.duration_s * 1e6,
                    "pid": s.pid,
                    "tid": s.tid,
                    "args": args,
                }
            )
        return events

    def export_chrome(self, path: Union[str, Path]) -> Path:
        """Write the trace as Chrome trace-event JSON and return the path."""
        # Imported lazily: provenance imports this module at load time.
        from repro.provenance.manifest import SCHEMA_VERSION

        path = Path(path)
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs.trace",
                "schema_version": SCHEMA_VERSION,
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path

    def stage_rows(self) -> List[Dict[str, object]]:
        """Per-stage aggregation: one row per span name, longest first.

        The rows behind the CLI ``--profile`` table: call count, total
        and mean time, and each stage's share of the summed span time
        (shares can exceed 100% of wall time when workers overlap).
        """
        totals: Dict[str, List[float]] = {}
        for s in self.spans:
            bucket = totals.setdefault(s.name, [0, 0.0])
            bucket[0] += 1
            bucket[1] += s.duration_s
        grand = sum(t for _, t in totals.values()) or 1.0
        rows = []
        for name, (count, total) in sorted(
            totals.items(), key=lambda kv: kv[1][1], reverse=True
        ):
            rows.append(
                {
                    "stage": name,
                    "calls": int(count),
                    "total_s": f"{total:.4f}",
                    "mean_ms": f"{1e3 * total / count:.3f}",
                    "share": f"{100.0 * total / grand:.1f}%",
                }
            )
        return rows


# -- the process-wide tracer --------------------------------------------------

_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None`` remove) the process-wide tracer."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attrs: AttrValue):
    """Open *name* on the installed tracer; no-op when tracing is off."""
    tracer = _TRACER
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)
