"""Run-ledger provenance: manifests, golden-number drift, run reports.

The paper's conclusions are a chain of fitted numbers, so a reproduction
is only trustworthy if every emitted artifact can say exactly which code,
config, inputs, and timings produced it — and whether those numbers moved
since the last run.  Three cooperating modules:

* :mod:`repro.provenance.manifest` — a versioned :class:`RunManifest`
  (git SHA + dirty flag, interpreter/numpy/platform versions, CLI argv,
  model-parameter and input-datasheet content hashes, wall-clock, the
  observability layer's metrics snapshot and per-stage timer table)
  stamped into every exported artifact and persisted by the append-only
  :class:`RunLedger` as ``runs/<run_id>/manifest.json``.
* :mod:`repro.provenance.drift` — diffs two runs' golden numbers (the
  Table III-V and Fig 3/13-16 scalars) under per-quantity tolerances and
  threshold-flags perf regressions, producing a typed
  :class:`DriftReport`; refuses runs recorded under a different
  :data:`SCHEMA_VERSION` with a ``ValidationError``.
* :mod:`repro.provenance.report` — renders a single-run summary or a
  two-run drift report as markdown/HTML (the ``repro report`` command).
"""

from repro.provenance.drift import (
    DriftReport,
    PerfFlag,
    QuantityDrift,
    Tolerance,
    compare_bench_entries,
    compare_runs,
    golden_numbers,
)
from repro.provenance.manifest import (
    SCHEMA_VERSION,
    RunLedger,
    RunManifest,
    capture,
    default_runs_dir,
)
from repro.provenance.report import (
    format_drift_report,
    format_run_report,
    render_html,
    render_markdown,
)

__all__ = [
    "SCHEMA_VERSION",
    "DriftReport",
    "PerfFlag",
    "QuantityDrift",
    "RunLedger",
    "RunManifest",
    "Tolerance",
    "capture",
    "compare_bench_entries",
    "compare_runs",
    "default_runs_dir",
    "format_drift_report",
    "format_run_report",
    "golden_numbers",
    "render_html",
    "render_markdown",
]
