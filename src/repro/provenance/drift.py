"""Cross-run comparison: golden-number drift and perf regressions.

Two runs of the same configuration must reproduce the same numbers — the
paper's argument is a chain of fitted scalars, so any silent change to a
Table III-V row or a Fig 3/13-16 quantity between runs is a correctness
event, not noise.  This module diffs two :class:`RunManifest`\\ s:

* **Golden numbers** — every numeric leaf of the golden artifacts
  (flattened to dotted-path names like ``fig15_16.3.projected_log``) is
  compared under per-quantity absolute/relative tolerances.  Exceeding a
  tolerance, or a quantity appearing/disappearing, is *drift*.
* **Perf** — the engine statistics recorded in each manifest (and, for
  benchmark history, ``BENCH_*.json`` entries) are compared under
  threshold-based regression flags: wall-clock blowups and persistent
  cache hit-rate drops are flagged but kept separate from drift, because
  timing varies across machines while golden numbers must not.

Runs recorded under a different :data:`SCHEMA_VERSION` are refused with a
:class:`ValidationError` — an incomparable layout must never be reported
as "zero drift".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.provenance.manifest import SCHEMA_VERSION, RunManifest

__all__ = [
    "DEFAULT_TOLERANCE",
    "GOLDEN_ARTIFACTS",
    "GOLDEN_PREFIXES",
    "is_golden_artifact",
    "DriftReport",
    "PerfFlag",
    "QuantityDrift",
    "Tolerance",
    "compare_bench_entries",
    "compare_golden",
    "compare_perf",
    "compare_runs",
    "flatten_scalars",
    "golden_numbers",
    "tolerance_for",
]

#: Artifacts whose scalars form the golden-number set (the ISSUE's
#: Table III-V and Fig 3/13-16 chain of fitted numbers).
GOLDEN_ARTIFACTS: Tuple[str, ...] = (
    "table3",
    "table4",
    "table5",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig13",
    "fig14",
    "fig15_16",
)

#: Per-technology artifact families (dynamic names — one per registered
#: backend) whose scalars also join the golden set, so backend outputs
#: are drift-pinned exactly like the base ``cmos`` numbers.
GOLDEN_PREFIXES: Tuple[str, ...] = (
    "fig15_16_",
    "table5_",
    "csr_",
    "tech_",
)


def is_golden_artifact(name: str) -> bool:
    """Whether *name*'s scalars belong in the golden-number set."""
    return name in GOLDEN_ARTIFACTS or name.startswith(GOLDEN_PREFIXES)


@dataclass(frozen=True)
class Tolerance:
    """Per-quantity drift tolerance: pass if |delta| <= abs OR rel."""

    rel: float = 1e-9
    abs: float = 1e-12

    def allows(self, a: float, b: float) -> bool:
        if a == b:  # covers +-inf equality and exact zeros
            return True
        if math.isnan(a) and math.isnan(b):
            return True
        if not (math.isfinite(a) and math.isfinite(b)):
            return False
        return math.isclose(a, b, rel_tol=self.rel, abs_tol=self.abs)


#: The default: golden numbers are deterministic float arithmetic, so two
#: runs of the same code/config/inputs must agree to rounding.
DEFAULT_TOLERANCE = Tolerance()

#: Longest-prefix tolerance overrides (quantity name -> tolerance).
TOLERANCES: Dict[str, Tolerance] = {}


def tolerance_for(name: str) -> Tolerance:
    """The override with the longest matching prefix, else the default."""
    best: Optional[Tuple[int, Tolerance]] = None
    for prefix, tolerance in TOLERANCES.items():
        if name.startswith(prefix) and (best is None or len(prefix) > best[0]):
            best = (len(prefix), tolerance)
    return best[1] if best is not None else DEFAULT_TOLERANCE


# -- golden-number extraction -------------------------------------------------


def flatten_scalars(payload: object, prefix: str = "") -> Dict[str, float]:
    """Every numeric leaf of a JSON-able payload, keyed by dotted path.

    Bools and strings are skipped (they are labels, not quantities); list
    indices become path components, so ordering changes surface as
    added/removed quantities rather than silent value swaps.
    """
    out: Dict[str, float] = {}

    def walk(value: object, path: str) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, dict):
            for key in value:
                walk(value[key], f"{path}.{key}" if path else str(key))
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                walk(item, f"{path}.{index}" if path else str(index))

    walk(payload, prefix)
    return out


def golden_numbers(payloads: Mapping[str, object]) -> Dict[str, float]:
    """Golden scalars of the artifacts present in *payloads*.

    *payloads* maps artifact name (``"fig13"``) to its JSON-able payload;
    artifacts outside :data:`GOLDEN_ARTIFACTS` (or the per-technology
    :data:`GOLDEN_PREFIXES` families) are ignored.
    """
    numbers: Dict[str, float] = {}
    for name in sorted(payloads):
        if is_golden_artifact(name):
            numbers.update(flatten_scalars(payloads[name], name))
    return numbers


# -- typed report -------------------------------------------------------------


@dataclass(frozen=True)
class QuantityDrift:
    """One golden number that moved beyond its tolerance."""

    name: str
    value_a: float
    value_b: float
    tolerance: Tolerance

    @property
    def abs_delta(self) -> float:
        return self.value_b - self.value_a

    @property
    def rel_delta(self) -> float:
        if self.value_a == 0.0:
            return math.inf if self.value_b != 0.0 else 0.0
        return (self.value_b - self.value_a) / abs(self.value_a)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.value_a!r} -> {self.value_b!r} "
            f"(rel {self.rel_delta:+.3g}, tol rel={self.tolerance.rel:g})"
        )


@dataclass(frozen=True)
class PerfFlag:
    """One perf quantity compared across runs; ``regressed`` if flagged."""

    metric: str
    value_a: float
    value_b: float
    threshold: float
    regressed: bool
    detail: str

    def describe(self) -> str:
        status = "REGRESSED" if self.regressed else "ok"
        return f"[{status}] {self.metric}: {self.detail}"


@dataclass(frozen=True)
class DriftReport:
    """Typed outcome of comparing run *a* (baseline) against run *b*."""

    run_a: str
    run_b: str
    compared: int
    drifted: Tuple[QuantityDrift, ...]
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    perf: Tuple[PerfFlag, ...]

    @property
    def clean(self) -> bool:
        """No golden-number drift (perf flags are reported separately)."""
        return not (self.drifted or self.added or self.removed)

    @property
    def perf_regressed(self) -> bool:
        return any(flag.regressed for flag in self.perf)

    def describe(self) -> str:
        if self.clean:
            head = f"zero drift over {self.compared} golden numbers"
        else:
            head = (
                f"DRIFT: {len(self.drifted)} changed, {len(self.added)} added, "
                f"{len(self.removed)} removed (of {self.compared} compared)"
            )
        if self.perf:
            regressed = sum(1 for flag in self.perf if flag.regressed)
            head += f"; perf: {regressed}/{len(self.perf)} flags regressed"
        return head


# -- comparators --------------------------------------------------------------


def compare_golden(
    a: Mapping[str, float], b: Mapping[str, float]
) -> Tuple[int, List[QuantityDrift], List[str], List[str]]:
    """Diff two golden-number maps under the per-quantity tolerances."""
    shared = sorted(set(a) & set(b))
    drifted = []
    for name in shared:
        tolerance = tolerance_for(name)
        if not tolerance.allows(float(a[name]), float(b[name])):
            drifted.append(
                QuantityDrift(name, float(a[name]), float(b[name]), tolerance)
            )
    added = sorted(set(b) - set(a))
    removed = sorted(set(a) - set(b))
    return len(shared), drifted, added, removed


#: A run slower than baseline by more than this fraction is flagged.
ELAPSED_REGRESSION_THRESHOLD = 0.5

#: A persistent-cache hit rate lower than baseline by more than this
#: absolute drop is flagged.
HIT_RATE_DROP_THRESHOLD = 0.10


def _perf_fields(stats: Mapping[str, object]) -> Tuple[float, Optional[float]]:
    elapsed = float(stats.get("elapsed_s", 0.0) or 0.0)
    hits = float(stats.get("cache_hits", 0) or 0)
    misses = float(stats.get("cache_misses", 0) or 0)
    looked = hits + misses
    return elapsed, (hits / looked if looked else None)


def _compare_stats(
    stats_a: Mapping[str, object],
    stats_b: Mapping[str, object],
    elapsed_threshold: float,
    hit_rate_drop: float,
) -> List[PerfFlag]:
    flags: List[PerfFlag] = []
    elapsed_a, rate_a = _perf_fields(stats_a)
    elapsed_b, rate_b = _perf_fields(stats_b)
    if elapsed_a > 0.0 and elapsed_b > 0.0:
        ratio = elapsed_b / elapsed_a
        flags.append(
            PerfFlag(
                metric="elapsed_s",
                value_a=elapsed_a,
                value_b=elapsed_b,
                threshold=elapsed_threshold,
                regressed=ratio > 1.0 + elapsed_threshold,
                detail=(
                    f"{elapsed_a:.3f}s -> {elapsed_b:.3f}s "
                    f"({ratio:.2f}x, threshold {1.0 + elapsed_threshold:.2f}x)"
                ),
            )
        )
    if rate_a is not None and rate_b is not None:
        flags.append(
            PerfFlag(
                metric="cache_hit_rate",
                value_a=rate_a,
                value_b=rate_b,
                threshold=hit_rate_drop,
                regressed=(rate_a - rate_b) > hit_rate_drop,
                detail=(
                    f"{rate_a:.1%} -> {rate_b:.1%} "
                    f"(drop threshold {hit_rate_drop:.0%})"
                ),
            )
        )
    return flags


def compare_perf(
    manifest_a: RunManifest,
    manifest_b: RunManifest,
    elapsed_threshold: float = ELAPSED_REGRESSION_THRESHOLD,
    hit_rate_drop: float = HIT_RATE_DROP_THRESHOLD,
) -> List[PerfFlag]:
    """Threshold-compare the engine stats recorded in two manifests."""
    stats_a = manifest_a.engine.get("stats") if manifest_a.engine else None
    stats_b = manifest_b.engine.get("stats") if manifest_b.engine else None
    if not isinstance(stats_a, dict) or not isinstance(stats_b, dict):
        return []
    return _compare_stats(stats_a, stats_b, elapsed_threshold, hit_rate_drop)


def _require_same_schema(version_a: object, version_b: object, what: str) -> None:
    if version_a != SCHEMA_VERSION or version_b != SCHEMA_VERSION:
        raise ValidationError(
            f"cannot compare {what}: schema_version {version_a!r} vs "
            f"{version_b!r}; this build compares version {SCHEMA_VERSION}"
        )


def compare_runs(
    manifest_a: RunManifest,
    manifest_b: RunManifest,
    elapsed_threshold: float = ELAPSED_REGRESSION_THRESHOLD,
    hit_rate_drop: float = HIT_RATE_DROP_THRESHOLD,
) -> DriftReport:
    """Full drift report of run *b* against baseline run *a*.

    Raises :class:`ValidationError` when either run was recorded under a
    different provenance schema version.
    """
    _require_same_schema(
        manifest_a.schema_version, manifest_b.schema_version, "runs"
    )
    compared, drifted, added, removed = compare_golden(
        manifest_a.golden, manifest_b.golden
    )
    perf = compare_perf(
        manifest_a, manifest_b, elapsed_threshold, hit_rate_drop
    )
    return DriftReport(
        run_a=manifest_a.run_id,
        run_b=manifest_b.run_id,
        compared=compared,
        drifted=tuple(drifted),
        added=tuple(added),
        removed=tuple(removed),
        perf=tuple(perf),
    )


def compare_bench_entries(
    entry_a: Mapping[str, object],
    entry_b: Mapping[str, object],
    elapsed_threshold: float = ELAPSED_REGRESSION_THRESHOLD,
    hit_rate_drop: float = HIT_RATE_DROP_THRESHOLD,
) -> List[PerfFlag]:
    """Threshold-compare two ``BENCH_*.json`` perf entries.

    Entries written before the provenance subsystem carry no
    ``schema_version`` and are refused (:class:`ValidationError`) rather
    than mis-read.
    """
    _require_same_schema(
        entry_a.get("schema_version"), entry_b.get("schema_version"),
        "bench entries",
    )
    stats_a = entry_a.get("stats")
    stats_b = entry_b.get("stats")
    if not isinstance(stats_a, dict) or not isinstance(stats_b, dict):
        raise ValidationError("bench entries carry no 'stats' block")
    flags = _compare_stats(stats_a, stats_b, elapsed_threshold, hit_rate_drop)
    hits_a = float(stats_a.get("memo_hits", 0) or 0)
    misses_a = float(stats_a.get("memo_misses", 0) or 0)
    hits_b = float(stats_b.get("memo_hits", 0) or 0)
    misses_b = float(stats_b.get("memo_misses", 0) or 0)
    if hits_a + misses_a and hits_b + misses_b:
        rate_a = hits_a / (hits_a + misses_a)
        rate_b = hits_b / (hits_b + misses_b)
        flags.append(
            PerfFlag(
                metric="memo_hit_rate",
                value_a=rate_a,
                value_b=rate_b,
                threshold=hit_rate_drop,
                regressed=(rate_a - rate_b) > hit_rate_drop,
                detail=(
                    f"{rate_a:.1%} -> {rate_b:.1%} "
                    f"(drop threshold {hit_rate_drop:.0%})"
                ),
            )
        )
    return flags
