"""Run manifests and the append-only run ledger.

A :class:`RunManifest` answers "which code, config, inputs, and timings
produced this artifact?" for one CLI/benchmark invocation: git SHA and
dirty flag, interpreter/numpy/platform versions, the CLI argv, content
hashes of the model configuration and every input datasheet population,
wall-clock, the metrics snapshot and per-stage timer table from the
observability layer, engine/cache statistics, golden-number scalars, and
(for ``repro check``) per-check outcomes.

Manifests are stamped into every exported artifact JSON (see
:mod:`repro.reporting.export`) and persisted by the :class:`RunLedger` as
``<runs-dir>/<run_id>/manifest.json``.  The ledger is append-only across
runs: a run may re-record *its own* manifest as it learns more (the CLI
records once when artifacts are written and again with the final metrics
snapshot), but never touches another run's entry; :meth:`RunLedger.prune`
is the only destructive operation.

The runs directory resolves, in order: an explicit argument, the
``REPRO_RUNS_DIR`` environment variable, then ``<default-cache-dir>/runs``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import shutil
import subprocess
import sys
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ValidationError
from repro.obs.log import get_logger, kv

logger = get_logger("provenance.manifest")

__all__ = [
    "ENV_RUNS_DIR",
    "SCHEMA_VERSION",
    "RunLedger",
    "RunManifest",
    "capture",
    "default_runs_dir",
    "git_state",
    "input_fingerprints",
    "model_fingerprint",
]

#: Provenance schema version; stamped into manifests, exported artifacts,
#: Chrome traces, metrics snapshots, and BENCH entries.  Bump on any
#: incompatible change so :mod:`repro.provenance.drift` can refuse to
#: compare runs recorded by a different layout.
SCHEMA_VERSION: int = 1

#: Environment variable overriding the default runs (ledger) directory.
ENV_RUNS_DIR: str = "REPRO_RUNS_DIR"

PathLike = Union[str, Path]


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` if set, else ``<default-cache-dir>/runs``."""
    env = os.environ.get(ENV_RUNS_DIR)
    if env:
        return Path(env).expanduser()
    from repro.accel.cache import default_cache_dir

    return default_cache_dir() / "runs"


# -- content fingerprints -----------------------------------------------------


def _digest(parts: Sequence[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return h.hexdigest()


def git_state(cwd: Optional[PathLike] = None) -> Dict[str, object]:
    """``{"sha": ..., "dirty": ...}`` of the working tree, best-effort.

    Outside a git checkout (or without a ``git`` binary) both fields are
    ``None`` — provenance capture must never fail the run it describes.
    """

    def run(*argv: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                argv,
                cwd=str(cwd) if cwd is not None else None,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        return proc.stdout if proc.returncode == 0 else None

    sha = run("git", "rev-parse", "HEAD")
    if sha is None:
        return {"sha": None, "dirty": None}
    status = run("git", "status", "--porcelain")
    return {
        "sha": sha.strip(),
        "dirty": None if status is None else bool(status.strip()),
    }


def model_fingerprint(model=None) -> str:
    """Stable content hash of a :class:`CmosPotentialModel`'s parameters.

    Covers the density power law, the per-era TDP laws, and the device
    scaling table — everything that determines the model's numbers — so
    two runs with the same fingerprint used the same model configuration.
    """
    from repro.cmos.model import CmosPotentialModel

    m = model if model is not None else CmosPotentialModel.paper()
    parts: List[str] = [
        f"density:{m.density_fit.coefficient!r}:{m.density_fit.exponent!r}"
    ]
    for fit in m.tdp_model.fits:
        parts.append(f"tdp:{fit.era.name}:{fit.coefficient!r}:{fit.exponent!r}")
    table = m.scaling
    for node in sorted(table.nodes):
        s = table.scaling(node)
        parts.append(
            f"scaling:{node!r}:{s.vdd!r}:{s.frequency!r}:{s.capacitance!r}"
        )
    return _digest(parts)


def _database_fingerprint() -> str:
    from repro.datasheets.reference import reference_database

    parts = []
    for spec in reference_database():
        parts.append(
            f"{spec.name}|{spec.category.value}|{spec.node_nm!r}"
            f"|{spec.frequency_mhz!r}|{spec.tdp_w!r}|{spec.area_mm2!r}"
            f"|{spec.transistors!r}|{spec.year!r}"
        )
    return _digest(parts)


def input_fingerprints() -> Dict[str, str]:
    """Content hash per input dataset: the fit population and each study."""
    from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders

    hashes = {"reference_database": _database_fingerprint()}
    for study in (
        video_decoders.study(),
        gpu_graphics.study(),
        fpga_cnn.study("alexnet"),
        bitcoin.study(),
    ):
        hashes[f"study:{study.name}"] = study.fingerprint()
    return hashes


# -- the manifest -------------------------------------------------------------


@dataclass
class RunManifest:
    """Provenance record of one run; persisted as ``manifest.json``.

    Identity fields (``run_id`` .. ``input_hashes``) are filled by
    :func:`capture` when the run starts; the observability fields
    (``metrics``, ``stages``, ``engine``), the golden-number map, the
    check outcomes, and ``elapsed_s`` accumulate as the run progresses.
    """

    run_id: str
    schema_version: int
    command: str
    argv: List[str]
    created_at: str
    created_unix: float
    git: Dict[str, object]
    environment: Dict[str, str]
    config_hashes: Dict[str, str]
    input_hashes: Dict[str, str]
    elapsed_s: float = 0.0
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    stages: List[Dict[str, object]] = field(default_factory=list)
    engine: Dict[str, object] = field(default_factory=dict)
    golden: Dict[str, float] = field(default_factory=dict)
    checks: List[Dict[str, object]] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunManifest":
        """Validated load; raises :class:`ValidationError` when unreadable.

        A missing or different ``schema_version`` means the run was
        recorded under an incompatible layout — refused rather than
        half-parsed, so drift comparisons never silently mix schemas.
        """
        if not isinstance(payload, dict):
            raise ValidationError(
                f"manifest payload must be an object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValidationError(
                f"manifest {payload.get('run_id', '?')!r} has schema_version "
                f"{version!r}; this build reads version {SCHEMA_VERSION}"
            )
        required = (
            "run_id", "command", "argv", "created_at", "created_unix",
            "git", "environment", "config_hashes", "input_hashes",
        )
        missing = [name for name in required if name not in payload]
        if missing:
            raise ValidationError(
                f"manifest {payload.get('run_id', '?')!r} is missing "
                f"required fields {missing}"
            )
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in payload.items() if k in known})

    def artifact_block(self) -> Dict[str, object]:
        """The compact provenance stamp embedded in exported artifacts.

        Everything needed to join an artifact back to its ledger entry and
        to audit what produced it: identity, git state, config/input
        hashes, and the metrics snapshot at write time.  The per-stage
        table and golden map stay in the ledger copy only.
        """
        return {
            "run_id": self.run_id,
            "schema_version": self.schema_version,
            "command": self.command,
            "argv": list(self.argv),
            "created_at": self.created_at,
            "git": dict(self.git),
            "environment": dict(self.environment),
            "config_hashes": dict(self.config_hashes),
            "input_hashes": dict(self.input_hashes),
            "metrics": self.metrics,
        }


def _mint_run_id(now: float) -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(now))
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def capture(
    command: str,
    argv: Optional[Sequence[str]] = None,
    model=None,
    tech: Optional[str] = None,
) -> RunManifest:
    """Start a manifest for *command*: mint a run id, record identity.

    *model* is the :class:`CmosPotentialModel` the run evaluates with
    (default: the paper model) — only its parameter hash is recorded.

    *tech* is the technology backend the run evaluates under (default
    ``cmos``); the backend's name and its parameter content-hash are
    recorded in ``config_hashes`` so two runs can be compared at the
    backend-parameter level, not just by name.
    """
    tech_name = tech if tech is not None else "cmos"
    try:
        from repro.tech import get_backend

        tech_hash = get_backend(tech_name).param_hash()
    except Exception:
        # An unknown backend name should fail at evaluation time with a
        # real error listing, not while stamping provenance.
        tech_hash = "unavailable"
    now = time.time()
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return RunManifest(
        run_id=_mint_run_id(now),
        schema_version=SCHEMA_VERSION,
        command=command,
        argv=list(argv) if argv is not None else list(sys.argv[1:]),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
        created_unix=now,
        git=git_state(),
        environment={
            "python": platform.python_version(),
            "numpy": numpy_version,
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        config_hashes={
            "cmos_model": model_fingerprint(model),
            "tech_backend": tech_name,
            "tech_params": tech_hash,
        },
        input_hashes=input_fingerprints(),
    )


# -- the ledger ---------------------------------------------------------------


class RunLedger:
    """Append-only store of run manifests: ``<root>/<run_id>/manifest.json``.

    ``record`` writes (or re-writes, for the *same* run id) one entry;
    ``list``/``get`` read entries back as :class:`RunManifest`; ``prune``
    deletes the oldest entries beyond a keep count.  Unreadable or
    incompatible entries are skipped by ``list`` (with a warning) and
    raise :class:`ValidationError` from ``get``.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root).expanduser() if root is not None else default_runs_dir()

    def _manifest_path(self, run_id: str) -> Path:
        if not run_id or "/" in run_id or run_id in (".", ".."):
            raise ValidationError(f"invalid run id {run_id!r}")
        return self.root / run_id / "manifest.json"

    def record(self, manifest: RunManifest) -> Path:
        """Persist *manifest*; returns the written path (atomic replace)."""
        path = self._manifest_path(manifest.run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as handle:
            json.dump(manifest.to_dict(), handle, indent=2)
        os.replace(tmp, path)
        logger.info(
            "ledger.recorded %s",
            kv(run_id=manifest.run_id, command=manifest.command, path=str(path)),
        )
        return path

    def get(self, run_id: str) -> RunManifest:
        """Load one run's manifest; :class:`ValidationError` if absent/bad."""
        path = self._manifest_path(run_id)
        if not path.exists():
            raise ValidationError(
                f"no run {run_id!r} in ledger {self.root} "
                f"(known: {', '.join(self.ids()[-5:]) or 'none'})"
            )
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(f"run {run_id!r} is unreadable: {exc}") from exc
        return RunManifest.from_dict(payload)

    def list(self) -> List[RunManifest]:
        """Every readable manifest, oldest first."""
        manifests = []
        if not self.root.is_dir():
            return manifests
        for entry in sorted(self.root.iterdir()):
            if not (entry / "manifest.json").exists():
                continue
            try:
                manifests.append(self.get(entry.name))
            except ValidationError as exc:
                logger.warning("ledger.skipped %s", kv(run_id=entry.name, error=str(exc)))
        manifests.sort(key=lambda m: (m.created_unix, m.run_id))
        return manifests

    def ids(self) -> List[str]:
        """Run ids, oldest first."""
        return [manifest.run_id for manifest in self.list()]

    def latest(self) -> RunManifest:
        """The newest run; :class:`ValidationError` on an empty ledger."""
        manifests = self.list()
        if not manifests:
            raise ValidationError(f"run ledger {self.root} is empty")
        return manifests[-1]

    def prune(self, keep: int) -> List[str]:
        """Delete all but the newest *keep* runs; returns removed ids."""
        if keep < 0:
            raise ValidationError(f"prune keep count must be >= 0, got {keep}")
        manifests = self.list()
        removed = []
        for manifest in manifests[: max(0, len(manifests) - keep)]:
            shutil.rmtree(self.root / manifest.run_id, ignore_errors=True)
            removed.append(manifest.run_id)
        if removed:
            logger.info("ledger.pruned %s", kv(removed=len(removed), kept=keep))
        return removed

    def __len__(self) -> int:
        return len(self.list())

    def __contains__(self, run_id: object) -> bool:
        return (
            isinstance(run_id, str)
            and (self.root / run_id / "manifest.json").exists()
        )
