"""Render run manifests and drift reports as markdown or HTML.

The ``repro report`` CLI command renders either a single run's provenance
summary (identity, environment, hashes, engine stats, per-stage timers,
check outcomes, and a perf-history sparkline over the ledger) or a
two-run :class:`~repro.provenance.drift.DriftReport`.

Both formats are built from one intermediate :class:`Document` — a title
plus :class:`Section`\\ s of prose lines, tables, and preformatted blocks
— so markdown and HTML always carry the same content.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.provenance.drift import DriftReport
from repro.provenance.manifest import RunLedger, RunManifest
from repro.reporting.ascii_plots import sparkline

__all__ = [
    "Document",
    "Section",
    "drift_document",
    "render_html",
    "render_markdown",
    "run_document",
]

Table = Tuple[Sequence[str], Sequence[Sequence[str]]]  # (headers, rows)


@dataclass
class Section:
    """One report section: prose lines, then tables, then pre blocks."""

    title: str
    lines: List[str] = field(default_factory=list)
    tables: List[Table] = field(default_factory=list)
    pre: List[str] = field(default_factory=list)


@dataclass
class Document:
    title: str
    sections: List[Section] = field(default_factory=list)


# -- document construction ----------------------------------------------------


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _identity_section(manifest: RunManifest) -> Section:
    git = manifest.git or {}
    sha = git.get("sha") or "unknown"
    dirty = git.get("dirty")
    dirty_note = " (dirty)" if dirty else ("" if dirty is not None else " (?)")
    section = Section("Run")
    section.lines = [
        f"run id: `{manifest.run_id}`",
        f"command: `{manifest.command}` "
        f"(argv: `{' '.join(manifest.argv) or '-'}`)",
        f"recorded: {manifest.created_at}",
        f"git: `{sha}`{dirty_note}",
        f"elapsed: {manifest.elapsed_s:.3f}s",
    ]
    return section


def _environment_section(manifest: RunManifest) -> Section:
    section = Section("Environment")
    env = manifest.environment or {}
    rows = [[key, str(env[key])] for key in sorted(env)]
    section.tables.append((("field", "value"), rows))
    return section


def _hashes_section(manifest: RunManifest) -> Section:
    section = Section("Configuration & input hashes")
    rows = []
    for name in sorted(manifest.config_hashes):
        rows.append(["config:" + name, manifest.config_hashes[name][:16]])
    for name in sorted(manifest.input_hashes):
        rows.append([name, manifest.input_hashes[name][:16]])
    section.tables.append((("input", "sha256 (prefix)"), rows))
    return section


def _engine_section(manifest: RunManifest) -> Optional[Section]:
    if not manifest.engine:
        return None
    section = Section("Engine")
    stats = manifest.engine.get("stats")
    config = {k: v for k, v in manifest.engine.items() if k != "stats"}
    if config:
        section.lines.append(
            ", ".join(f"{key}={_fmt(config[key])}" for key in sorted(config))
        )
    if isinstance(stats, dict) and stats:
        rows = [[key, _fmt(stats[key])] for key in sorted(stats)]
        section.tables.append((("stat", "value"), rows))
    return section


def _stages_section(manifest: RunManifest) -> Optional[Section]:
    if not manifest.stages:
        return None
    section = Section("Per-stage time")
    headers = ("stage", "calls", "total_s", "mean_ms", "share")
    rows = [
        [str(row.get(column, "")) for column in headers]
        for row in manifest.stages
    ]
    section.tables.append((headers, rows))
    return section


def _checks_section(manifest: RunManifest) -> Optional[Section]:
    if not manifest.checks:
        return None
    section = Section("Check outcomes")
    failed = sum(1 for check in manifest.checks if not check.get("ok"))
    section.lines.append(
        f"{len(manifest.checks) - failed}/{len(manifest.checks)} checks passed"
        + (f", {failed} FAILED" if failed else "")
    )
    rows = [
        [
            str(check.get("subsystem", "?")),
            str(check.get("name", "?")),
            "ok" if check.get("ok") else "FAIL",
            str(check.get("detail", "")),
        ]
        for check in manifest.checks
    ]
    section.tables.append((("subsystem", "check", "status", "detail"), rows))
    return section


def _metrics_section(manifest: RunManifest) -> Optional[Section]:
    if not manifest.metrics:
        return None
    from repro.obs.metrics import MetricsRegistry

    section = Section("Metrics snapshot")
    section.pre.append(MetricsRegistry().render(manifest.metrics))
    return section


def _history_section(
    manifest: RunManifest, ledger: Optional[RunLedger]
) -> Optional[Section]:
    """Perf history across the ledger's runs of the same command."""
    if ledger is None:
        return None
    history = [
        m for m in ledger.list() if m.command == manifest.command and m.elapsed_s
    ]
    if len(history) < 2:
        return None
    values = [m.elapsed_s for m in history]
    section = Section("Perf history")
    section.lines.append(
        f"elapsed_s over {len(values)} `{manifest.command}` runs "
        f"(oldest to newest; min {min(values):.3f}s, max {max(values):.3f}s):"
    )
    section.pre.append(sparkline(values, width=60))
    return section


def run_document(
    manifest: RunManifest, ledger: Optional[RunLedger] = None
) -> Document:
    """Single-run provenance summary as a :class:`Document`."""
    doc = Document(f"Run report: {manifest.run_id}")
    for section in (
        _identity_section(manifest),
        _environment_section(manifest),
        _hashes_section(manifest),
        _engine_section(manifest),
        _stages_section(manifest),
        _checks_section(manifest),
        _metrics_section(manifest),
        _history_section(manifest, ledger),
    ):
        if section is not None:
            doc.sections.append(section)
    if manifest.golden:
        section = Section("Golden numbers")
        section.lines.append(
            f"{len(manifest.golden)} golden scalars captured "
            "(compare two runs with `repro report --compare A B`)"
        )
        doc.sections.append(section)
    return doc


def _provenance_delta(a: RunManifest, b: RunManifest) -> Section:
    section = Section("Provenance delta")
    rows = []
    sha_a = (a.git or {}).get("sha") or "?"
    sha_b = (b.git or {}).get("sha") or "?"
    rows.append(["git sha", str(sha_a)[:12], str(sha_b)[:12]])
    keys = sorted(set(a.config_hashes) | set(b.config_hashes))
    for key in keys:
        rows.append(
            [
                "config:" + key,
                a.config_hashes.get(key, "-")[:12],
                b.config_hashes.get(key, "-")[:12],
            ]
        )
    keys = sorted(set(a.input_hashes) | set(b.input_hashes))
    for key in keys:
        rows.append(
            [key, a.input_hashes.get(key, "-")[:12], b.input_hashes.get(key, "-")[:12]]
        )
    section.tables.append((("field", "run a", "run b"), rows))
    return section


def drift_document(
    report: DriftReport,
    manifest_a: RunManifest,
    manifest_b: RunManifest,
    ledger: Optional[RunLedger] = None,
) -> Document:
    """Two-run drift report as a :class:`Document`."""
    doc = Document(f"Drift report: {report.run_a} vs {report.run_b}")
    head = Section("Summary")
    head.lines = [
        report.describe(),
        f"baseline `{report.run_a}` recorded {manifest_a.created_at}; "
        f"candidate `{report.run_b}` recorded {manifest_b.created_at}",
    ]
    doc.sections.append(head)
    doc.sections.append(_provenance_delta(manifest_a, manifest_b))

    golden = Section("Golden numbers")
    golden.lines.append(
        f"{report.compared} quantities compared; "
        f"{len(report.drifted)} drifted, {len(report.added)} added, "
        f"{len(report.removed)} removed"
    )
    if report.drifted:
        rows = [
            [
                drift.name,
                _fmt(drift.value_a),
                _fmt(drift.value_b),
                f"{drift.rel_delta:+.3g}",
                f"rel={drift.tolerance.rel:g} abs={drift.tolerance.abs:g}",
            ]
            for drift in report.drifted
        ]
        golden.tables.append(
            (("quantity", "run a", "run b", "rel delta", "tolerance"), rows)
        )
    if report.added:
        golden.lines.append("added: " + ", ".join(report.added[:20]))
    if report.removed:
        golden.lines.append("removed: " + ", ".join(report.removed[:20]))
    doc.sections.append(golden)

    if report.perf:
        perf = Section("Perf")
        rows = [
            [
                flag.metric,
                _fmt(flag.value_a),
                _fmt(flag.value_b),
                "REGRESSED" if flag.regressed else "ok",
                flag.detail,
            ]
            for flag in report.perf
        ]
        perf.tables.append(
            (("metric", "run a", "run b", "status", "detail"), rows)
        )
        doc.sections.append(perf)
    history = _history_section(manifest_b, ledger)
    if history is not None:
        doc.sections.append(history)
    return doc


# -- renderers ----------------------------------------------------------------


def _markdown_table(table: Table) -> List[str]:
    headers, rows = table
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def render_markdown(doc: Document) -> str:
    """The document as GitHub-flavoured markdown."""
    out: List[str] = [f"# {doc.title}", ""]
    for section in doc.sections:
        out.append(f"## {section.title}")
        out.append("")
        for line in section.lines:
            out.append(line)
        if section.lines:
            out.append("")
        for table in section.tables:
            out.extend(_markdown_table(table))
            out.append("")
        for block in section.pre:
            out.append("```")
            out.append(block)
            out.append("```")
            out.append("")
    return "\n".join(out).rstrip() + "\n"


_HTML_STYLE = """
body { font-family: sans-serif; margin: 2rem auto; max-width: 60rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #999; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #eee; }
pre { background: #f6f6f6; padding: 0.5rem; overflow-x: auto; }
code { background: #f0f0f0; padding: 0 0.2rem; }
""".strip()


def _html_inline(text: str) -> str:
    """Escape, then restore `code` spans markdown-style."""
    escaped = html.escape(text)
    parts = escaped.split("`")
    for index in range(1, len(parts), 2):
        parts[index] = f"<code>{parts[index]}</code>"
    return "".join(parts)


def render_html(doc: Document) -> str:
    """The document as a small self-contained HTML page."""
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(doc.title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{_html_inline(doc.title)}</h1>",
    ]
    for section in doc.sections:
        out.append(f"<h2>{_html_inline(section.title)}</h2>")
        for line in section.lines:
            out.append(f"<p>{_html_inline(line)}</p>")
        for headers, rows in section.tables:
            out.append("<table><thead><tr>")
            out.extend(f"<th>{html.escape(str(h))}</th>" for h in headers)
            out.append("</tr></thead><tbody>")
            for row in rows:
                out.append(
                    "<tr>"
                    + "".join(f"<td>{html.escape(str(c))}</td>" for c in row)
                    + "</tr>"
                )
            out.append("</tbody></table>")
        for block in section.pre:
            out.append(f"<pre>{html.escape(block)}</pre>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def format_run_report(
    manifest: RunManifest,
    ledger: Optional[RunLedger] = None,
    fmt: str = "md",
) -> str:
    """Render a single-run report in *fmt* (``md`` or ``html``)."""
    doc = run_document(manifest, ledger)
    return _render(doc, fmt)


def format_drift_report(
    report: DriftReport,
    manifest_a: RunManifest,
    manifest_b: RunManifest,
    ledger: Optional[RunLedger] = None,
    fmt: str = "md",
) -> str:
    """Render a two-run drift report in *fmt* (``md`` or ``html``)."""
    doc = drift_document(report, manifest_a, manifest_b, ledger)
    return _render(doc, fmt)


def _render(doc: Document, fmt: str) -> str:
    if fmt == "md":
        return render_markdown(doc)
    if fmt == "html":
        return render_html(doc)
    raise ValueError(f"unknown report format {fmt!r}; known: md, html")


def _summaries(manifests: Sequence[RunManifest]) -> List[Dict[str, object]]:
    """Table rows for the CLI ledger listing (oldest first)."""
    return [
        {
            "run_id": m.run_id,
            "command": m.command,
            "recorded": m.created_at,
            "elapsed_s": f"{m.elapsed_s:.3f}",
            "golden": len(m.golden),
            "checks": len(m.checks),
        }
        for m in manifests
    ]
