"""Lightweight unit helpers.

The library stores all physical quantities as plain floats in a fixed set of
canonical units.  This module documents those units and provides conversion
helpers so that call sites can be explicit about what they pass around:

===============  =====================
Quantity         Canonical unit
===============  =====================
process node     nanometres (nm)
die area         square millimetres
frequency        megahertz (MHz)
power / TDP      watts (W)
energy           nanojoules (nJ)
transistor count absolute count
throughput       operations per second
===============  =====================

Helpers are intentionally trivial; their value is in making conversions
self-describing at the call site (``ghz(1.5)`` rather than ``1.5e3``).
"""

from __future__ import annotations

MILLION = 1e6
BILLION = 1e9


def ghz(value: float) -> float:
    """Convert gigahertz to the canonical frequency unit (MHz)."""
    return value * 1e3


def mhz(value: float) -> float:
    """Identity helper: frequency already in canonical MHz."""
    return float(value)


def khz(value: float) -> float:
    """Convert kilohertz to MHz."""
    return value * 1e-3


def mhz_to_hz(value_mhz: float) -> float:
    """Convert canonical MHz to Hz."""
    return value_mhz * 1e6


def milliwatts(value: float) -> float:
    """Convert milliwatts to canonical watts."""
    return value * 1e-3


def watts(value: float) -> float:
    """Identity helper: power already in canonical watts."""
    return float(value)


def mm2(value: float) -> float:
    """Identity helper: area already in canonical mm^2."""
    return float(value)


def nanojoules(value: float) -> float:
    """Identity helper: energy already in canonical nJ."""
    return float(value)


def picojoules(value: float) -> float:
    """Convert picojoules to canonical nanojoules."""
    return value * 1e-3


def joules_from_nj(value_nj: float) -> float:
    """Convert canonical nanojoules to joules."""
    return value_nj * 1e-9


def giga(value: float) -> float:
    """Scale a value by 1e9 (e.g. GOPS -> OP/s)."""
    return value * BILLION


def mega(value: float) -> float:
    """Scale a value by 1e6 (e.g. MPixels/s -> pixels/s)."""
    return value * MILLION
