"""Report generation: the data series behind every paper table and figure.

Each ``fig*``/``table*`` function returns a plain data structure (dict /
list) holding exactly the series the corresponding paper artifact plots,
plus ``render_*`` helpers that format them as text tables.  The benchmark
harness under ``benchmarks/`` calls these to regenerate the evaluation.
"""

from repro.reporting.figures import (
    fig1_bitcoin_evolution,
    fig3a_device_scaling,
    fig3b_transistor_density,
    fig3c_tdp_budget,
    fig3d_chip_gains,
    fig4_video_decoders,
    fig5_gpu_frame_rates,
    fig6_7_architecture_scaling,
    fig8_fpga_cnn,
    fig9_bitcoin_platforms,
    fig13_stencil_sweep,
    fig14_gain_attribution,
    fig15_16_projections,
)
from repro.reporting.tables import (
    render_rows,
    table1_specialization_concepts,
    table2_concept_limits,
    table3_sweep_parameters,
    table4_applications,
    table5_wall_parameters,
)

__all__ = [
    "fig1_bitcoin_evolution",
    "fig3a_device_scaling",
    "fig3b_transistor_density",
    "fig3c_tdp_budget",
    "fig3d_chip_gains",
    "fig4_video_decoders",
    "fig5_gpu_frame_rates",
    "fig6_7_architecture_scaling",
    "fig8_fpga_cnn",
    "fig9_bitcoin_platforms",
    "fig13_stencil_sweep",
    "fig14_gain_attribution",
    "fig15_16_projections",
    "render_rows",
    "table1_specialization_concepts",
    "table2_concept_limits",
    "table3_sweep_parameters",
    "table4_applications",
    "table5_wall_parameters",
]
