"""ASCII scatter/line plots for terminal figure regeneration.

The benchmark environment has no plotting stack, so the figure data from
:mod:`repro.reporting.figures` is rendered as text: log- or linear-scaled
scatter plots with axes, tick labels, and a marker legend.  Good enough to
eyeball every paper figure's shape straight from the CLI
(``accelerator-wall plot fig9``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

Point = Tuple[float, float]

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"

#: Sparkline glyphs, lowest to highest.
SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line trend of *values* using :data:`SPARK_LEVELS` glyphs.

    Values are min-max scaled; non-finite values render as ``?``.  With
    *width* set, the series is resampled (by striding) to fit.  Used by
    the provenance reports to show per-run perf history inline.
    """
    points = [float(v) for v in values]
    if not points:
        return ""
    if width is not None and width > 0 and len(points) > width:
        step = len(points) / width
        points = [points[int(i * step)] for i in range(width)]
    finite = [v for v in points if math.isfinite(v)]
    if not finite:
        return "?" * len(points)
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    top = len(SPARK_LEVELS) - 1
    out = []
    for value in points:
        if not math.isfinite(value):
            out.append("?")
            continue
        out.append(SPARK_LEVELS[int(round((value - low) / span * top))])
    return "".join(out)


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log axis requires positive values, got {value}")
        return math.log10(value)
    return value


def _format_tick(value: float, log: bool) -> str:
    if log:
        return f"1e{value:.0f}" if value == int(value) else f"1e{value:.1f}"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_scatter(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named point series as an ASCII scatter plot.

    Each series gets the next marker from :data:`MARKERS`; overlapping
    points show the most recently drawn series.  Axes carry min/max tick
    labels (as ``1eN`` on log axes).
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("ascii_scatter needs at least one non-empty series")
    if width < 16 or height < 6:
        raise ValueError("plot area too small (need width>=16, height>=6)")

    transformed: Dict[str, List[Point]] = {
        name: [(_transform(x, log_x), _transform(y, log_y)) for x, y in points]
        for name, points in series.items()
        if points
    }
    xs = [x for points in transformed.values() for x, _ in points]
    ys = [y for points in transformed.values() for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, points) in enumerate(transformed.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in points:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_tick = _format_tick(y_max, log_y)
    bottom_tick = _format_tick(y_min, log_y)
    margin = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    lines.append(f"{y_label:>{margin}}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top_tick:>{margin}}"
        elif row_index == height - 1:
            prefix = f"{bottom_tick:>{margin}}"
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    left = _format_tick(x_min, log_x)
    right = _format_tick(x_max, log_x)
    axis_line = (
        " " * (margin + 1)
        + left
        + " " * max(1, width - len(left) - len(right))
        + right
    )
    lines.append(axis_line)
    lines.append(" " * (margin + 1) + x_label)
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def plot_csr_series(
    series,
    title: str,
    log_y: bool = True,
) -> str:
    """Plot a :class:`~repro.csr.series.CsrSeries`: gain and CSR vs rank."""
    points_gain = [(float(i), p.gain) for i, p in enumerate(series)]
    points_csr = [(float(i), p.csr) for i, p in enumerate(series)]
    return ascii_scatter(
        {"gain": points_gain, "CSR": points_csr},
        log_y=log_y,
        title=title,
        x_label="chip (series order)",
        y_label="x",
    )


def plot_frontier(
    points: Sequence[Point],
    frontier: Sequence[Point],
    title: str,
    log_x: bool = True,
    log_y: bool = True,
) -> str:
    """Plot a gain-vs-physical scatter with its Pareto frontier (Figs 15-16)."""
    return ascii_scatter(
        {"chips": list(points), "frontier": list(frontier)},
        log_x=log_x,
        log_y=log_y,
        title=title,
        x_label="physical capability (x)",
        y_label="gain",
    )


def plot_runtime_power(
    reports,
    title: str = "Fig 13: runtime-power space",
) -> str:
    """Plot sweep results in the Fig 13 runtime-power space (log-log)."""
    by_node: Dict[str, List[Point]] = {}
    for report in reports:
        label = f"{report.design.node_nm:g}nm"
        by_node.setdefault(label, []).append(
            (report.runtime_s * 1e9, report.power_w)
        )
    return ascii_scatter(
        by_node,
        log_x=True,
        log_y=True,
        title=title,
        x_label="runtime [ns]",
        y_label="power [W]",
    )
