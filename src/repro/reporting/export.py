"""Machine-readable export of every regenerated paper artifact.

``export_all`` writes one JSON file per table/figure into a directory, so
plots and downstream analyses can consume the reproduction without
importing the library.

Every artifact file is a provenance-stamped envelope::

    {"schema_version": 1, "manifest": {...}, "data": <payload>}

where ``manifest`` is the run's :meth:`RunManifest.artifact_block` — run
id, git SHA + dirty flag, environment versions, config/input content
hashes, and the metrics snapshot at write time — so any artifact can be
joined back to its ledger entry (``runs/<run_id>/manifest.json``) and
audited.  The full manifest additionally records the run's golden-number
scalars, which :mod:`repro.provenance.drift` compares across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

from repro.cmos.model import CmosPotentialModel
from repro.dfg.analysis import analyze
from repro.errors import ValidationError
from repro.obs.log import get_logger, kv
from repro.obs.trace import span
from repro.reporting import figures, tables

logger = get_logger("reporting.export")

PathLike = Union[str, Path]


def _jsonable(value):
    """Coerce figure payloads (tuple keys, dataclass-free dicts) to JSON."""
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else repr(k)): _jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def _table2_payload():
    from repro.workloads import WORKLOADS

    return {
        workload.abbrev: tables.table2_concept_limits(
            analyze(workload.build().dfg)
        )
        for workload in WORKLOADS
    }


def tech_artifact_builders(tech: str) -> Dict[str, Callable[[], object]]:
    """Name -> builder for the per-technology artifact family of *tech*.

    Five artifacts per registered backend: the re-run Figs 15-16 wall
    projections (``fig15_16_<tech>``), the effective Table V envelope
    (``table5_<tech>``), the per-study CSR decomposition
    (``csr_<tech>``), the full scenario payload (``tech_<tech>``), and
    the cross-tech delta vs. the ``cmos`` oracle
    (``tech_delta_<tech>``).
    """
    from repro.tech import scenarios

    return {
        f"fig15_16_{tech}": lambda: figures.fig15_16_tech_projections(tech),
        f"table5_{tech}": lambda: scenarios.table5_rows(tech),
        f"csr_{tech}": lambda: scenarios.csr_rows(tech),
        f"tech_{tech}": lambda: scenarios.scenario_payload(tech),
        f"tech_delta_{tech}": lambda: scenarios.delta_payload(tech),
    }


def artifact_registry(
    model: Optional[CmosPotentialModel] = None,
    fast: bool = True,
    engine=None,
) -> Dict[str, Callable[[], object]]:
    """The single registry of every resolvable artifact name.

    Base paper artifacts plus the per-technology families of every
    registered backend (``cmos`` excluded — its per-tech numbers *are*
    the base ``fig15_16``/``table5`` artifacts).  ``--only`` selections
    and unknown-name error listings resolve against this registry.
    """
    from repro.tech import backend_names

    registry = artifact_builders(model, fast, engine=engine)
    for tech in backend_names():
        if tech != "cmos":
            registry.update(tech_artifact_builders(tech))
    return registry


def artifact_builders(
    model: Optional[CmosPotentialModel] = None,
    fast: bool = True,
    engine=None,
    tech: Optional[str] = None,
) -> Dict[str, Callable[[], object]]:
    """Name -> builder for the default export set of one technology.

    With *tech* ``None`` or ``"cmos"`` this is the base paper artifact
    set, unchanged — ``repro export --tech cmos`` stays bit-identical to
    a plain ``repro export``.  Any other registered backend selects that
    technology's artifact family (see :func:`tech_artifact_builders`).

    With ``fast=True`` the DSE artifacts (Figs 13-14) use a representative
    Table III sub-grid; ``fast=False`` runs the full sweep ranges.
    *engine* (a :class:`repro.accel.engine.SweepEngine`) runs those two
    artifacts sharded across worker processes with the persistent cache.
    """
    if tech is not None and tech != "cmos":
        from repro.tech import get_backend

        return tech_artifact_builders(get_backend(tech).name)
    cmos = model if model is not None else CmosPotentialModel.paper()
    if fast:
        partitions = (1, 4, 16, 64, 256, 1024)
        simplifications = (1, 3, 5, 7, 9, 11, 13)
    else:
        partitions = None
        simplifications = None
    return {
        "table1": tables.table1_specialization_concepts,
        "table2": _table2_payload,
        "table3": tables.table3_sweep_parameters,
        "table4": tables.table4_applications,
        "table5": tables.table5_wall_parameters,
        "fig1": lambda: figures.fig1_bitcoin_evolution(cmos),
        "fig3a": figures.fig3a_device_scaling,
        "fig3b": lambda: figures.fig3b_transistor_density(cmos),
        "fig3c": lambda: figures.fig3c_tdp_budget(cmos),
        "fig3d": lambda: figures.fig3d_chip_gains(cmos),
        "fig4": lambda: figures.fig4_video_decoders(cmos),
        "fig5": lambda: figures.fig5_gpu_frame_rates(cmos),
        "fig6_7": lambda: figures.fig6_7_architecture_scaling(cmos),
        "fig8": lambda: figures.fig8_fpga_cnn(cmos),
        "fig9": lambda: figures.fig9_bitcoin_platforms(cmos),
        "fig13": lambda: figures.fig13_stencil_sweep(
            partitions=partitions, simplifications=simplifications, engine=engine
        ),
        "fig14": lambda: figures.fig14_gain_attribution(
            partitions=partitions, simplifications=simplifications, engine=engine
        ),
        "fig15_16": lambda: figures.fig15_16_projections(cmos),
    }


def _build_payloads(
    names: Sequence[str],
    builders: Dict[str, Callable[[], object]],
) -> Dict[str, object]:
    unknown = sorted(set(names) - set(builders))
    if unknown:
        # ValidationError so the CLI reports `error: ...` and exits 2
        # instead of dumping a traceback on a typo in --only.
        raise ValidationError(
            f"unknown artifact{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(repr(n) for n in unknown)}; "
            f"valid names: {', '.join(sorted(builders))}"
        )
    payloads: Dict[str, object] = {}
    for name in names:
        builder = builders[name]
        with span("export.artifact", artifact=name):
            payloads[name] = _jsonable(builder())
    return payloads


def _write_artifacts(
    payloads: Dict[str, object],
    directory: Path,
    manifest,
) -> Dict[str, Path]:
    """Write provenance-stamped envelopes; one file per artifact."""
    from repro.provenance.manifest import SCHEMA_VERSION

    directory.mkdir(parents=True, exist_ok=True)
    block = manifest.artifact_block()
    paths: Dict[str, Path] = {}
    for name, payload in payloads.items():
        path = directory / f"{name}.json"
        envelope = {
            "schema_version": SCHEMA_VERSION,
            "manifest": block,
            "data": payload,
        }
        with open(path, "w") as handle:
            json.dump(envelope, handle, indent=2)
        paths[name] = path
        logger.info(
            "export.wrote %s",
            kv(artifact=name, path=str(path), run_id=manifest.run_id),
        )
    return paths


def _finish_manifest(manifest, payloads: Dict[str, object], engine) -> None:
    """Fold golden numbers, metrics, and engine stats into *manifest*."""
    from repro.obs.metrics import metrics
    from repro.provenance.drift import golden_numbers

    manifest.golden.update(golden_numbers(payloads))
    manifest.metrics = metrics().snapshot()
    if engine is not None:
        manifest.engine = engine.provenance()


def export_artifact(
    name: str,
    directory: PathLike,
    model: Optional[CmosPotentialModel] = None,
    fast: bool = True,
    engine=None,
    manifest=None,
) -> Path:
    """Regenerate one artifact and write ``<directory>/<name>.json``."""
    return export_all(
        directory, model, fast=fast, names=[name], engine=engine,
        manifest=manifest,
    )[name]


def export_tech_artifacts(
    tech: str,
    directory: PathLike,
    manifest=None,
    ledger=None,
) -> Dict[str, Path]:
    """Export one backend's full per-technology artifact family."""
    return export_all(directory, manifest=manifest, ledger=ledger, tech=tech)


def export_all(
    directory: PathLike,
    model: Optional[CmosPotentialModel] = None,
    fast: bool = True,
    names: Optional[Sequence[str]] = None,
    engine=None,
    manifest=None,
    ledger=None,
    tech: Optional[str] = None,
) -> Dict[str, Path]:
    """Regenerate and write every (or the named) artifacts.

    *tech* selects the default artifact set: ``None``/``"cmos"`` exports
    the base paper artifacts (bit-identical either way), any other
    registered backend exports that technology's per-tech family.
    Explicit *names* always resolve against the full
    :func:`artifact_registry`, so e.g. ``--only fig15_16_tfet`` works
    without ``--tech``.

    *manifest* is the run's :class:`~repro.provenance.manifest.RunManifest`
    (one is captured if not given); it is completed with the export's
    golden numbers, metrics snapshot, and engine stats, stamped into each
    artifact envelope, and recorded in the run *ledger* (default ledger
    unless one is passed; recording is best-effort — an unwritable ledger
    never fails the export).
    """
    from repro.provenance.manifest import RunLedger, capture

    registry = artifact_registry(model, fast, engine=engine)
    if names is not None:
        selected = list(names)
    else:
        selected = sorted(artifact_builders(model, fast, engine=engine, tech=tech))
    if not selected:
        # e.g. `--only ,` — an accidentally empty selection should not
        # silently export nothing.
        raise ValidationError(
            "no artifacts selected; valid names: "
            + ", ".join(sorted(registry))
        )
    if manifest is None:
        manifest = capture("export", model=model, tech=tech)
    payloads = _build_payloads(selected, registry)
    _finish_manifest(manifest, payloads, engine)
    paths = _write_artifacts(payloads, Path(directory), manifest)
    try:
        (ledger if ledger is not None else RunLedger()).record(manifest)
    except OSError as exc:
        logger.warning(
            "ledger.record_failed %s", kv(run_id=manifest.run_id, error=str(exc))
        )
    return paths
