"""Machine-readable export of every regenerated paper artifact.

``export_all`` writes one JSON file per table/figure into a directory, so
plots and downstream analyses can consume the reproduction without
importing the library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

from repro.cmos.model import CmosPotentialModel
from repro.dfg.analysis import analyze
from repro.obs.log import get_logger, kv
from repro.obs.trace import span
from repro.reporting import figures, tables

logger = get_logger("reporting.export")

PathLike = Union[str, Path]


def _jsonable(value):
    """Coerce figure payloads (tuple keys, dataclass-free dicts) to JSON."""
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else repr(k)): _jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and value != value:  # NaN
        return None
    return value


def _table2_payload():
    from repro.workloads import WORKLOADS

    return {
        workload.abbrev: tables.table2_concept_limits(
            analyze(workload.build().dfg)
        )
        for workload in WORKLOADS
    }


def artifact_builders(
    model: Optional[CmosPotentialModel] = None,
    fast: bool = True,
    engine=None,
) -> Dict[str, Callable[[], object]]:
    """Name -> builder for every exportable artifact.

    With ``fast=True`` the DSE artifacts (Figs 13-14) use a representative
    Table III sub-grid; ``fast=False`` runs the full sweep ranges.
    *engine* (a :class:`repro.accel.engine.SweepEngine`) runs those two
    artifacts sharded across worker processes with the persistent cache.
    """
    cmos = model if model is not None else CmosPotentialModel.paper()
    if fast:
        partitions = (1, 4, 16, 64, 256, 1024)
        simplifications = (1, 3, 5, 7, 9, 11, 13)
    else:
        partitions = None
        simplifications = None
    return {
        "table1": tables.table1_specialization_concepts,
        "table2": _table2_payload,
        "table3": tables.table3_sweep_parameters,
        "table4": tables.table4_applications,
        "table5": tables.table5_wall_parameters,
        "fig1": lambda: figures.fig1_bitcoin_evolution(cmos),
        "fig3a": figures.fig3a_device_scaling,
        "fig3b": lambda: figures.fig3b_transistor_density(cmos),
        "fig3c": lambda: figures.fig3c_tdp_budget(cmos),
        "fig3d": lambda: figures.fig3d_chip_gains(cmos),
        "fig4": lambda: figures.fig4_video_decoders(cmos),
        "fig5": lambda: figures.fig5_gpu_frame_rates(cmos),
        "fig6_7": lambda: figures.fig6_7_architecture_scaling(cmos),
        "fig8": lambda: figures.fig8_fpga_cnn(cmos),
        "fig9": lambda: figures.fig9_bitcoin_platforms(cmos),
        "fig13": lambda: figures.fig13_stencil_sweep(
            partitions=partitions, simplifications=simplifications, engine=engine
        ),
        "fig14": lambda: figures.fig14_gain_attribution(
            partitions=partitions, simplifications=simplifications, engine=engine
        ),
        "fig15_16": lambda: figures.fig15_16_projections(cmos),
    }


def export_artifact(
    name: str,
    directory: PathLike,
    model: Optional[CmosPotentialModel] = None,
    fast: bool = True,
    engine=None,
) -> Path:
    """Regenerate one artifact and write ``<directory>/<name>.json``."""
    builders = artifact_builders(model, fast, engine=engine)
    try:
        builder = builders[name]
    except KeyError:
        raise ValueError(
            f"unknown artifact {name!r}; known: {sorted(builders)}"
        ) from None
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    with span("export.artifact", artifact=name):
        payload = _jsonable(builder())
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
    logger.info("export.wrote %s", kv(artifact=name, path=str(path)))
    return path


def export_all(
    directory: PathLike,
    model: Optional[CmosPotentialModel] = None,
    fast: bool = True,
    names: Optional[Sequence[str]] = None,
    engine=None,
) -> Dict[str, Path]:
    """Regenerate and write every (or the named) artifacts."""
    builders = artifact_builders(model, fast, engine=engine)
    selected = list(names) if names is not None else sorted(builders)
    return {
        name: export_artifact(name, directory, model, fast, engine=engine)
        for name in selected
    }
