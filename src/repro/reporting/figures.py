"""Figure regeneration: one function per paper figure.

Every function returns the plotted data series as plain Python structures so
callers (benchmarks, notebooks, tests) can print, assert on, or re-plot them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cmos.model import CmosPotentialModel
from repro.cmos.scaling import default_scaling_table


def _model(model: Optional[CmosPotentialModel]) -> CmosPotentialModel:
    return model if model is not None else CmosPotentialModel.paper()


# -- Section III: the CMOS potential model -----------------------------------


def fig3a_device_scaling() -> Dict[str, Dict[float, float]]:
    """Fig 3a: relative device scaling, 45nm..5nm, normalised to 45nm."""
    return default_scaling_table().fig3a_series()


def fig3b_transistor_density(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[str, object]:
    """Fig 3b: the transistor-count-vs-density-factor power law."""
    fit = _model(model).density_fit
    sample_densities = [0.01, 0.1, 1.0, 10.0, 30.0, 100.0]
    return {
        "coefficient": fit.coefficient,
        "exponent": fit.exponent,
        "equation": fit.describe(),
        "curve": {d: fit.transistors(d) for d in sample_densities},
    }


def fig3c_tdp_budget(
    model: Optional[CmosPotentialModel] = None,
    tdps_w: Sequence[float] = (24.0, 60.0, 120.0, 300.0, 600.0),
) -> Dict[str, object]:
    """Fig 3c: per-era transistor-budget power laws and sample curves."""
    tdp_model = _model(model).tdp_model
    return {
        "fits": [fit.describe() for fit in tdp_model.fits],
        "curves": {
            fit.era.name: {tdp: fit.budget_product(tdp) for tdp in tdps_w}
            for fit in tdp_model.fits
        },
    }


def fig3d_chip_gains(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[tuple, Dict[str, float]]:
    """Fig 3d: relative throughput / energy efficiency over the node x die
    x TDP-zone grid at 1GHz."""
    return _model(model).fig3d_grid()


# -- Section IV: case studies ---------------------------------------------------


def fig1_bitcoin_evolution(
    model: Optional[CmosPotentialModel] = None,
) -> List[Dict[str, float]]:
    """Fig 1: Bitcoin ASIC per-area performance vs transistor performance."""
    from repro.studies import bitcoin

    cmos = _model(model)
    series = bitcoin.asic_study().performance_series(cmos)
    return [
        {
            "name": p.name,
            "node_nm": p.node_nm,
            "performance": p.gain,
            "transistor_performance": p.physical,
            "csr": p.csr,
        }
        for p in series
    ]


def fig4_video_decoders(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig 4: decoder ASIC performance, hardware budget, energy efficiency."""
    from repro.studies import video_decoders

    cmos = _model(model)
    study = video_decoders.study()
    perf = study.performance_series(cmos).sorted_by_gain()
    eff = study.efficiency_series(cmos).sorted_by_gain()
    budget = [
        {
            "name": chip.spec.name,
            "transistors": chip.spec.transistors,
            "frequency_mhz": chip.spec.frequency_mhz,
        }
        for chip in study.chips
    ]
    def rows(series):
        return [
            {"name": p.name, "gain": p.gain, "csr": p.csr, "node_nm": p.node_nm}
            for p in series
        ]
    return {"performance": rows(perf), "budget": budget, "efficiency": rows(eff)}


def fig5_gpu_frame_rates(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[str, Dict[str, List[Dict[str, float]]]]:
    """Fig 5: per-application GPU frame-rate and frames/J series with CSR."""
    from repro.studies import gpu_graphics

    cmos = _model(model)
    result: Dict[str, Dict[str, List[Dict[str, float]]]] = {}
    for app, _base in gpu_graphics.APPS:
        study = gpu_graphics.study(app)
        perf = study.performance_series(cmos)
        eff = study.efficiency_series(cmos)
        result[app] = {
            "performance": [
                {"name": p.name, "year": p.year, "gain": p.gain, "csr": p.csr}
                for p in perf
            ],
            "efficiency": [
                {"name": p.name, "year": p.year, "gain": p.gain, "csr": p.csr}
                for p in eff
            ],
        }
    return result


def fig6_7_architecture_scaling(
    model: Optional[CmosPotentialModel] = None,
) -> List[Dict[str, float]]:
    """Figs 6-7: per-architecture absolute gain (vs Tesla) and CSR."""
    from repro.studies import gpu_graphics

    cmos = _model(model)
    relations = gpu_graphics.architecture_relations(cmos)
    csr = gpu_graphics.architecture_csr(cmos)
    nodes = gpu_graphics.architecture_nodes()
    return [
        {
            "architecture": arch,
            "node_nm": nodes[arch],
            "gain_vs_tesla": relations.gain(arch, "Tesla"),
            "csr": csr[arch],
        }
        for arch in relations.architectures
    ]


def fig8_fpga_cnn(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[str, Dict[str, object]]:
    """Fig 8: FPGA CNN performance/efficiency/utilisation for both models."""
    from repro.studies import fpga_cnn

    cmos = _model(model)
    result: Dict[str, Dict[str, object]] = {}
    for cnn in ("alexnet", "vgg16"):
        study = fpga_cnn.study(cnn)
        perf = study.performance_series(cmos).sorted_by_gain()
        eff = study.efficiency_series(cmos).sorted_by_gain()
        result[cnn] = {
            "performance": [
                {"name": p.name, "gain": p.gain, "csr": p.csr} for p in perf
            ],
            "efficiency": [
                {"name": p.name, "gain": p.gain, "csr": p.csr} for p in eff
            ],
            "utilization": fpga_cnn.utilization_table(cnn),
        }
    return result


def fig9_bitcoin_platforms(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig 9: mining gains and CSR across CPU/GPU/FPGA/ASIC platforms."""
    from repro.studies import bitcoin

    cmos = _model(model)
    study = bitcoin.study()
    perf = study.performance_series(cmos)
    eff = study.efficiency_series(cmos)
    def rows(series):
        return [
            {"name": p.name, "node_nm": p.node_nm, "gain": p.gain, "csr": p.csr}
            for p in series
        ]
    return {"performance": rows(perf), "efficiency": rows(eff)}


# -- Section VI: design-space exploration -----------------------------------------


def fig13_stencil_sweep(
    partitions: Optional[Sequence[int]] = None,
    simplifications: Optional[Sequence[int]] = None,
    nodes: Optional[Sequence[float]] = None,
    engine=None,
) -> List[Dict[str, float]]:
    """Fig 13: 3D-stencil design points in the runtime-power space.

    *engine* is an optional :class:`repro.accel.engine.SweepEngine`; when
    given, the sweep runs sharded/cached through it (same values as the
    serial path) and the engine's ``last_stats`` reflect this figure.
    """
    from repro.accel.sweep import default_design_grid, sweep
    from repro.workloads import get_workload

    workload = get_workload("S3D")
    kernel = engine.trace(workload) if engine is not None else workload.build()
    grid = default_design_grid(
        nodes=nodes if nodes is not None else (45.0, 32.0, 22.0, 14.0, 10.0, 7.0, 5.0),
        partitions=partitions,
        simplifications=simplifications,
    )
    result = engine.sweep(kernel, grid) if engine is not None else sweep(kernel, grid)
    return [
        {
            "node_nm": r.design.node_nm,
            "partition": r.design.partition,
            "simplification": r.design.simplification,
            "runtime_s": r.runtime_s,
            "power_w": r.power_w,
            "energy_efficiency": r.energy_efficiency,
        }
        for r in result
    ]


def fig14_gain_attribution(
    metric: str = "throughput",
    workload_abbrevs: Optional[Sequence[str]] = None,
    partitions: Optional[Sequence[int]] = None,
    simplifications: Optional[Sequence[int]] = None,
    engine=None,
) -> List[Dict[str, object]]:
    """Fig 14: per-kernel gain attribution across specialization concepts.

    *engine* is an optional :class:`repro.accel.engine.SweepEngine`; when
    given, kernels are traced through its persistent cache and attribution
    fans out across worker processes (identical values to the serial loop).
    """
    from repro.accel.attribution import attribute_all
    from repro.workloads import WORKLOADS, get_workload

    workloads = (
        [get_workload(a) for a in workload_abbrevs]
        if workload_abbrevs is not None
        else list(WORKLOADS)
    )
    if engine is not None:
        kernels = [engine.trace(workload) for workload in workloads]
        attributions = engine.attribute_all(
            kernels,
            metric=metric,
            partitions=partitions,
            simplifications=simplifications,
        )
    else:
        attributions = attribute_all(
            [workload.build() for workload in workloads],
            metric=metric,
            partitions=partitions,
            simplifications=simplifications,
        )
    return [
        {
            "workload": workload.abbrev,
            "total_gain": attribution.total_gain,
            "csr": attribution.csr,
            "shares": attribution.shares,
        }
        for workload, attribution in zip(workloads, attributions)
    ]


# -- Section VII: the accelerator wall ----------------------------------------------


def fig15_16_projections(
    model: Optional[CmosPotentialModel] = None,
) -> List[Dict[str, object]]:
    """Figs 15-16: per-domain wall projections, both metrics."""
    from repro.wall import wall_report_all_domains

    return [
        {
            "domain": report.domain,
            "metric": report.metric,
            "unit": report.gain_unit,
            "current_best": report.current_best,
            "physical_limit": report.physical_limit,
            "projected_log": report.projected_log,
            "projected_linear": report.projected_linear,
            "headroom": report.headroom,
        }
        for report in wall_report_all_domains(_model(model))
    ]


def fig15_16_tech_projections(tech: str) -> List[Dict[str, object]]:
    """Figs 15-16 re-run with the limit chip built under technology *tech*.

    History (the measured scatter and the frontier fits) stays CMOS;
    see :mod:`repro.tech.scenarios` for the modeling stance.  For
    ``tech="cmos"`` the rows are bit-identical to
    :func:`fig15_16_projections`.
    """
    from repro.tech.scenarios import wall_projection_rows

    return wall_projection_rows(tech)
