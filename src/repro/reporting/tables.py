"""Table regeneration: one function per paper table."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dfg.analysis import DfgStats
from repro.dfg.complexity import complexity_table


def render_rows(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Format a list of dict rows as an aligned text table."""
    if not rows:
        return "(empty)"
    cols = list(columns) if columns is not None else list(rows[0])
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)
    table = [[fmt(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(cols[i]), max(len(line[i]) for line in table))
        for i in range(len(cols))
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(cols)))
        for line in table
    )
    return f"{header}\n{separator}\n{body}"


def table1_specialization_concepts() -> List[Dict[str, str]]:
    """Table I: specialization concepts with TPU examples."""
    return [
        {"component": "Memory", "concept": "Simplification",
         "example": "Simple DDR3 chips, interfaces, and physical memory space"},
        {"component": "Memory", "concept": "Partitioning",
         "example": "Memory module banking storing NN layer weights"},
        {"component": "Memory", "concept": "Heterogeneity",
         "example": "Hybrid memory for input and intermediary results"},
        {"component": "Communication", "concept": "Simplification",
         "example": "Simple FIFO communication"},
        {"component": "Communication", "concept": "Partitioning",
         "example": "Concurrent FIFOs for weights and systolic array data"},
        {"component": "Communication", "concept": "Heterogeneity",
         "example": "Software-defined DMA interface for chip I/O"},
        {"component": "Computation", "concept": "Simplification",
         "example": "Multiply+add units with small precision (8-bit integers)"},
        {"component": "Computation", "concept": "Partitioning",
         "example": "Parallel multiply+add paths and systolic array data reuse"},
        {"component": "Computation", "concept": "Heterogeneity",
         "example": "Non-linear activation unit (e.g., ReLU)"},
    ]


def table2_concept_limits(stats: DfgStats) -> List[Dict[str, object]]:
    """Table II: time/space limits of each concept, evaluated on *stats*."""
    rows = []
    for (component, concept), limit in complexity_table(stats).items():
        rows.append(
            {
                "component": component.value,
                "concept": concept.value,
                "time_formula": limit.time_formula,
                "time": limit.time,
                "space_formula": limit.space_formula,
                "space": limit.space,
            }
        )
    return rows


def table3_sweep_parameters() -> List[Dict[str, str]]:
    """Table III: the CMOS-specialization sweep parameters."""
    from repro.accel.sweep import table3_partitions, table3_simplifications
    from repro.accel.design import SWEEP_NODES

    return [
        {
            "parameter": "Partitioning Factor",
            "values": ", ".join(str(p) for p in table3_partitions()[:4])
            + f", ... {table3_partitions()[-1]}",
        },
        {
            "parameter": "Simplification Degree",
            "values": ", ".join(str(s) for s in table3_simplifications()),
        },
        {
            "parameter": "CMOS Process (nm)",
            "values": ", ".join(f"{n:g}" for n in SWEEP_NODES),
        },
    ]


def table4_applications() -> List[Dict[str, str]]:
    """Table IV: the evaluated applications and domains."""
    from repro.workloads import WORKLOADS

    return [
        {"application": w.name, "abbrev": w.abbrev, "domain": w.domain}
        for w in WORKLOADS
    ]


def table5_wall_parameters() -> List[Dict[str, object]]:
    """Table V: accelerator-wall physical parameters per domain."""
    from repro.wall.limits import _limits

    return [
        {
            "domain": row.domain,
            "platform": row.platform.value,
            "min_die_mm2": row.min_die_mm2,
            "max_die_mm2": row.max_die_mm2,
            "tdp_w": row.tdp_w,
            "frequency_mhz": row.frequency_mhz,
        }
        for row in _limits().values()
    ]
