"""``repro.serve`` — the async, batched, observable model-serving layer.

Started via ``repro serve``; loads the fitted CMOS model, case studies,
and sweep engine once, then answers the paper's core queries over a
stdlib-only asyncio HTTP server with micro-batching, background sweep
jobs, rate limiting, load shedding, Prometheus metrics, and
provenance-stamped responses.  ``repro serve --workers N`` scales the
same server across cores under a forking supervisor with a shared warm
snapshot (see ``docs/METHODOLOGY.md`` §12 and §14).
"""

from repro.serve.app import ServeApp, ServeConfig, ServerHandle
from repro.serve.batching import LruCache, MicroBatcher
from repro.serve.debug import FlightRecorder, RequestRecord
from repro.serve.jobs import Job, JobQueue, QueueFullError, UnknownJobError, job_owner
from repro.serve.limits import InflightGate, RateLimiter
from repro.serve.router import HttpError, Request, Response, Router
from repro.serve.snapshot import ServeSnapshot, build_snapshot, load_snapshot
from repro.serve.supervisor import Supervisor, SupervisorHandle

__all__ = [
    "FlightRecorder",
    "HttpError",
    "InflightGate",
    "Job",
    "RequestRecord",
    "JobQueue",
    "LruCache",
    "MicroBatcher",
    "QueueFullError",
    "RateLimiter",
    "Request",
    "Response",
    "Router",
    "ServeApp",
    "ServeConfig",
    "ServeSnapshot",
    "ServerHandle",
    "Supervisor",
    "SupervisorHandle",
    "UnknownJobError",
    "build_snapshot",
    "job_owner",
    "load_snapshot",
]
