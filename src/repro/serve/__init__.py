"""``repro.serve`` — the async, batched, observable model-serving layer.

Started via ``repro serve``; loads the fitted CMOS model, case studies,
and sweep engine once, then answers the paper's core queries over a
stdlib-only asyncio HTTP server with micro-batching, background sweep
jobs, rate limiting, Prometheus metrics, and provenance-stamped
responses.  See ``docs/METHODOLOGY.md`` §12 for the endpoint reference.
"""

from repro.serve.app import ServeApp, ServeConfig, ServerHandle
from repro.serve.batching import LruCache, MicroBatcher
from repro.serve.jobs import Job, JobQueue, QueueFullError, UnknownJobError
from repro.serve.limits import RateLimiter
from repro.serve.router import HttpError, Request, Response, Router

__all__ = [
    "HttpError",
    "Job",
    "JobQueue",
    "LruCache",
    "MicroBatcher",
    "QueueFullError",
    "RateLimiter",
    "Request",
    "Response",
    "Router",
    "ServeApp",
    "ServeConfig",
    "ServerHandle",
    "UnknownJobError",
]
