"""The serving application: state, HTTP protocol, and lifecycle.

``repro serve`` builds one :class:`ServeApp`: it loads the fitted CMOS
model, the case studies, and the sweep engine **once** at startup,
captures a run manifest into the provenance ledger, and then serves the
paper's core queries over a small stdlib-only HTTP/1.1 server
(``asyncio.start_server`` — no web framework, no new runtime deps).

Request flow::

    connection -> parse -> rate limit -> route -> handler
                                          |          |
                                          |          +-- run_blocking (thread pool)
                                          |          +-- MicroBatcher (vectorized)
                                          |          +-- JobQueue (background sweeps)
                                          +-- 429 Too Many Requests

Every JSON response is wrapped in the provenance envelope
``{"schema_version", "server": {run_id, git, version, ...}, "data"}`` so
served numbers can be joined to the run ledger and drift-checked against
exported artifacts with the PR-4 machinery.  SIGTERM/SIGINT trigger a
graceful drain: the listener closes, in-flight requests finish, queued
jobs are cancelled, running jobs get a bounded grace period, and the
process exits 0.
"""

from __future__ import annotations

import asyncio
import contextvars
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, ValidationError
from repro.obs.log import get_logger, kv, set_log_run_id
from repro.obs.metrics import metrics
from repro.obs.trace import (
    Tracer,
    current_trace_id,
    get_tracer,
    new_trace_id,
    set_tracer,
    span,
    trace_id_from_headers,
    trace_scope,
)
from repro.serve.batching import LruCache, MicroBatcher
from repro.serve.debug import FlightRecorder
from repro.serve.handlers import (
    compute_evaluate_batch,
    compute_whatif,
    register_internal_routes,
    register_routes,
)
from repro.serve.jobs import JobQueue
from repro.serve.limits import InflightGate, RateLimiter
from repro.serve.router import HttpError, Request, Response, Router

__all__ = ["ServeApp", "ServeConfig", "ServerHandle"]

logger = get_logger("serve.http")

#: Sub-grids used by non-``full`` evaluate/attribute/sweep requests — the
#: same representative Table III subsets as ``repro export`` (fast mode),
#: so served DSE numbers line up with the exported fast artifacts.
FAST_PARTITIONS: Tuple[int, ...] = (1, 4, 16, 64, 256, 1024)
FAST_SIMPLIFICATIONS: Tuple[int, ...] = (1, 3, 5, 7, 9, 11, 13)

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024
IDLE_TIMEOUT_S = 30.0

#: Routes exempt from rate limiting and drain rejection (operators must
#: always be able to probe a draining or overloaded server — the debug
#: surface exists precisely for overloaded servers).
OPS_ROUTES = (
    "healthz",
    "metrics",
    "version",
    "debug.requests",
    "debug.slow",
    "debug.trace",
)

#: Spans a long-running server's tracer retains before evicting oldest.
#: Each request's spans are moved into the flight recorder as the request
#: finishes, so this ring only holds in-flight and orphaned spans.
TRACER_RING = 8192


@dataclass
class ServeConfig:
    """Tunables of one serving process (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int = 1                  # sweep-engine worker processes
    cache_dir: Optional[str] = None
    use_cache: bool = False        # persistent schedule cache opt-in
    threads: int = 4               # blocking-work thread pool size
    workers: int = 1               # serve processes (>1 = supervised fork)
    batching: bool = True
    batch_window_s: float = 0.002
    batch_max: int = 64
    response_cache: int = 1024     # LRU entries; 0 disables
    rate_limit: float = 0.0        # requests/s per client; 0 disables
    rate_burst: Optional[float] = None
    max_inflight: int = 64         # in-flight cap per worker; 0 disables
    job_concurrency: int = 1
    max_pending_jobs: int = 32
    drain_timeout_s: float = 10.0
    flight_recorder: int = 256     # request records retained per worker
    # -- multi-worker plumbing (set by the supervisor, not by users) ----------
    worker_index: Optional[int] = None
    peer_ports: Optional[Dict[int, int]] = None   # worker index -> internal port
    snapshot_path: Optional[str] = None           # pickled ServeSnapshot


class ServeApp:
    """One serving process: loaded state + HTTP front end."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        snapshot: Optional[Any] = None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.router = Router()
        register_routes(self.router)
        self.internal_router = Router()
        register_internal_routes(self.internal_router)
        self.started_unix = time.time()
        self.inflight = 0
        self.draining = False
        self._shutdown = None  # asyncio.Event, created on the serving loop
        self._server: Optional[asyncio.base_events.Server] = None
        self._internal_server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._started = False
        self._snapshot = snapshot      # injected ServeSnapshot (tests)
        #: Pre-bound sockets handed over by the supervisor (fork path).
        self.listen_sock: Optional[socket.socket] = None
        self.internal_sock: Optional[socket.socket] = None

    # -- startup ---------------------------------------------------------------

    def startup(self) -> None:
        """Load models/state once; must run before serving (idempotent)."""
        if self._started:
            return
        from repro.accel.engine import SweepEngine
        from repro.accel.resources import ResourceLibrary
        from repro.cmos.model import CmosPotentialModel
        from repro.provenance.manifest import SCHEMA_VERSION, RunLedger, capture
        from repro.serve.snapshot import load_snapshot

        config = self.config
        snapshot = self._snapshot
        if snapshot is None and config.snapshot_path:
            snapshot = load_snapshot(config.snapshot_path)
            self._snapshot = snapshot
        if snapshot is not None:
            # Warm boot: the supervisor fitted/traced/built this state
            # once; replicas (and crash restarts) skip the refit.
            self.model = snapshot.model
            self._studies = dict(snapshot.studies)
            self._kernels = {k.upper(): v for k, v in snapshot.kernels.items()}
            from repro.tech import backend_names, get_backend

            for name, tech_model in getattr(snapshot, "tech_models", {}).items():
                if name in backend_names():
                    get_backend(name).prime(tech_model)
        else:
            self.model = CmosPotentialModel.paper()
            self._studies = {}
            self._kernels = {}
        self.library = ResourceLibrary()
        self.engine = SweepEngine(
            jobs=config.jobs,
            cache_dir=config.cache_dir,
            use_cache=config.use_cache,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, config.threads), thread_name_prefix="serve"
        )
        self.schema_version = SCHEMA_VERSION
        self.manifest = capture("serve", argv=[])
        self.git = dict(self.manifest.git)
        try:
            RunLedger().record(self.manifest)
        except OSError:
            pass  # provenance is best-effort; serving must still come up
        self.recorder = FlightRecorder(max(1, config.flight_recorder))
        # Request tracing is always on for a server: spans feed the
        # flight recorder.  A CLI-installed tracer (--profile) is kept;
        # otherwise install a bounded ring and restore on drain.
        self._installed_tracer = get_tracer() is None
        if self._installed_tracer:
            set_tracer(Tracer(max_spans=TRACER_RING))
        set_log_run_id(self.manifest.run_id)
        self._schedule_caches: Dict[str, Any] = {}
        self._batch_evaluators: Dict[str, Any] = {}
        self._kernel_lock = threading.Lock()
        self._artifact_cache = LruCache(64, name="artifact")
        if snapshot is not None:
            for name, payload in snapshot.artifacts.items():
                self._artifact_cache.put(name, payload)
        self._response_cache = LruCache(config.response_cache, name="response")
        self.peers: Dict[int, int] = {
            index: port
            for index, port in (config.peer_ports or {}).items()
            if index != config.worker_index
        }
        self.gate = InflightGate(config.max_inflight)
        self.evaluate_batcher = MicroBatcher(
            lambda items: compute_evaluate_batch(self, items),
            max_batch=config.batch_max,
            window_s=config.batch_window_s,
            executor=self.executor,
            name="evaluate",
        )
        self.whatif_batcher = MicroBatcher(
            lambda items: [compute_whatif(self, item) for item in items],
            max_batch=config.batch_max,
            window_s=config.batch_window_s,
            executor=self.executor,
            name="whatif",
        )
        self.jobs = JobQueue(
            self._run_job,
            concurrency=config.job_concurrency,
            max_pending=config.max_pending_jobs,
            executor=self.executor,
            worker_index=config.worker_index,
        )
        self.limiter = RateLimiter(config.rate_limit, config.rate_burst)
        self._started = True
        logger.info(
            "serve.startup %s",
            kv(
                run_id=self.manifest.run_id,
                worker=config.worker_index,
                jobs=config.jobs,
                batching=config.batching,
                rate_limit=config.rate_limit,
                max_inflight=config.max_inflight,
                warm_boot=snapshot is not None,
            ),
        )

    # -- state accessors used by handlers --------------------------------------

    async def run_blocking(self, fn: Callable[[], Any]) -> Any:
        """Run blocking *fn* on the app's thread pool.

        The caller's context is copied into the worker thread —
        ``run_in_executor`` does not do that by itself — so spans opened
        inside *fn* keep the request's trace id.
        """
        loop = asyncio.get_event_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(self.executor, lambda: ctx.run(fn))

    def workload_names(self) -> List[str]:
        from repro.workloads import WORKLOADS

        return [w.abbrev for w in WORKLOADS]

    def workload(self, abbrev: str):
        """Resolve a workload abbreviation; 400 with the valid names."""
        from repro.workloads import get_workload

        try:
            return get_workload(abbrev)
        except ReproError:
            raise HttpError(
                400,
                f"unknown workload {abbrev!r}",
                valid_workloads=self.workload_names(),
            )

    def kernel(self, abbrev: str):
        """The traced kernel for *abbrev*, traced once and retained."""
        key = abbrev.upper()
        kernel = self._kernels.get(key)
        if kernel is not None:
            return kernel
        with self._kernel_lock:
            kernel = self._kernels.get(key)
            if kernel is None:
                kernel = self.engine.trace(self.workload(abbrev))
                self._kernels[key] = kernel
        return kernel

    def schedule_cache(self, abbrev: str):
        """Per-workload :class:`ScheduleCache` shared across requests."""
        key = abbrev.upper()
        cache = self._schedule_caches.get(key)
        if cache is not None:
            return cache
        with self._kernel_lock:
            cache = self._schedule_caches.get(key)
            if cache is None:
                cache = self.engine.schedule_cache(self.kernel(key), self.library)
                self._schedule_caches[key] = cache
        return cache

    def batch_evaluator(self, abbrev: str):
        """Per-workload :class:`BatchEvaluator` behind batched ``/evaluate``.

        Shares the workload's :meth:`schedule_cache`, so array-path and
        scalar-path requests see one schedule memo; macro graphs and scale
        tables amortize across every batch of the process lifetime.
        """
        key = abbrev.upper()
        evaluator = self._batch_evaluators.get(key)
        if evaluator is not None:
            return evaluator
        # Resolve dependencies before taking the lock (it is not reentrant).
        kernel = self.kernel(key)
        cache = self.schedule_cache(key)
        from repro.accel.batch import BatchEvaluator

        with self._kernel_lock:
            evaluator = self._batch_evaluators.get(key)
            if evaluator is None:
                evaluator = BatchEvaluator(kernel, cache=cache)
                self._batch_evaluators[key] = evaluator
        return evaluator

    def study(self, name: str):
        """Resolve a case-study name; 400 with the valid names."""
        from repro.cli import STUDIES, _study_object

        if name not in STUDIES:
            raise HttpError(
                400, f"unknown study {name!r}", valid_studies=list(STUDIES)
            )
        study = self._studies.get(name)
        if study is None:
            study = _study_object(name, self.model)
            self._studies[name] = study
        return study

    def fast_subsets(
        self, full: bool
    ) -> Tuple[Optional[Sequence[int]], Optional[Sequence[int]]]:
        """(partitions, simplifications) — ``None`` means full Table III."""
        if full:
            return None, None
        return FAST_PARTITIONS, FAST_SIMPLIFICATIONS

    def artifact_names(self) -> List[str]:
        from repro.reporting.export import artifact_registry

        return sorted(artifact_registry(self.model, fast=True))

    def tech_backend(self, name: str):
        """Resolve a technology backend name; 400 with the valid names."""
        from repro.tech import backend_names, get_backend

        try:
            return get_backend(name)
        except ReproError:
            raise HttpError(
                400,
                f"unknown technology {name!r}",
                valid_technologies=backend_names(),
            )

    def tech_model(self, name: str):
        """The fitted potential model of backend *name* (snapshot-primed)."""
        return self.tech_backend(name).model()

    async def artifact_payload(self, name: str) -> Any:
        """One export artifact's payload, built lazily and LRU-cached.

        The payload goes through the same builder and ``_jsonable``
        coercion as ``repro export``, so endpoint responses are golden-
        parity with exported artifact files.  Per-technology artifacts
        (``fig15_16_tfet``, ``tech_delta_chiplet``, ...) resolve through
        the same registry as ``export --only``.
        """
        from repro.reporting.export import _jsonable, artifact_registry

        hit, value = self._artifact_cache.get(name)
        if hit:
            return value

        def build() -> Any:
            builders = artifact_registry(self.model, fast=True, engine=self.engine)
            try:
                builder = builders[name]
            except KeyError:
                raise HttpError(
                    404,
                    f"unknown artifact {name!r}",
                    valid_artifacts=sorted(builders),
                )
            with span("serve.artifact", artifact=name):
                return _jsonable(builder())

        value = await self.run_blocking(build)
        self._artifact_cache.put(name, value)
        return value

    async def batched_evaluate(self, key, item) -> Any:
        return await self._batched(self.evaluate_batcher, key, item)

    async def batched_whatif(self, key, item) -> Any:
        return await self._batched(self.whatif_batcher, key, item)

    async def _batched(self, batcher: MicroBatcher, key, item) -> Any:
        hit, value = self._response_cache.get(key)
        if hit:
            return value
        if self.config.batching:
            value = await batcher.submit(key, item)
        else:
            results = await self.run_blocking(
                lambda: batcher.batch_fn([item])
            )
            value = results[0]
        self._response_cache.put(key, value)
        return value

    # -- background sweep jobs -------------------------------------------------

    def _run_job(self, kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Blocking job body; runs on the thread pool, engine fans out.

        The queue binds the job's trace id (captured at submission)
        around this call, so the job's spans — and a flight-recorder
        record of the job itself — join the submitting request's trace.
        """
        start_unix = time.time()
        start = perf_counter()
        status = 500
        try:
            with span("serve.job", kind=kind):
                result = self._run_job_body(kind, params)
            status = 200
            return result
        finally:
            trace_id = current_trace_id()
            recorder = getattr(self, "recorder", None)
            if trace_id is not None and recorder is not None:
                tracer = get_tracer()
                recorder.record(
                    trace_id=trace_id,
                    route=f"job.{kind}",
                    method="JOB",
                    path=f"/sweeps#{kind}",
                    status=status,
                    duration_s=perf_counter() - start,
                    start_unix=start_unix,
                    client="jobqueue",
                    worker=self.config.worker_index,
                    spans=tracer.take(trace_id) if tracer is not None else (),
                )

    def _run_job_body(self, kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if kind != "sweep":
            raise ValidationError(f"unknown job kind {kind!r}")
        from repro.accel.design import SWEEP_NODES
        from repro.accel.sweep import default_design_grid

        abbrev = params["workload"]
        kernel = self.kernel(abbrev)
        partitions, simplifications = self.fast_subsets(params.get("full", False))
        try:
            grid = default_design_grid(
                nodes=tuple(params.get("nodes") or SWEEP_NODES),
                partitions=params.get("partitions") or partitions,
                simplifications=params.get("simplifications") or simplifications,
            )
        except ReproError as exc:
            raise ValidationError(f"invalid sweep grid: {exc}")
        result = self.engine.sweep(kernel, grid)
        frontier = result.pareto_frontier()
        return {
            "workload": kernel.name,
            "design_points": len(result.reports),
            "stats": result.stats.to_dict(),
            "pareto_frontier": [
                {
                    "node_nm": r.design.node_nm,
                    "partition": r.design.partition,
                    "simplification": r.design.simplification,
                    "runtime_s": r.runtime_s,
                    "power_w": r.power_w,
                }
                for r in frontier
            ],
        }

    # -- envelope ---------------------------------------------------------------

    def envelope(self, data: Any) -> Dict[str, Any]:
        """Wrap *data* in the provenance envelope every response carries."""
        import repro

        return {
            "schema_version": self.schema_version,
            "server": {
                "run_id": self.manifest.run_id,
                "command": "serve",
                "version": repro.__version__,
                "git": self.git,
                "started_at": self.manifest.created_at,
            },
            "data": data,
        }

    # -- request dispatch -------------------------------------------------------

    async def dispatch(self, request: Request) -> Response:
        """Route one request and produce its response (never raises).

        The whole exchange runs under a trace scope: the id comes from an
        incoming ``traceparent``/``X-Trace-Id`` header (so a client — or
        a sibling worker forwarding over the loopback — stitches its hops
        into one trace) or is minted here, and goes back out as
        ``X-Trace-Id``.  When the request finishes, its spans move from
        the tracer into the flight recorder as one request record.
        """
        trace_id = request.trace_id or trace_id_from_headers(request.headers)
        if trace_id is None:
            trace_id = new_trace_id()
        request.trace_id = trace_id
        start_unix = time.time()
        start = perf_counter()
        with trace_scope(trace_id):
            response, route_name = await self._dispatch_routed(request)
        response.headers.setdefault("X-Trace-Id", trace_id)
        recorder = getattr(self, "recorder", None)
        if recorder is not None:
            tracer = get_tracer()
            recorder.record(
                trace_id=trace_id,
                route=route_name,
                method=request.method,
                path=request.path,
                status=response.status,
                duration_s=perf_counter() - start,
                start_unix=start_unix,
                client=request.client,
                worker=self.config.worker_index,
                internal=request.internal,
                spans=tracer.take(trace_id) if tracer is not None else (),
            )
        return response

    async def _dispatch_routed(self, request: Request) -> Tuple[Response, str]:
        """Resolve, guard, and run one request; returns (response, route)."""
        registry = metrics()
        start = perf_counter()
        route_name = "unrouted"
        router = self.internal_router if request.internal else self.router
        gated = False
        try:
            route, params = router.resolve(request.method, request.path)
            route_name = route.name
            if request.internal:
                # Worker-to-worker traffic: no draining rejection, rate
                # limit, or shedding — peers must always resolve jobs and
                # metrics, even while this worker is under pressure.
                with span(
                    "serve.internal", route=route_name, method=request.method
                ):
                    payload = await route.handler(self, request, **params)
                response = (
                    payload
                    if isinstance(payload, Response)
                    else Response.json(payload)
                )
                registry.counter("serve.internal.requests").inc()
                return response, route_name
            if self.draining and route_name not in OPS_ROUTES:
                raise HttpError(
                    503, "server is draining", headers={"Connection": "close"}
                )
            if route_name not in OPS_ROUTES:
                admitted, retry_after = self.limiter.allow(request.client)
                if not admitted:
                    registry.counter("serve.rate_limited").inc()
                    raise HttpError(
                        429,
                        f"rate limit exceeded for client {request.client!r}",
                        headers={"Retry-After": f"{retry_after:.3f}"},
                        retry_after_s=retry_after,
                    )
                if not self.gate.try_acquire():
                    # Load shedding: saturated workers answer immediately
                    # with an honest back-off instead of queueing without
                    # bound behind work they have no capacity for.
                    registry.counter("serve.shed").inc()
                    retry_after = self.gate.retry_after_s(
                        registry.histogram("serve.latency_s").mean_s
                    )
                    raise HttpError(
                        503,
                        f"server saturated ({self.gate.inflight} requests "
                        f"in flight, cap {self.gate.max_inflight})",
                        headers={"Retry-After": f"{retry_after:.3f}"},
                        retry_after_s=retry_after,
                    )
                gated = True
            self.inflight += 1
            registry.gauge("serve.inflight").set(self.inflight)
            try:
                with span("serve.request", route=route_name, method=request.method):
                    payload = await route.handler(self, request, **params)
            finally:
                self.inflight -= 1
                registry.gauge("serve.inflight").set(self.inflight)
            if isinstance(payload, Response):
                response = payload
            else:
                response = Response.json(self.envelope(payload))
        except HttpError as exc:
            if request.internal:
                return (
                    Response.json(
                        exc.payload(), status=exc.status, headers=exc.headers
                    ),
                    route_name,
                )
            response = Response.json(
                self.envelope(exc.payload()), status=exc.status,
                headers=exc.headers,
            )
        except ReproError as exc:
            # Library guards rejecting an input are client errors, not 500s.
            response = Response.json(
                self.envelope({"error": str(exc), "status": 400}), status=400
            )
        except Exception as exc:  # noqa: BLE001 - never kill the connection loop
            logger.exception("request.failed method=%s path=%s", request.method, request.path)
            if request.internal:
                return (
                    Response.json(
                        {"error": f"internal error: {type(exc).__name__}"},
                        status=500,
                    ),
                    route_name,
                )
            response = Response.json(
                self.envelope(
                    {"error": f"internal error: {type(exc).__name__}", "status": 500}
                ),
                status=500,
            )
        finally:
            if gated:
                self.gate.release()
        elapsed = perf_counter() - start
        registry.counter("serve.requests").inc()
        registry.counter(f"serve.requests.{route_name}").inc()
        registry.counter(f"serve.responses.{response.status // 100}xx").inc()
        registry.histogram("serve.latency_s").observe(elapsed)
        registry.histogram(f"serve.latency_s.{route_name}").observe(elapsed)
        logger.info(
            "request %s",
            kv(
                method=request.method,
                path=request.path,
                status=response.status,
                ms=elapsed * 1e3,
                client=request.client,
            ),
        )
        return response, route_name

    # -- worker-to-worker requests ----------------------------------------------

    async def peer_request(
        self,
        worker_index: int,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        timeout_s: float = 10.0,
    ) -> Tuple[int, Any]:
        """One HTTP request to a peer worker's internal listener.

        Returns ``(status, parsed_json_body)``.  Raises :class:`HttpError`
        503 when the peer is unknown or unreachable (e.g. mid-restart
        after a crash) — callers surface that as "job temporarily
        unresolvable", which the supervisor heals within its backoff.
        """
        port = self.peers.get(worker_index)
        if port is None:
            raise HttpError(
                503, f"no such worker {worker_index} (stale job id?)"
            )
        payload = body or b""
        trace_id = current_trace_id()
        trace_header = (
            f"X-Trace-Id: {trace_id}\r\n" if trace_id is not None else ""
        )
        head = (
            f"{method} {path} HTTP/1.0\r\n"
            f"Host: 127.0.0.1:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{trace_header}"
            "Content-Type: application/json\r\n\r\n"
        ).encode("latin-1")
        try:
            with span("serve.peer", worker=worker_index, path=path):
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection("127.0.0.1", port), timeout_s
                )
                try:
                    writer.write(head + payload)
                    await writer.drain()
                    raw = await asyncio.wait_for(reader.read(-1), timeout_s)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            metrics().counter("serve.internal.peer_errors").inc()
            raise HttpError(
                503,
                f"worker {worker_index} unreachable "
                f"({type(exc).__name__}) — it may be restarting",
                retry_after_s=1.0,
            )
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise HttpError(
                503, f"worker {worker_index} sent a malformed response"
            )
        import json as _json

        data = _json.loads(body_blob.decode("utf-8")) if body_blob.strip() else None
        return status, data

    # -- the HTTP/1.1 protocol --------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        internal: bool = False,
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else "local"
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request, keep_alive = await self._read_request(reader, peer_host)
                if request is None:
                    break
                request.internal = internal
                response = await self.dispatch(request)
                close = (
                    not keep_alive
                    or self.draining
                    or response.headers.get("Connection") == "close"
                )
                await self._write_response(writer, response, close)
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            pass  # client went away or idled out — normal churn
        except asyncio.CancelledError:
            pass  # drain cancelled an idle keep-alive connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, peer_host: str
    ) -> Tuple[Optional[Request], bool]:
        """Parse one request; ``(None, False)`` on a cleanly closed socket."""
        try:
            line = await asyncio.wait_for(reader.readline(), IDLE_TIMEOUT_S)
        except asyncio.TimeoutError:
            return None, False
        if not line.strip():
            return None, False
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ConnectionError("malformed request line")
        method, target, http_version = parts
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            header_line = await asyncio.wait_for(reader.readline(), IDLE_TIMEOUT_S)
            total += len(header_line)
            if total > MAX_HEADER_BYTES:
                raise ConnectionError("header block too large")
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ConnectionError("request body too large")
        body = await reader.readexactly(length) if length else b""
        path, query = Request.parse_target(target)
        client = headers.get("x-client-id", peer_host)
        keep_alive = (
            http_version != "HTTP/1.0"
            and headers.get("connection", "").lower() != "close"
        )
        return (
            Request(
                method=method.upper(),
                path=path,
                query=query,
                headers=headers,
                body=body,
                client=client,
            ),
            keep_alive,
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, close: bool
    ) -> None:
        head = [
            f"HTTP/1.1 {response.status} {response.reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"X-Run-Id: {self.manifest.run_id}",
            f"X-Schema-Version: {self.schema_version}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if self.config.worker_index is not None:
            head.append(f"X-Worker: {self.config.worker_index}")
        for name, value in response.headers.items():
            if name.lower() != "connection":
                head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(response.body)
        await writer.drain()

    # -- lifecycle ---------------------------------------------------------------

    async def start_server(self) -> Tuple[str, int]:
        """Bind the listener and spawn job workers; returns (host, port).

        Under a supervisor the public and internal listening sockets were
        bound before the fork (``listen_sock`` / ``internal_sock``) and
        are adopted here instead of binding fresh ones — that is what
        lets N workers share one port and keeps internal ports stable
        across crash restarts.
        """
        self.startup()
        self._shutdown = asyncio.Event()
        self.jobs.start()
        if self.listen_sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self.listen_sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.config.host,
                self.config.port,
                family=socket.AF_INET,
            )
        sockname = self._server.sockets[0].getsockname()
        self.bound_port = sockname[1]
        if self.internal_sock is not None:

            async def handle_internal(reader, writer):
                await self._handle_connection(reader, writer, internal=True)

            self._internal_server = await asyncio.start_server(
                handle_internal, sock=self.internal_sock
            )
        logger.info(
            "serve.listening %s",
            kv(
                host=self.config.host,
                port=self.bound_port,
                worker=self.config.worker_index,
            ),
        )
        return self.config.host, self.bound_port

    def request_shutdown(self) -> None:
        """Begin a graceful drain (signal handlers and tests call this)."""
        self.draining = True
        if self._shutdown is not None:
            self._shutdown.set()

    async def _drain(self) -> None:
        """Stop accepting, let in-flight work finish, tear down bounded."""
        config = self.config
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._internal_server is not None:
            self._internal_server.close()
            await self._internal_server.wait_closed()
        deadline = time.monotonic() + config.drain_timeout_s
        while self.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        # Remaining connections are idle keep-alives (or past the drain
        # budget): close them so nothing outlives the loop.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.jobs.close(drain=True, timeout_s=config.drain_timeout_s)
        self.executor.shutdown(wait=True)
        if getattr(self, "_installed_tracer", False):
            set_tracer(None)
            self._installed_tracer = False
        set_log_run_id(None)
        logger.info(
            "serve.drained %s",
            kv(inflight=self.inflight, uptime_s=time.time() - self.started_unix),
        )

    async def serve_until_shutdown(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`), then drain."""
        await self.start_server()
        if install_signals:
            loop = asyncio.get_event_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or platform without signal support
        assert self._shutdown is not None
        await self._shutdown.wait()
        self.draining = True
        await self._drain()

    def run(self) -> int:
        """Blocking entry point used by ``repro serve``; exits 0 on drain."""
        self.startup()
        if self.listen_sock is None:
            # Bind before printing so ``--port 0`` announces the real
            # ephemeral port (SupervisorHandle and operators parse it).
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.config.host, self.config.port))
            sock.listen(128)
            self.listen_sock = sock
        port = self.listen_sock.getsockname()[1]
        print(
            f"serving on http://{self.config.host}:{port} "
            f"[run] {self.manifest.run_id}",
            flush=True,
        )
        asyncio.run(self.serve_until_shutdown())
        print("drained, bye")
        return 0


class ServerHandle:
    """A server running on a background thread (tests and benchmarks).

    Usage::

        handle = ServerHandle(ServeConfig(port=0)).start()
        ... http requests against handle.port ...
        handle.stop()
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.app = ServeApp(config)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout_s: float = 60.0) -> "ServerHandle":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                self.host, self.port = await self.app.start_server()
            except BaseException as exc:  # noqa: BLE001 - surfaced to start()
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            assert self.app._shutdown is not None
            await self.app._shutdown.wait()
            self.app.draining = True
            await self.app._drain()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self.app.request_shutdown)
            self._thread.join(timeout_s)
