"""Request micro-batching and the in-memory response cache.

Two layers sit between the HTTP handlers and the evaluation model:

* :class:`LruCache` — a bounded response cache keyed by the canonical
  request payload.  Repeated identical queries (the common case for a
  dashboard polling the same what-if scenario) are answered without
  touching the model at all.  This sits *over* the persistent
  :class:`repro.accel.cache.ScheduleCache`, which still de-duplicates the
  expensive scheduling work across distinct-but-structurally-equal design
  points on a miss.

* :class:`MicroBatcher` — coalesces concurrent requests into one
  vectorized model call.  The first request to arrive opens a short
  collection window (``window_s``); every request landing inside it joins
  the batch, identical payloads are merged onto one computation
  (request coalescing), and the whole batch runs as a single executor
  call.  Results are deterministic per item, so a batched run returns
  exactly what the same requests would return evaluated sequentially —
  batching changes wall-clock, never values.

Both layers publish their traffic to the process metrics registry
(``serve.cache.*``, ``serve.batch.*``).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

from repro.obs.metrics import metrics
from repro.obs.trace import span

__all__ = ["LruCache", "MicroBatcher"]


class LruCache:
    """Bounded least-recently-used map with hit/miss accounting.

    ``capacity <= 0`` disables the cache (every lookup misses, nothing is
    stored), so one code path serves both cached and uncached modes.
    """

    def __init__(self, capacity: int, name: str = "response"):
        self.capacity = int(capacity)
        self.name = name
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)``; a hit refreshes the entry's recency."""
        if self.capacity > 0:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                metrics().counter(f"serve.cache.{self.name}.hits").inc()
                return True, value
        self.misses += 1
        metrics().counter(f"serve.cache.{self.name}.misses").inc()
        return False, None

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.capacity > 0 and key in self._entries


class MicroBatcher:
    """Coalesce concurrent awaitable requests into one vectorized call.

    Parameters
    ----------
    batch_fn:
        ``batch_fn(items) -> results`` evaluating a list of payloads and
        returning one result per payload, in order.  It runs off the event
        loop (in *executor*), must be thread-safe with itself, and must be
        a pure function of each item — the batcher relies on that to merge
        identical payloads and to guarantee batched == sequential results.
    max_batch:
        Largest number of *distinct* payloads per flush; more pending
        requests simply flush in successive batches.
    window_s:
        Collection window opened by the first request of a batch.  Small
        (milliseconds): long enough for concurrent requests to coalesce,
        short enough to be invisible in client latency.
    executor:
        Where ``batch_fn`` runs (``None`` = the loop's default executor).
    """

    def __init__(
        self,
        batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
        max_batch: int = 64,
        window_s: float = 0.002,
        executor=None,
        name: str = "evaluate",
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.batch_fn = batch_fn
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.executor = executor
        self.name = name
        # key -> (item, [futures awaiting that item's result])
        self._pending: "OrderedDict[Hashable, Tuple[Any, List[asyncio.Future]]]"
        self._pending = OrderedDict()
        self._flusher: Optional[asyncio.Task] = None

    @property
    def pending(self) -> int:
        return len(self._pending)

    async def submit(self, key: Hashable, item: Any) -> Any:
        """Evaluate *item*, coalescing with concurrent identical requests.

        *key* is the canonical identity of *item*: submissions sharing a
        key while a batch is forming share one computation and one result.
        """
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        entry = self._pending.get(key)
        if entry is not None:
            entry[1].append(future)
            metrics().counter(f"serve.batch.{self.name}.coalesced").inc()
        else:
            self._pending[key] = (item, [future])
            if self._flusher is None or self._flusher.done():
                self._flusher = loop.create_task(self._flush_after_window())
        metrics().counter(f"serve.batch.{self.name}.requests").inc()
        return await future

    async def _flush_after_window(self) -> None:
        try:
            await asyncio.sleep(self.window_s)
            while self._pending:
                await self._flush_once()
        finally:
            self._flusher = None

    async def _flush_once(self) -> None:
        batch: List[Tuple[Hashable, Any, List[asyncio.Future]]] = []
        while self._pending and len(batch) < self.max_batch:
            key, (item, futures) = self._pending.popitem(last=False)
            batch.append((key, item, futures))
        if not batch:
            return
        registry = metrics()
        registry.counter(f"serve.batch.{self.name}.flushes").inc()
        registry.counter(f"serve.batch.{self.name}.items").inc(len(batch))
        registry.gauge(f"serve.batch.{self.name}.last_size").set(len(batch))
        items = [item for _, item, _ in batch]
        loop = asyncio.get_event_loop()
        try:
            with span(f"serve.batch.{self.name}", items=len(items)), registry.histogram(
                f"serve.batch.{self.name}.flush_s"
            ).time():
                results = await loop.run_in_executor(
                    self.executor, self._run_batch, items
                )
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for _, _, futures in batch:
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        for (_, _, futures), result in zip(batch, results):
            for future in futures:
                if not future.done():
                    future.set_result(result)

    def _run_batch(self, items: Sequence[Any]) -> Sequence[Any]:
        results = self.batch_fn(items)
        if len(results) != len(items):
            raise RuntimeError(
                f"batch_fn returned {len(results)} results for "
                f"{len(items)} items"
            )
        return results
