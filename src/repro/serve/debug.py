"""Flight recorder: a bounded ring of recent request records.

Operators of a live fleet need something between ``/metrics`` aggregates
and reading code: *which* requests were slow, *where* each one spent its
time, and how a multi-worker request hung together.  The
:class:`FlightRecorder` keeps the last N requests (route, status,
duration, trace id, top spans, worker) in a ``deque`` ring — O(1) record,
oldest evicted first, nothing persisted — and the ``/debug/requests``,
``/debug/slow``, and ``/debug/trace/{id}`` endpoints expose it,
fleet-merged across workers over the internal loopback (METHODOLOGY §15).

:func:`chrome_trace` turns one trace's records — possibly gathered from
several worker processes — into Chrome trace-event JSON with flow arrows
stitching the hops, so a cross-worker request renders as one timeline in
Perfetto.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import Span

__all__ = ["FlightRecorder", "RequestRecord", "chrome_trace"]

#: Spans retained per record: the longest ones explain the latency; a
#: pathological request cannot bloat the ring past this.
MAX_SPANS_PER_RECORD = 64


def _span_dict(s: Span) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": s.name,
        "start_s": s.start_s,
        "duration_s": s.duration_s,
        "pid": s.pid,
        "tid": s.tid,
        "depth": s.depth,
    }
    if s.attrs:
        out["attrs"] = dict(s.attrs)
    return out


@dataclass
class RequestRecord:
    """One finished request as the flight recorder remembers it."""

    trace_id: str
    route: str
    method: str
    path: str
    status: int
    duration_s: float
    start_unix: float
    client: str = ""
    worker: Optional[int] = None
    internal: bool = False
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "route": self.route,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "duration_s": self.duration_s,
            "start_unix": self.start_unix,
            "client": self.client,
            "worker": self.worker,
            "internal": self.internal,
            "spans": self.spans,
        }


class FlightRecorder:
    """Bounded, thread-safe ring buffer of :class:`RequestRecord` rows.

    ``capacity`` bounds memory for a long-running server: the ring holds
    the newest *capacity* records and silently evicts the oldest.  A
    trace therefore stays resolvable for as long as its records survive
    eviction — the recorder is a debugging window, not an archive.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Deque[RequestRecord] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def record(
        self,
        trace_id: str,
        route: str,
        method: str,
        path: str,
        status: int,
        duration_s: float,
        start_unix: Optional[float] = None,
        client: str = "",
        worker: Optional[int] = None,
        internal: bool = False,
        spans: Sequence[Span] = (),
    ) -> RequestRecord:
        """Append one finished request; returns the stored record."""
        kept = sorted(spans, key=lambda s: s.duration_s, reverse=True)
        kept = sorted(kept[:MAX_SPANS_PER_RECORD], key=lambda s: s.start_s)
        row = RequestRecord(
            trace_id=trace_id,
            route=route,
            method=method,
            path=path,
            status=int(status),
            duration_s=float(duration_s),
            start_unix=time.time() if start_unix is None else float(start_unix),
            client=client,
            worker=worker,
            internal=internal,
            spans=[_span_dict(s) for s in kept],
        )
        with self._lock:
            self._ring.append(row)
        return row

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def tail(self, n: int = 50) -> List[RequestRecord]:
        """The newest *n* records, oldest first."""
        with self._lock:
            rows = list(self._ring)
        return rows[-max(0, int(n)):]

    def slowest(self, n: int = 20) -> List[RequestRecord]:
        """The *n* longest-running retained records, slowest first."""
        with self._lock:
            rows = list(self._ring)
        rows.sort(key=lambda r: r.duration_s, reverse=True)
        return rows[: max(0, int(n))]

    def trace(self, trace_id: str) -> List[RequestRecord]:
        """Every retained record of *trace_id*, oldest first."""
        with self._lock:
            return [r for r in self._ring if r.trace_id == trace_id]


def chrome_trace(
    trace_id: str, records: Iterable[Dict[str, Any]]
) -> Dict[str, Any]:
    """One trace's records (dict form, any worker) as a Chrome trace.

    Spans become complete ``"ph": "X"`` events on ``(worker, tid)``
    tracks; each worker gets a ``process_name`` metadata row; and flow
    events (``s``/``t``/``f`` sharing the trace id) draw arrows from hop
    to hop so the supervisor loopback renders as one connected request.
    Span timestamps are machine-wide ``CLOCK_MONOTONIC``, so rebasing to
    the earliest span aligns every process on a shared timeline.
    """
    rows = sorted(records, key=lambda r: float(r.get("start_unix") or 0.0))
    events: List[Dict[str, Any]] = []
    starts: List[float] = [
        float(s["start_s"]) for r in rows for s in (r.get("spans") or [])
    ]
    epoch = min(starts) if starts else 0.0
    seen_pids: Dict[int, str] = {}
    anchors: List[float] = []  # one flow anchor (ts µs) per record with spans
    pids: List[int] = []
    for row in rows:
        spans = row.get("spans") or []
        worker = row.get("worker")
        label = "single" if worker is None else f"worker {worker}"
        first_ts: Optional[float] = None
        pid = 0
        for s in spans:
            pid = int(s.get("pid", 0))
            ts = (float(s["start_s"]) - epoch) * 1e6
            if first_ts is None or ts < first_ts:
                first_ts = ts
            if pid not in seen_pids:
                seen_pids[pid] = label
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": f"repro serve [{label}]"},
                    }
                )
            args = dict(s.get("attrs") or {})
            args["trace_id"] = trace_id
            args["route"] = row.get("route")
            events.append(
                {
                    "name": s.get("name", "span"),
                    "cat": "repro",
                    "ph": "X",
                    "ts": ts,
                    "dur": float(s.get("duration_s", 0.0)) * 1e6,
                    "pid": pid,
                    "tid": int(s.get("tid", 0)),
                    "args": args,
                }
            )
        if first_ts is not None:
            anchors.append(first_ts)
            pids.append(pid)
    if len(anchors) > 1:
        for i, (ts, pid) in enumerate(zip(anchors, pids)):
            phase = "s" if i == 0 else ("f" if i == len(anchors) - 1 else "t")
            event: Dict[str, Any] = {
                "name": "request",
                "cat": "repro.flow",
                "ph": phase,
                "ts": ts,
                "pid": pid,
                "tid": 0,
                "id": trace_id,
            }
            if phase == "f":
                event["bp"] = "e"
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.serve.debug", "trace_id": trace_id},
    }
