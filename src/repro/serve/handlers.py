"""Endpoint implementations for the serving layer.

Each handler is ``async def handler(app, request, **path_params)`` taking
the :class:`repro.serve.app.ServeApp` and a parsed
:class:`repro.serve.router.Request`; it returns a JSON-able payload (the
app wraps it into the provenance envelope) or a ready
:class:`~repro.serve.router.Response` for non-JSON bodies.

The query endpoints reuse the *same* builder functions as ``repro
export`` (:func:`repro.reporting.export.artifact_builders`, the study
objects, :func:`repro.wall.wall_sensitivity`, ...), so a served payload
is byte-for-byte the number set the offline artifact carries — the golden
parity the drift comparator checks in the test suite and CI.
"""

from __future__ import annotations

import os
import platform
import re
import time
from typing import Any, Dict, List, Mapping, Sequence

from repro.errors import ReproError
from repro.serve.router import HttpError, Request, Response
from repro.serve import jobs as jobmod

__all__ = [
    "register_internal_routes",
    "register_routes",
    "render_prometheus",
    "render_prometheus_multi",
]


# -- operational surface ------------------------------------------------------


async def healthz(app, request: Request) -> Dict[str, Any]:
    counts = app.jobs.counts()
    payload: Dict[str, Any] = {
        "status": "draining" if app.draining else "ok",
        "uptime_s": time.time() - app.started_unix,
        "inflight_requests": app.inflight,
        "jobs": counts,
        "batching": app.config.batching,
        "workloads": app.workload_names(),
        "inflight_cap": app.gate.max_inflight,
        "shed_requests": app.gate.shed,
    }
    if app.config.worker_index is not None:
        # The replica answering this probe — CI's kill-and-restart check
        # reads the pid here to target one worker and observe its
        # replacement come up.
        payload["worker"] = {"index": app.config.worker_index, "pid": os.getpid()}
    return payload


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def _histogram_series(entry: Mapping[str, object]) -> List[tuple]:
    """A histogram snapshot entry as cumulative ``(le, count)`` pairs.

    Only the sparse buckets actually hit are emitted (plus the mandatory
    ``+Inf`` terminator), with ``le`` set to each log-linear bucket's
    upper bound — cumulative counts, as the Prometheus histogram contract
    requires, so ``_bucket{le="+Inf"}`` always equals ``_count``.
    """
    import math

    from repro.obs.metrics import bucket_bounds

    buckets = entry.get("buckets") or {}
    pairs = sorted((int(k), int(v)) for k, v in buckets.items())  # type: ignore[union-attr]
    cumulative = 0
    series: List[tuple] = []
    for index, count in pairs:
        cumulative += count
        upper = bucket_bounds(index)[1]
        le = "+Inf" if math.isinf(upper) else f"{upper:.9g}"
        series.append((le, cumulative))
    if not series or series[-1][0] != "+Inf":
        series.append(("+Inf", cumulative))
    return series


def render_prometheus(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    Counters and gauges map directly; timers become summaries with
    ``_count`` and ``_sum`` series; histograms become proper histogram
    families with cumulative ``_bucket{le="..."}`` series over the
    log-linear bucket bounds plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        prom = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {int(entry.get('value', 0))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {float(entry.get('value', 0.0)):g}")
        elif kind == "timer":
            lines.append(f"# TYPE {prom} summary")
            lines.append(f"{prom}_count {int(entry.get('count', 0))}")
            lines.append(f"{prom}_sum {float(entry.get('total_s', 0.0)):.9g}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            for le, cumulative in _histogram_series(entry):
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{prom}_sum {float(entry.get('sum', 0.0)):.9g}")
            lines.append(f"{prom}_count {int(entry.get('count', 0))}")
    return "\n".join(lines) + "\n"


def render_prometheus_multi(
    snapshots: Mapping[int, Mapping[str, Mapping[str, object]]]
) -> str:
    """Render per-worker snapshots with ``{worker="i"}`` series labels.

    *snapshots* maps worker index to that worker's
    :meth:`MetricsRegistry.snapshot`.  Each metric name gets one ``TYPE``
    line and one labeled series per worker that reported it, so a single
    ``/metrics`` scrape of any replica shows the whole fleet.
    """
    lines: List[str] = []
    names = sorted({name for snap in snapshots.values() for name in snap})
    for name in names:
        prom = _prom_name(name)
        kind = next(
            snap[name].get("type")
            for snap in snapshots.values()
            if name in snap
        )
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            for worker in sorted(snapshots):
                entry = snapshots[worker].get(name)
                if entry is not None:
                    lines.append(
                        f'{prom}{{worker="{worker}"}} '
                        f"{int(entry.get('value', 0))}"
                    )
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            for worker in sorted(snapshots):
                entry = snapshots[worker].get(name)
                if entry is not None:
                    lines.append(
                        f'{prom}{{worker="{worker}"}} '
                        f"{float(entry.get('value', 0.0)):g}"
                    )
        elif kind == "timer":
            lines.append(f"# TYPE {prom} summary")
            for worker in sorted(snapshots):
                entry = snapshots[worker].get(name)
                if entry is not None:
                    lines.append(
                        f'{prom}_count{{worker="{worker}"}} '
                        f"{int(entry.get('count', 0))}"
                    )
                    lines.append(
                        f'{prom}_sum{{worker="{worker}"}} '
                        f"{float(entry.get('total_s', 0.0)):.9g}"
                    )
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            for worker in sorted(snapshots):
                entry = snapshots[worker].get(name)
                if entry is None:
                    continue
                for le, cumulative in _histogram_series(entry):
                    lines.append(
                        f'{prom}_bucket{{worker="{worker}",le="{le}"}} '
                        f"{cumulative}"
                    )
                lines.append(
                    f'{prom}_sum{{worker="{worker}"}} '
                    f"{float(entry.get('sum', 0.0)):.9g}"
                )
                lines.append(
                    f'{prom}_count{{worker="{worker}"}} '
                    f"{int(entry.get('count', 0))}"
                )
    return "\n".join(lines) + "\n"


async def metrics_text(app, request: Request) -> Response:
    from repro.obs.metrics import metrics

    content_type = "text/plain; version=0.0.4; charset=utf-8"
    local = metrics().snapshot()
    if app.config.worker_index is None or not app.peers:
        # Single-process mode keeps the unlabeled format — existing
        # dashboards and the CI smoke greps parse it as-is.
        return Response.text(render_prometheus(local), content_type=content_type)
    snapshots: Dict[int, Mapping[str, Mapping[str, object]]] = {
        app.config.worker_index: local
    }
    for index in sorted(app.peers):
        try:
            status, data = await app.peer_request(
                index, "GET", "/internal/metrics"
            )
        except HttpError:
            continue  # peer mid-restart: report the workers we can reach
        if status == 200 and isinstance(data, dict):
            snapshots[int(data.get("worker", index))] = data.get("metrics", {})
    return Response.text(
        render_prometheus_multi(snapshots), content_type=content_type
    )


# -- flight recorder (debug surface) ------------------------------------------
#
# Ops-exempt like /metrics: an overloaded or draining server is exactly
# when operators need the recorder.  Fleet-merged like /sweeps — any
# replica answers for the whole fleet, skipping peers mid-restart.


def _bounded_n(request: Request, default: int, cap: int = 1000) -> int:
    n = request.param_int("n", default)
    if n is None or n < 1:
        raise HttpError(400, f"query parameter n={n!r} must be >= 1")
    return min(n, cap)


async def _peer_debug_rows(app, path: str, key: str) -> List[Dict[str, Any]]:
    """Gather one debug listing from every reachable peer."""
    rows: List[Dict[str, Any]] = []
    for index in sorted(app.peers):
        try:
            status, data = await app.peer_request(index, "GET", path)
        except HttpError:
            continue  # peer mid-restart: report the workers we can reach
        if status == 200 and isinstance(data, dict):
            rows.extend(data.get(key) or [])
    return rows


async def debug_requests(app, request: Request) -> Dict[str, Any]:
    """The newest ``n`` request records across the fleet (oldest first)."""
    n = _bounded_n(request, 50)
    rows = [r.to_dict() for r in app.recorder.tail(n)]
    if app.config.worker_index is not None and app.peers:
        rows.extend(
            await _peer_debug_rows(
                app, f"/internal/debug/requests?n={n}", "requests"
            )
        )
    rows.sort(key=lambda r: float(r.get("start_unix") or 0.0))
    return {
        "requests": rows[-n:],
        "capacity": app.recorder.capacity,
        "recorded": len(app.recorder),
    }


async def debug_slow(app, request: Request) -> Dict[str, Any]:
    """The ``n`` slowest retained records across the fleet, slowest first."""
    n = _bounded_n(request, 20)
    rows = [r.to_dict() for r in app.recorder.slowest(n)]
    if app.config.worker_index is not None and app.peers:
        rows.extend(
            await _peer_debug_rows(app, f"/internal/debug/slow?n={n}", "requests")
        )
    rows.sort(key=lambda r: float(r.get("duration_s") or 0.0), reverse=True)
    return {"requests": rows[:n]}


async def debug_trace(app, request: Request, trace_id: str) -> Dict[str, Any]:
    """Every retained record of one trace, stitched across the fleet.

    The response carries the raw records (each with its spans) plus a
    ready Chrome trace (``chrome_trace`` key) with per-worker process
    tracks and flow arrows over the loopback hops — save it to a file and
    open it in Perfetto.
    """
    from repro.serve.debug import chrome_trace

    records = [r.to_dict() for r in app.recorder.trace(trace_id)]
    if app.config.worker_index is not None and app.peers:
        records.extend(
            await _peer_debug_rows(
                app, f"/internal/debug/trace/{trace_id}", "records"
            )
        )
    if not records:
        raise HttpError(
            404,
            f"no records for trace {trace_id!r} (the flight recorder keeps "
            f"the newest {app.recorder.capacity} requests per worker)",
        )
    records.sort(key=lambda r: float(r.get("start_unix") or 0.0))
    workers = sorted(
        {r.get("worker") for r in records if r.get("worker") is not None}
    )
    return {
        "trace_id": trace_id,
        "records": records,
        "span_count": sum(len(r.get("spans") or []) for r in records),
        "workers": workers,
        "chrome_trace": chrome_trace(trace_id, records),
    }


async def version(app, request: Request) -> Dict[str, Any]:
    import repro

    return {
        "version": repro.__version__,
        "git": app.git,
        "schema_version": app.schema_version,
        "python": platform.python_version(),
    }


# -- artifacts (export parity) ------------------------------------------------


async def artifacts_index(app, request: Request) -> Dict[str, Any]:
    return {"artifacts": app.artifact_names()}


async def artifact(app, request: Request, name: str) -> Any:
    return await app.artifact_payload(name)


# -- technology backends ("does the wall move?") -------------------------------


def _tech_param(app, request: Request):
    """The validated ``?tech=`` backend, or ``None`` when absent/cmos.

    ``None`` keeps the legacy CMOS code path (and the response shape)
    byte-identical to a request without the parameter.
    """
    name = request.query.get("tech")
    if name is None or name == "cmos":
        return None
    return app.tech_backend(name)


async def tech_index(app, request: Request) -> Dict[str, Any]:
    """Every registered technology backend with parameters and hashes."""
    from repro.tech import backend_index

    return {"technologies": backend_index(), "baseline": "cmos"}


# -- CMOS model queries (Fig 3) -----------------------------------------------


async def cmos_gains(app, request: Request) -> Dict[str, Any]:
    """Physical chip gains at a node (the Fig 3d quantity, one point).

    Query parameters: ``node`` (required), ``frequency_mhz`` (default
    1000), ``area_mm2`` (default 100), ``tdp_w`` (optional — omitting it
    means an unconstrained power envelope), ``baseline_node`` (default
    45) for the normalisation corner, ``tech`` (optional — evaluate both
    chips under a registered technology backend's model instead of the
    fitted CMOS one; the response then carries a ``tech`` key).
    """
    node = request.param_float("node")
    if node is None:
        raise HttpError(400, "query parameter 'node' is required (e.g. node=5)")
    frequency = request.param_float("frequency_mhz", 1000.0)
    area = request.param_float("area_mm2", 100.0)
    tdp = request.param_float("tdp_w", None)
    baseline_node = request.param_float("baseline_node", 45.0)
    backend = _tech_param(app, request)

    def compute() -> Dict[str, Any]:
        model = app.model if backend is None else backend.model()
        gains = model.evaluate(node, frequency, area_mm2=area, tdp_w=tdp)
        base = model.evaluate(
            baseline_node, frequency, area_mm2=area, tdp_w=tdp
        )
        extra = {} if backend is None else {"tech": backend.name}
        return {
            **extra,
            "node_nm": gains.node_nm,
            "baseline_node_nm": base.node_nm,
            "frequency_mhz": frequency,
            "area_mm2": area,
            "tdp_w": tdp,
            "potential_transistors": gains.potential_transistors,
            "active_transistors": gains.active_transistors,
            "power_w": gains.power_w,
            "tdp_limited": gains.tdp_limited,
            "throughput_gain": gains.throughput / base.throughput,
            "energy_efficiency_gain": (
                gains.energy_efficiency / base.energy_efficiency
            ),
        }

    return await app.run_blocking(compute)


# -- case-study CSR series (Eqs 1-2) ------------------------------------------


async def csr_study(app, request: Request, study: str) -> Dict[str, Any]:
    """One case study's baseline-normalised CSR series and summary.

    ``?tech=<backend>`` re-decomposes the series under that technology's
    potential model (the counterfactual "what if these chips had been
    built in tech T"); without it the fitted CMOS model is used and the
    response is unchanged from earlier schema versions.
    """
    obj = app.study(study)
    backend = _tech_param(app, request)

    def compute() -> Dict[str, Any]:
        model = app.model if backend is None else backend.model()
        series = obj.performance_series(model)
        extra = {} if backend is None else {"tech": backend.name}
        return {
            **extra,
            "study": obj.name,
            "metric": series.metric,
            "baseline": series.baseline_name,
            "series": [
                {
                    "name": p.name,
                    "node_nm": p.node_nm,
                    "year": p.year,
                    "gain": p.gain,
                    "physical": p.physical,
                    "csr": p.csr,
                }
                for p in series
            ],
            "summary": obj.summary(model),
        }

    return await app.run_blocking(compute)


# -- wall projections and what-if (Eqs 5-6, Table V) --------------------------


async def wall_projections(app, request: Request) -> Any:
    """The Figs 15-16 projections — identical to the fig15_16 artifact.

    ``?tech=<backend>`` serves that technology's re-run projections
    instead (identical to the exported ``fig15_16_<backend>`` artifact),
    wrapped with the backend's name so responses are self-describing.
    """
    backend = _tech_param(app, request)
    if backend is None:
        return await app.artifact_payload("fig15_16")
    projections = await app.artifact_payload(f"fig15_16_{backend.name}")
    return {
        "tech": backend.name,
        "baseline": "cmos",
        "projections": projections,
    }


async def wall_whatif(app, request: Request) -> Dict[str, Any]:
    """What-if: re-evaluate one domain's wall under scaled Table V limits.

    Body: ``{"domain": ..., "metric"?: "performance"|"efficiency",
    "die_scale"?: 1.0, "tdp_scale"?: 1.0, "frequency_scale"?: 1.0}``.
    Scales multiply the domain's Table V die size, power budget, and
    clock; the response carries the perturbed physical limit and headroom
    next to the unperturbed baseline.
    """
    body = request.json_object()
    domain = body.get("domain")
    from repro.wall.limits import _limits

    if domain not in _limits():
        raise HttpError(
            400,
            f"unknown domain {domain!r}",
            valid_domains=sorted(_limits()),
        )
    metric = body.get("metric", "performance")
    if metric not in ("performance", "efficiency"):
        raise HttpError(
            400,
            f"unknown metric {metric!r}",
            valid_metrics=["performance", "efficiency"],
        )
    scales = {}
    for key in ("die_scale", "tdp_scale", "frequency_scale"):
        value = body.get(key, 1.0)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise HttpError(400, f"{key} must be a number, got {value!r}")
        if not (0.0 < float(value) <= 100.0):
            raise HttpError(400, f"{key}={value!r} outside (0, 100]")
        scales[key] = float(value)

    key = (
        "whatif", domain, metric,
        scales["die_scale"], scales["tdp_scale"], scales["frequency_scale"],
    )
    return await app.batched_whatif(key, {"domain": domain, "metric": metric, **scales})


def compute_whatif(app, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Blocking what-if evaluation (one perturbed wall point + baseline)."""
    from repro.wall import accelerator_wall, wall_sensitivity

    domain = params["domain"]
    metric = params["metric"]
    baseline = accelerator_wall(domain, app.model, metric)
    point = wall_sensitivity(
        domain,
        app.model,
        metric=metric,
        die_scales=(params["die_scale"],),
        tdp_scales=(params["tdp_scale"],),
        frequency_scales=(params["frequency_scale"],),
    )[0]
    low, high = baseline.headroom
    return {
        "domain": domain,
        "metric": metric,
        "scales": {
            "die": point.die_scale,
            "tdp": point.tdp_scale,
            "frequency": point.frequency_scale,
        },
        "baseline": {
            "physical_limit": baseline.physical_limit,
            "headroom_low": low,
            "headroom_high": high,
        },
        "scenario": {
            "physical_limit": point.physical_limit,
            "headroom_low": point.headroom_low,
            "headroom_high": point.headroom_high,
        },
    }


# -- DSE evaluation and attribution (Section VI) ------------------------------


def _design_params(body: Mapping[str, Any]) -> Dict[str, Any]:
    params = {
        "node_nm": body.get("node_nm", 45.0),
        "partition": body.get("partition", 1),
        "simplification": body.get("simplification", 1),
        "heterogeneity": body.get("heterogeneity", True),
    }
    for name in ("node_nm",):
        if not isinstance(params[name], (int, float)) or isinstance(
            params[name], bool
        ):
            raise HttpError(400, f"{name} must be a number, got {params[name]!r}")
    for name in ("partition", "simplification"):
        if not isinstance(params[name], int) or isinstance(params[name], bool):
            raise HttpError(
                400, f"{name} must be an integer, got {params[name]!r}"
            )
    if not isinstance(params["heterogeneity"], bool):
        raise HttpError(
            400,
            f"heterogeneity must be a boolean, got {params['heterogeneity']!r}",
        )
    return params


async def evaluate(app, request: Request) -> Dict[str, Any]:
    """Evaluate one accelerator design point (micro-batched).

    Body: ``{"workload": "S3D", "node_nm": 5, "partition": 64,
    "simplification": 9, "heterogeneity": true}``.  Concurrent requests
    coalesce into one vectorized model call; identical concurrent
    payloads share a single evaluation.
    """
    body = request.json_object()
    workload = body.get("workload", "S3D")
    if not isinstance(workload, str):
        raise HttpError(400, f"workload must be a string, got {workload!r}")
    app.workload(workload)  # validate abbrev up front -> 400, not batch error
    params = _design_params(body)
    key = (
        "evaluate", workload.upper(), float(params["node_nm"]),
        params["partition"], params["simplification"], params["heterogeneity"],
    )
    return await app.batched_evaluate(key, {"workload": workload, **params})


def compute_evaluate_batch(app, items: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Blocking evaluation of a batch of design-point requests.

    The batch is grouped by workload and each group runs through the
    vectorized array path (:meth:`ServeApp.batch_evaluator`), which shares
    the workload's schedule cache — design points with common structural
    parameters (partition, fusion window, pipeline latency) schedule once,
    and the per-point power math broadcasts as numpy columns.  Results are
    bit-identical to per-item ``evaluate_design`` and are returned in
    request order.
    """
    from repro.accel.design import DesignPoint

    designs: List[DesignPoint] = []
    for item in items:
        app.kernel(item["workload"])  # unknown workload -> 400 before math
        try:
            designs.append(
                DesignPoint(
                    node_nm=item["node_nm"],
                    partition=item["partition"],
                    simplification=item["simplification"],
                    heterogeneity=item["heterogeneity"],
                )
            )
        except ReproError as exc:
            raise HttpError(400, str(exc))

    groups: Dict[str, List[int]] = {}
    for i, item in enumerate(items):
        groups.setdefault(item["workload"].upper(), []).append(i)
    reports: List[Any] = [None] * len(items)
    for abbrev, indices in groups.items():
        evaluator = app.batch_evaluator(abbrev)
        batch = evaluator.evaluate([designs[i] for i in indices])
        for i, report in zip(indices, batch.reports()):
            reports[i] = report

    results: List[Dict[str, Any]] = []
    for design, report in zip(designs, reports):
        results.append(
            {
                "workload": report.kernel,
                "design": {
                    "node_nm": design.node_nm,
                    "partition": design.partition,
                    "simplification": design.simplification,
                    "heterogeneity": design.heterogeneity,
                },
                "runtime_s": report.runtime_s,
                "power_w": report.power_w,
                "energy_nj": report.energy_nj,
                "throughput_ops": report.throughput_ops,
                "energy_efficiency": report.energy_efficiency,
            }
        )
    return results


async def attribute(app, request: Request) -> Dict[str, Any]:
    """Fig 14 gain attribution for one workload.

    Body: ``{"workload": "FFT", "metric"?: "throughput", "node_nm"?: 5,
    "baseline_node_nm"?: 45}``.  Runs over the representative (fast)
    sweep subsets unless ``full`` is true.
    """
    body = request.json_object()
    workload = body.get("workload")
    if not isinstance(workload, str):
        raise HttpError(400, "body field 'workload' (string) is required")
    app.workload(workload)
    metric = body.get("metric", "throughput")
    if metric not in ("throughput", "energy_efficiency"):
        raise HttpError(
            400,
            f"unknown metric {metric!r}",
            valid_metrics=["throughput", "energy_efficiency"],
        )
    full = bool(body.get("full", False))

    def compute() -> Dict[str, Any]:
        kernel = app.kernel(workload)
        partitions, simplifications = app.fast_subsets(full)
        attribution = app.engine.attribute(
            kernel,
            metric=metric,
            node_nm=float(body.get("node_nm", 5.0)),
            baseline_node_nm=float(body.get("baseline_node_nm", 45.0)),
            partitions=partitions,
            simplifications=simplifications,
        )
        return {
            "workload": kernel.name,
            "metric": metric,
            "total_gain": attribution.total_gain,
            "csr": attribution.csr,
            "shares": attribution.shares,
        }

    return await app.run_blocking(compute)


# -- background sweeps --------------------------------------------------------


async def sweeps_submit(app, request: Request) -> Any:
    """Submit a full sweep as a background job; returns the job id.

    Body: ``{"workload": "S3D", "nodes"?: [...], "partitions"?: [...],
    "simplifications"?: [...], "full"?: false}``.
    """
    body = request.json_object()
    workload = body.get("workload", "S3D")
    if not isinstance(workload, str):
        raise HttpError(400, f"workload must be a string, got {workload!r}")
    app.workload(workload)
    params: Dict[str, Any] = {"workload": workload, "full": bool(body.get("full", False))}
    for name in ("nodes", "partitions", "simplifications"):
        values = body.get(name)
        if values is None:
            continue
        if not isinstance(values, list) or not values:
            raise HttpError(400, f"{name} must be a non-empty JSON array")
        params[name] = values
    try:
        job = app.jobs.submit("sweep", params)
    except jobmod.QueueFullError as exc:
        raise HttpError(503, str(exc), headers={"Retry-After": "1"})
    return Response.json(
        app.envelope({"job": job.to_dict(include_result=False)}), status=202
    )


async def sweeps_list(app, request: Request) -> Dict[str, Any]:
    jobs = [job.to_dict(include_result=False) for job in app.jobs.jobs()]
    counts = app.jobs.counts()
    for index in sorted(app.peers):
        try:
            status, data = await app.peer_request(index, "GET", "/internal/jobs")
        except HttpError:
            continue  # peer mid-restart: list the jobs we can reach
        if status != 200 or not isinstance(data, dict):
            continue
        jobs.extend(data.get("jobs") or [])
        for state, count in (data.get("counts") or {}).items():
            counts[state] = counts.get(state, 0) + int(count)
    jobs.sort(key=lambda job: job.get("submitted_unix") or 0.0)
    return {"jobs": jobs, "counts": counts}


def _job_or_404(app, job_id: str):
    try:
        return app.jobs.get(job_id)
    except jobmod.UnknownJobError:
        raise HttpError(
            404,
            f"no job {job_id!r} (settled jobs are evicted after "
            f"{app.jobs.history} entries)",
        )


def _cancel_or_409(app, job_id: str) -> Dict[str, Any]:
    """Cancel a local queued job; 409 when it already left ``queued``."""
    job = _job_or_404(app, job_id)
    was = job.status
    job = app.jobs.cancel(job_id)
    if job.status != jobmod.CANCELLED:
        raise HttpError(
            409,
            f"job {job_id!r} is {was}; only queued jobs can be cancelled",
            status_now=job.status,
        )
    return {"job": job.to_dict(include_result=False)}


async def _forward_job(app, method: str, job_id: str) -> Any:
    """Route a job poll/cancel to the worker that owns *job_id*.

    Returns ``None`` when the job is local (resolve it here); otherwise
    the owning peer's payload, with peer-side errors re-raised so the
    client sees the same 404/409 it would get from the owner directly.
    """
    owner = jobmod.job_owner(job_id)
    if (
        owner is None
        or owner == app.config.worker_index
        or owner not in app.peers
    ):
        return None
    status, data = await app.peer_request(
        owner, method, f"/internal/jobs/{job_id}"
    )
    payload = data if isinstance(data, dict) else {}
    if status >= 400:
        detail = {
            key: value
            for key, value in payload.items()
            if key not in ("error", "status")
        }
        raise HttpError(
            status,
            payload.get("error", f"worker {owner} returned {status}"),
            **detail,
        )
    return payload


async def sweeps_get(app, request: Request, job_id: str) -> Dict[str, Any]:
    forwarded = await _forward_job(app, "GET", job_id)
    if forwarded is not None:
        return forwarded
    job = _job_or_404(app, job_id)
    return {"job": job.to_dict(include_result=True)}


async def sweeps_cancel(app, request: Request, job_id: str) -> Any:
    forwarded = await _forward_job(app, "DELETE", job_id)
    if forwarded is not None:
        return forwarded
    return _cancel_or_409(app, job_id)


# -- internal (worker-to-worker) surface --------------------------------------
#
# Served only on each worker's supervisor-owned loopback listener; raw
# JSON (no provenance envelope) because the caller is a sibling replica,
# not a client.


async def internal_metrics(app, request: Request) -> Dict[str, Any]:
    from repro.obs.metrics import metrics

    return {"worker": app.config.worker_index, "metrics": metrics().snapshot()}


async def internal_jobs(app, request: Request) -> Dict[str, Any]:
    return {
        "worker": app.config.worker_index,
        "jobs": [job.to_dict(include_result=False) for job in app.jobs.jobs()],
        "counts": app.jobs.counts(),
    }


async def internal_job(app, request: Request, job_id: str) -> Dict[str, Any]:
    job = _job_or_404(app, job_id)
    return {"job": job.to_dict(include_result=True)}


async def internal_job_cancel(app, request: Request, job_id: str) -> Dict[str, Any]:
    return _cancel_or_409(app, job_id)


async def internal_debug_requests(app, request: Request) -> Dict[str, Any]:
    n = _bounded_n(request, 50)
    return {
        "worker": app.config.worker_index,
        "requests": [r.to_dict() for r in app.recorder.tail(n)],
    }


async def internal_debug_slow(app, request: Request) -> Dict[str, Any]:
    n = _bounded_n(request, 20)
    return {
        "worker": app.config.worker_index,
        "requests": [r.to_dict() for r in app.recorder.slowest(n)],
    }


async def internal_debug_trace(
    app, request: Request, trace_id: str
) -> Dict[str, Any]:
    return {
        "worker": app.config.worker_index,
        "records": [r.to_dict() for r in app.recorder.trace(trace_id)],
    }


# -- registration -------------------------------------------------------------


def register_routes(router) -> None:
    """Install every endpoint on *router* (see module docstring)."""
    router.add("GET", "/healthz", healthz, name="healthz")
    router.add("GET", "/metrics", metrics_text, name="metrics")
    router.add("GET", "/version", version, name="version")
    router.add("GET", "/debug/requests", debug_requests, name="debug.requests")
    router.add("GET", "/debug/slow", debug_slow, name="debug.slow")
    router.add("GET", "/debug/trace/{trace_id}", debug_trace, name="debug.trace")
    router.add("GET", "/artifacts", artifacts_index, name="artifacts")
    router.add("GET", "/artifacts/{name}", artifact, name="artifact")
    router.add("GET", "/tech", tech_index, name="tech")
    router.add("GET", "/cmos/gains", cmos_gains, name="cmos.gains")
    router.add("GET", "/csr/{study}", csr_study, name="csr.study")
    router.add("GET", "/wall/projections", wall_projections, name="wall.projections")
    router.add("POST", "/wall/whatif", wall_whatif, name="wall.whatif")
    router.add("POST", "/evaluate", evaluate, name="evaluate")
    router.add("POST", "/attribute", attribute, name="attribute")
    router.add("POST", "/sweeps", sweeps_submit, name="sweeps.submit")
    router.add("GET", "/sweeps", sweeps_list, name="sweeps.list")
    router.add("GET", "/sweeps/{job_id}", sweeps_get, name="sweeps.get")
    router.add("DELETE", "/sweeps/{job_id}", sweeps_cancel, name="sweeps.cancel")


def register_internal_routes(router) -> None:
    """Install the worker-to-worker surface (internal listener only)."""
    router.add("GET", "/internal/metrics", internal_metrics, name="internal.metrics")
    router.add("GET", "/internal/jobs", internal_jobs, name="internal.jobs")
    router.add("GET", "/internal/jobs/{job_id}", internal_job, name="internal.job")
    router.add(
        "DELETE",
        "/internal/jobs/{job_id}",
        internal_job_cancel,
        name="internal.job.cancel",
    )
    router.add(
        "GET",
        "/internal/debug/requests",
        internal_debug_requests,
        name="internal.debug.requests",
    )
    router.add(
        "GET",
        "/internal/debug/slow",
        internal_debug_slow,
        name="internal.debug.slow",
    )
    router.add(
        "GET",
        "/internal/debug/trace/{trace_id}",
        internal_debug_trace,
        name="internal.debug.trace",
    )
