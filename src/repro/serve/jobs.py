"""Background job queue for long-running sweeps.

``POST /sweeps`` must not hold an HTTP connection open for the minutes a
full Table III sweep can take, so sweeps run as *jobs*: submission
returns an id immediately, execution happens on the existing
:class:`repro.accel.engine.SweepEngine` worker pool with bounded
concurrency, and clients poll ``GET /sweeps/{id}`` until the job settles.

Lifecycle::

    queued -> running -> done | failed
    queued -> cancelled                  (cancel before a worker picks it up)

A *running* job is not forcibly killed — the engine's process pool cannot
be safely interrupted mid-sweep — so cancelling one is refused; the
client sees its current state.  Settled jobs are kept for ``history``
entries so results stay pollable, then evicted oldest-first.
"""

from __future__ import annotations

import asyncio
import re
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.log import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import current_trace_id, trace_scope

__all__ = ["Job", "JobQueue", "QueueFullError", "UnknownJobError", "job_owner"]

logger = get_logger("serve.jobs")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can no longer leave.
SETTLED = (DONE, FAILED, CANCELLED)


#: Job ids minted by a multi-worker queue: ``job-w<index>-<hex>``.
_OWNED_ID = re.compile(r"^job-w(\d+)-")


def job_owner(job_id: str) -> Optional[int]:
    """The worker index encoded in *job_id*, or ``None`` (single-process id).

    Multi-worker job ids carry their owning worker so any replica can
    route ``GET /sweeps/{id}`` to the queue that holds the job.
    """
    found = _OWNED_ID.match(job_id)
    return int(found.group(1)) if found is not None else None


class QueueFullError(RuntimeError):
    """The queue's pending backlog is at capacity."""


class UnknownJobError(KeyError):
    """No job with the requested id (it may have been evicted)."""


@dataclass
class Job:
    """One submitted sweep: identity, lifecycle stamps, and the result."""

    job_id: str
    kind: str
    params: Dict[str, Any]
    status: str = QUEUED
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    result: Optional[Any] = None
    error: Optional[str] = None
    #: Trace id of the submitting request — execution runs under it, so a
    #: job's spans and flight-recorder record join the submitter's trace.
    trace_id: Optional[str] = None

    @property
    def settled(self) -> bool:
        return self.status in SETTLED

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "error": self.error,
            "trace_id": self.trace_id,
        }
        if include_result:
            payload["result"] = self.result
        else:
            payload["result"] = None
        return payload


class JobQueue:
    """Bounded asynchronous job runner over a blocking *runner* callable.

    Parameters
    ----------
    runner:
        ``runner(kind, params) -> result`` executed off the event loop for
        each job; exceptions mark the job ``failed`` with the message.
    concurrency:
        Jobs running simultaneously.  Each running job occupies one
        executor thread; the sweep engine underneath may still fan out
        across processes.
    max_pending:
        Backlog bound; submissions beyond it raise :class:`QueueFullError`
        (surfaced as HTTP 503).
    history:
        Settled jobs retained for polling before eviction.
    executor:
        Where *runner* runs (``None`` = the loop's default executor).
    worker_index:
        When serving as one of N supervised workers, the replica index —
        minted job ids become ``job-w<index>-<hex>`` so any worker can
        resolve which queue owns a polled job (see :func:`job_owner`).
    """

    def __init__(
        self,
        runner: Callable[[str, Dict[str, Any]], Any],
        concurrency: int = 1,
        max_pending: int = 32,
        history: int = 64,
        executor=None,
        worker_index: Optional[int] = None,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.runner = runner
        self.concurrency = int(concurrency)
        self.max_pending = int(max_pending)
        self.history = int(history)
        self.executor = executor
        self.id_prefix = (
            "job-" if worker_index is None else f"job-w{int(worker_index)}-"
        )
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._workers: List[asyncio.Task] = []
        self._running = 0
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        loop = asyncio.get_event_loop()
        while len(self._workers) < self.concurrency:
            self._workers.append(loop.create_task(self._worker()))

    async def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop accepting jobs; optionally wait for running ones to settle.

        Queued jobs are cancelled immediately (they never started); with
        *drain* the running jobs get up to *timeout_s* to finish before
        the workers are torn down.
        """
        self._closed = True
        # Snapshot before iterating: _settle -> _evict may delete settled
        # jobs from self._jobs once the history bound is exceeded, and
        # mutating the dict mid-iteration raises RuntimeError.
        for job in list(self._jobs.values()):
            if job.status == QUEUED:
                self._settle(job, CANCELLED)
        if drain:
            deadline = time.monotonic() + timeout_s
            while self._running and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._workers.clear()

    # -- submission and queries ------------------------------------------------

    def submit(self, kind: str, params: Dict[str, Any]) -> Job:
        """Enqueue a job; raises :class:`QueueFullError` at capacity."""
        if self._closed:
            raise QueueFullError("job queue is shutting down")
        backlog = sum(1 for j in self._jobs.values() if j.status == QUEUED)
        if backlog >= self.max_pending:
            raise QueueFullError(
                f"job backlog is full ({backlog}/{self.max_pending} queued)"
            )
        job = Job(
            job_id=f"{self.id_prefix}{uuid.uuid4().hex[:12]}",
            kind=kind,
            params=params,
            trace_id=current_trace_id(),
        )
        self._jobs[job.job_id] = job
        self._queue.put_nowait(job.job_id)
        metrics().counter("serve.jobs.submitted").inc()
        logger.info("job.submitted %s", kv(job_id=job.job_id, kind=kind))
        self._evict()
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def jobs(self) -> List[Job]:
        """Every retained job, oldest submission first."""
        return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job; running/settled jobs are left untouched.

        Returns the job either way — callers inspect ``status`` to see
        whether the cancel took effect.
        """
        job = self.get(job_id)
        if job.status == QUEUED:
            self._settle(job, CANCELLED)
            logger.info("job.cancelled %s", kv(job_id=job_id))
        return job

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {
            QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0, CANCELLED: 0
        }
        for job in self._jobs.values():
            out[job.status] = out.get(job.status, 0) + 1
        return out

    @property
    def active(self) -> int:
        """Jobs currently occupying a worker."""
        return self._running

    # -- internals -------------------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None or job.status != QUEUED:
                continue  # cancelled (or evicted) while queued
            job.status = RUNNING
            job.started_unix = time.time()
            self._running += 1
            metrics().gauge("serve.jobs.running").set(self._running)

            def run(job: Job = job) -> Any:
                # Bind the submitter's trace id in the executor thread
                # (run_in_executor does not carry contextvars across).
                with trace_scope(job.trace_id):
                    return self.runner(job.kind, dict(job.params))

            try:
                result = await loop.run_in_executor(self.executor, run)
            except asyncio.CancelledError:
                self._settle(job, FAILED, error="server shut down mid-job")
                raise
            except Exception as exc:  # noqa: BLE001 - job failure is data
                self._settle(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            else:
                job.result = result
                self._settle(job, DONE)
            finally:
                # In a finally so the CancelledError path (worker torn
                # down mid-job) cannot leave the exported gauge stuck at
                # its pre-cancel value.
                self._running -= 1
                metrics().gauge("serve.jobs.running").set(self._running)

    def _settle(self, job: Job, status: str, error: Optional[str] = None) -> None:
        job.status = status
        job.error = error
        job.finished_unix = time.time()
        metrics().counter(f"serve.jobs.{status}").inc()
        elapsed = job.finished_unix - (job.started_unix or job.submitted_unix)
        if job.started_unix is not None:
            metrics().histogram("serve.jobs.duration_s").observe(elapsed)
        logger.info(
            "job.settled %s",
            kv(job_id=job.job_id, status=status, elapsed_s=elapsed),
        )
        self._evict()

    def _evict(self) -> None:
        """Drop the oldest settled jobs beyond the history bound."""
        settled = [j.job_id for j in self._jobs.values() if j.settled]
        for job_id in settled[: max(0, len(settled) - self.history)]:
            del self._jobs[job_id]
