"""Admission control for the serving layer: rate limiting and load shedding.

Two independent gates sit in front of the request handlers:

* :class:`RateLimiter` — a classic token bucket per client key: each
  client accrues ``rate`` tokens per second up to a ``burst`` ceiling,
  and every admitted request spends one token.  A drained bucket rejects
  the request and reports how long until the next token — surfaced to
  clients as an HTTP 429 with a ``Retry-After`` header.

* :class:`InflightGate` — a per-worker cap on concurrently executing
  requests.  Past the cap the server *sheds* load: the request is
  answered 503 + ``Retry-After`` immediately instead of queueing behind
  work it has no capacity for, so overload degrades predictably (bounded
  latency for admitted requests, an honest back-off hint for the rest).

Both are synchronous and O(1) per decision; they run on the event loop,
so no locking is needed there, but a lock is kept so benchmarks and
tests may drive them from plain threads too.  Rate-limiter buckets for
idle clients are evicted once the table outgrows ``max_clients`` —
eviction only ever drops buckets that have refilled to ``burst``, which
are indistinguishable from brand-new ones, so eviction never grants
extra tokens.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["InflightGate", "RateLimiter"]


class _Bucket:
    __slots__ = ("tokens", "updated_s")

    def __init__(self, tokens: float, updated_s: float):
        self.tokens = tokens
        self.updated_s = updated_s


class RateLimiter:
    """Token-bucket admission control keyed by client id.

    Parameters
    ----------
    rate:
        Sustained requests per second per client.  ``0`` (or negative)
        disables limiting entirely: every request is admitted.
    burst:
        Bucket capacity — the largest instantaneous spike a client may
        send after being idle.  Defaults to ``max(1, rate)``.
    max_clients:
        Bucket-table size bound; least-recently-updated buckets are
        evicted beyond it.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        max_clients: int = 4096,
    ):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self.max_clients = int(max_clients)
        self._buckets: Dict[str, _Bucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def allow(self, client: str, now: Optional[float] = None) -> Tuple[bool, float]:
        """Admit or reject one request from *client*.

        Returns ``(admitted, retry_after_s)``; ``retry_after_s`` is 0 for
        admitted requests and the seconds until one token accrues
        otherwise.
        """
        if not self.enabled:
            return True, 0.0
        stamp = now if now is not None else time.monotonic()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = _Bucket(self.burst, stamp)
                self._buckets[client] = bucket
                self._evict(stamp, keep=client)
            else:
                elapsed = max(0.0, stamp - bucket.updated_s)
                bucket.tokens = min(self.burst, bucket.tokens + elapsed * self.rate)
                bucket.updated_s = stamp
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return True, 0.0
            return False, (1.0 - bucket.tokens) / self.rate

    def _evict(self, now: float, keep: Optional[str] = None) -> None:
        """Drop stale buckets once the table outgrows its bound.

        Only buckets that have *refilled to full* by ``now`` are dropped:
        a full bucket is indistinguishable from the brand-new one the
        client would get on return, so forgetting it never grants extra
        tokens.  A drained bucket that went briefly idle is kept — the
        old behaviour (evict least-recently-updated regardless of token
        state) handed such clients a fresh ``burst`` on every table
        churn, bypassing the limiter entirely.  The *keep* client (the
        insertion that triggered this call) is never dropped: its bucket
        is full right now but is about to spend, and evicting it would
        grant a fresh burst per request while the table is overflowed.

        ``max_clients`` is therefore a soft bound: buckets still owing
        tokens survive an overflow, but each becomes evictable within
        ``burst / rate`` seconds of going idle, so the table shrinks
        back on the next insertion after that.
        """
        overflow = len(self._buckets) - self.max_clients
        if overflow <= 0:
            return
        stale = sorted(self._buckets, key=lambda c: self._buckets[c].updated_s)
        for client in stale:
            if overflow <= 0:
                return
            if client == keep:
                continue
            bucket = self._buckets[client]
            refilled = bucket.tokens + max(0.0, now - bucket.updated_s) * self.rate
            if refilled >= self.burst:
                del self._buckets[client]
                overflow -= 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)


class InflightGate:
    """Per-worker concurrency cap: admit up to ``max_inflight`` requests.

    The serving layer acquires a slot before running a handler and
    releases it afterwards.  When every slot is taken the request is shed
    (HTTP 503) with a ``Retry-After`` hint derived from the recent mean
    request latency — the honest estimate of when a slot frees up.

    ``max_inflight <= 0`` disables the gate entirely.
    """

    def __init__(self, max_inflight: int):
        self.max_inflight = int(max_inflight)
        self._inflight = 0
        self._shed = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.max_inflight > 0

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def shed(self) -> int:
        """Requests rejected at the gate since startup."""
        return self._shed

    def try_acquire(self) -> bool:
        """Take one slot; ``False`` (and a shed count) when saturated."""
        if not self.enabled:
            return True
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._shed += 1
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def retry_after_s(self, mean_latency_s: float) -> float:
        """Back-off hint for a shed request (bounded to a sane range)."""
        return min(5.0, max(0.05, mean_latency_s))
