"""Per-client rate limiting for the serving layer.

A classic token bucket per client key: each client accrues ``rate``
tokens per second up to a ``burst`` ceiling, and every admitted request
spends one token.  A drained bucket rejects the request and reports how
long until the next token — surfaced to clients as an HTTP 429 with a
``Retry-After`` header.

The limiter is synchronous and O(1) per decision; it runs on the event
loop, so no locking is needed there, but a lock is kept so benchmarks and
tests may drive it from plain threads too.  Buckets for idle clients are
evicted once the table outgrows ``max_clients`` (full buckets are
indistinguishable from brand-new ones, so eviction never grants extra
tokens).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["RateLimiter"]


class _Bucket:
    __slots__ = ("tokens", "updated_s")

    def __init__(self, tokens: float, updated_s: float):
        self.tokens = tokens
        self.updated_s = updated_s


class RateLimiter:
    """Token-bucket admission control keyed by client id.

    Parameters
    ----------
    rate:
        Sustained requests per second per client.  ``0`` (or negative)
        disables limiting entirely: every request is admitted.
    burst:
        Bucket capacity — the largest instantaneous spike a client may
        send after being idle.  Defaults to ``max(1, rate)``.
    max_clients:
        Bucket-table size bound; least-recently-updated buckets are
        evicted beyond it.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        max_clients: int = 4096,
    ):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self.max_clients = int(max_clients)
        self._buckets: Dict[str, _Bucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def allow(self, client: str, now: Optional[float] = None) -> Tuple[bool, float]:
        """Admit or reject one request from *client*.

        Returns ``(admitted, retry_after_s)``; ``retry_after_s`` is 0 for
        admitted requests and the seconds until one token accrues
        otherwise.
        """
        if not self.enabled:
            return True, 0.0
        stamp = now if now is not None else time.monotonic()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = _Bucket(self.burst, stamp)
                self._buckets[client] = bucket
                self._evict(stamp)
            else:
                elapsed = max(0.0, stamp - bucket.updated_s)
                bucket.tokens = min(self.burst, bucket.tokens + elapsed * self.rate)
                bucket.updated_s = stamp
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return True, 0.0
            return False, (1.0 - bucket.tokens) / self.rate

    def _evict(self, now: float) -> None:
        """Drop the stalest buckets once the table outgrows its bound."""
        overflow = len(self._buckets) - self.max_clients
        if overflow <= 0:
            return
        stale = sorted(self._buckets, key=lambda c: self._buckets[c].updated_s)
        for client in stale[:overflow]:
            del self._buckets[client]

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
