"""HTTP request/response types and the route table.

The serving layer speaks a deliberately small slice of HTTP/1.1 over
asyncio streams (stdlib only — no web framework).  This module holds the
protocol-independent pieces: a parsed :class:`Request`, a :class:`Response`
under construction, typed :class:`HttpError`\\ s handlers may raise, and
the :class:`Router` mapping ``METHOD /path/{param}`` patterns to handler
callables.

Handlers are ``async def handler(app, request, **path_params)`` returning
either a JSON-able payload (wrapped into the provenance envelope by the
app) or a ready :class:`Response` for non-JSON bodies (``/metrics``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "Request", "Response", "Route", "Router"]

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A handler-level failure with an HTTP status and a JSON error body."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
        **detail: Any,
    ):
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.headers = dict(headers or {})
        self.detail = detail

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"error": self.message, "status": self.status}
        body.update(self.detail)
        return body


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    client: str
    #: True for worker-to-worker requests on the internal loopback
    #: listener — resolved against the internal route table and exempt
    #: from rate limiting, shedding, and the provenance envelope.
    internal: bool = False
    #: The request's trace id — honored from an incoming ``traceparent``
    #: / ``X-Trace-Id`` header or minted by the app at dispatch, and
    #: echoed back as ``X-Trace-Id``.
    trace_id: Optional[str] = None

    @classmethod
    def parse_target(cls, target: str) -> Tuple[str, Dict[str, str]]:
        """Split a request target into (path, query dict)."""
        parts = urlsplit(target)
        return parts.path or "/", dict(parse_qsl(parts.query))

    def json(self) -> Any:
        """The body parsed as JSON; 400 on malformed input."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    def json_object(self) -> Dict[str, Any]:
        """The body as a JSON *object*; 400 when it is any other shape."""
        payload = self.json()
        if not isinstance(payload, dict):
            raise HttpError(
                400,
                "request body must be a JSON object, got "
                f"{type(payload).__name__}",
            )
        return payload

    def param_float(self, name: str, default: Optional[float] = None) -> Optional[float]:
        """A query parameter as float; 400 on a malformed value."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name}={raw!r} is not a number")

    def param_int(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """A query parameter as int; 400 on a malformed value."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(
                400, f"query parameter {name}={raw!r} is not an integer"
            )


@dataclass
class Response:
    """A response under construction; the app serialises and sends it."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = (json.dumps(payload, indent=None, sort_keys=False) + "\n").encode()
        return cls(
            status=status,
            body=body,
            content_type="application/json",
            headers=dict(headers or {}),
        )

    @classmethod
    def text(
        cls,
        content: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "Response":
        return cls(status=status, body=content.encode(), content_type=content_type)

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")


_PARAM = re.compile(r"\{(\w+)\}")


@dataclass(frozen=True)
class Route:
    """One ``METHOD pattern -> handler`` entry."""

    method: str
    pattern: str
    name: str
    handler: Callable[..., Any]
    regex: "re.Pattern[str]"

    def match(self, path: str) -> Optional[Dict[str, str]]:
        found = self.regex.match(path)
        return found.groupdict() if found is not None else None


class Router:
    """Ordered route table with ``{param}`` path captures.

    ``resolve`` distinguishes "no such path" (404) from "path exists but
    not with this method" (405 with an ``Allow`` header), which clients
    probing the API surface rely on.
    """

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self,
        method: str,
        pattern: str,
        handler: Callable[..., Any],
        name: Optional[str] = None,
    ) -> None:
        regex = re.compile(
            "^" + _PARAM.sub(r"(?P<\1>[^/]+)", pattern) + "$"
        )
        route_name = name if name is not None else pattern.strip("/").replace(
            "/", "."
        ).replace("{", "").replace("}", "") or "root"
        self._routes.append(
            Route(
                method=method.upper(),
                pattern=pattern,
                name=route_name,
                handler=handler,
                regex=regex,
            )
        )

    def resolve(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        """The matching route and its path params; raises 404/405."""
        allowed: List[str] = []
        for route in self._routes:
            params = route.match(path)
            if params is None:
                continue
            if route.method == method.upper():
                return route, params
            allowed.append(route.method)
        if allowed:
            raise HttpError(
                405,
                f"method {method} not allowed for {path}",
                headers={"Allow": ", ".join(sorted(set(allowed)))},
            )
        raise HttpError(
            404,
            f"no route for {path}",
            routes=sorted({r.pattern for r in self._routes}),
        )

    @property
    def routes(self) -> List[Route]:
        return list(self._routes)
