"""Snapshotted fitted-model state for fast warm-replica startup.

A multi-worker ``repro serve`` boots N replicas of the same fitted
state.  Loading that state means refitting the CMOS potential model,
rebuilding every case study, tracing the served kernels, and building
the Figs 15-16 frontier-fit projections — work that is identical in
every replica.  The supervisor therefore does it **once**: it builds a
:class:`ServeSnapshot`, pickles it to a file, and each worker (including
every crash-restarted replacement) unpickles instead of refitting.

The snapshot carries only deterministic fitted state, and the prebuilt
artifact payloads go through the same builders and ``_jsonable``
coercion as ``repro export``, so a snapshot-booted worker serves
payloads bit-identical to a cold-booted single-process server — the
golden parity the drift comparator checks.

Pieces that fail to pickle are dropped (logged) rather than fatal: a
worker falls back to lazily loading whatever the snapshot is missing.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.log import get_logger, kv
from repro.obs.trace import span

__all__ = ["SNAPSHOT_VERSION", "ServeSnapshot", "build_snapshot", "load_snapshot"]

logger = get_logger("serve.snapshot")

#: Bumped whenever the snapshot layout changes; a version-mismatched file
#: is rejected at load time and the worker boots cold instead.
SNAPSHOT_VERSION = 2

#: Workloads whose kernels are pre-traced into the snapshot (the full
#: served set — tracing is the dominant per-workload startup cost).
SNAPSHOT_WORKLOADS = ("FFT", "GMM", "S3D", "SRT")

#: Export artifacts prebuilt into the snapshot.  Only engine-free builders
#: belong here (sweep-backed artifacts are request-time work); fig15_16
#: also backs ``GET /wall/projections``, the hottest read endpoint.
SNAPSHOT_ARTIFACTS = ("fig15_16", "table5")


@dataclass
class ServeSnapshot:
    """Everything a serve replica needs that is identical across replicas."""

    model: Any                                  # fitted CmosPotentialModel
    studies: Dict[str, Any] = field(default_factory=dict)   # name -> study
    kernels: Dict[str, Any] = field(default_factory=dict)   # ABBREV -> kernel
    artifacts: Dict[str, Any] = field(default_factory=dict)  # name -> payload
    tech_models: Dict[str, Any] = field(default_factory=dict)  # tech -> model
    created_unix: float = field(default_factory=time.time)
    version: int = SNAPSHOT_VERSION


def build_snapshot(model: Optional[Any] = None) -> ServeSnapshot:
    """Fit/trace/build the shared serving state once (supervisor startup)."""
    from repro.cli import STUDIES, _study_object
    from repro.cmos.model import CmosPotentialModel
    from repro.reporting.export import _jsonable, artifact_builders
    from repro.tech import backend_names, get_backend
    from repro.workloads import get_workload

    with span("serve.snapshot.build"):
        if model is None:
            model = CmosPotentialModel.paper()
        studies = {name: _study_object(name, model) for name in STUDIES}
        kernels = {
            abbrev: get_workload(abbrev).build() for abbrev in SNAPSHOT_WORKLOADS
        }
        builders = artifact_builders(model, fast=True)
        artifacts = {
            name: _jsonable(builders[name]())
            for name in SNAPSHOT_ARTIFACTS
            if name in builders
        }
        # Fit every registered backend's potential model once, so warm
        # replicas answer ``?tech=`` requests without refitting.
        tech_models = {name: get_backend(name).model() for name in backend_names()}
    return ServeSnapshot(
        model=model,
        studies=studies,
        kernels=kernels,
        artifacts=artifacts,
        tech_models=tech_models,
    )


def save_snapshot(snapshot: ServeSnapshot, path: os.PathLike) -> Path:
    """Pickle *snapshot* atomically; unpicklable sections are dropped.

    Dropping is per-section: if e.g. one study object refuses to pickle,
    workers still warm-boot the model and kernels and lazily rebuild the
    studies.  Only a model that itself cannot pickle is fatal.
    """
    path = Path(path)
    for section in ("studies", "kernels", "artifacts", "tech_models"):
        table = getattr(snapshot, section)
        for key in list(table):
            try:
                pickle.dumps(table[key])
            except Exception as exc:  # noqa: BLE001 - degrade, don't die
                logger.warning(
                    "snapshot.drop %s",
                    kv(section=section, key=key, error=type(exc).__name__),
                )
                del table[key]
    payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    logger.info(
        "snapshot.saved %s",
        kv(
            path=str(path),
            bytes=len(payload),
            studies=len(snapshot.studies),
            kernels=len(snapshot.kernels),
            artifacts=len(snapshot.artifacts),
        ),
    )
    return path


def load_snapshot(path: os.PathLike) -> Optional[ServeSnapshot]:
    """Unpickle a snapshot; ``None`` (cold boot) on any mismatch/corruption."""
    try:
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
    except Exception as exc:  # noqa: BLE001 - cold boot is the fallback
        logger.warning(
            "snapshot.load_failed %s",
            kv(path=str(path), error=f"{type(exc).__name__}: {exc}"),
        )
        return None
    if not isinstance(snapshot, ServeSnapshot) or snapshot.version != SNAPSHOT_VERSION:
        logger.warning(
            "snapshot.version_mismatch %s",
            kv(path=str(path), found=getattr(snapshot, "version", None)),
        )
        return None
    return snapshot
