"""Process supervisor for multi-worker ``repro serve``.

Model evaluation is CPU-bound, so one asyncio process caps throughput at
one core even after the vectorized hot path.  ``repro serve --workers N``
scales horizontally instead: a small :class:`Supervisor` process

* builds the fitted serving state **once** and pickles it
  (:mod:`repro.serve.snapshot`) so every replica — including crash
  replacements — warm-boots instead of refitting;
* pins the public port and forks N serve workers that share it.  Where
  the platform has ``SO_REUSEPORT`` (Linux) each worker binds its own
  listening socket and the kernel load-balances accepts; elsewhere one
  supervisor-bound listening socket is inherited through the fork and
  workers race on ``accept()``;
* binds one loopback *internal* listener per worker slot before forking
  and keeps the file descriptors open, so internal ports survive worker
  restarts and cross-worker job routing never chases a moving target;
* restarts crashed workers with exponential backoff (reset after a
  stable run), and fans SIGTERM out to every child for a graceful drain
  before exiting 0 itself.

Workers share the content-addressed schedule cache as the warm layer:
when the persistent cache is enabled without an explicit directory the
supervisor provisions a shared one, and the cache's atomic
write-then-rename protocol makes concurrent writers safe.

:class:`SupervisorHandle` boots the whole arrangement as a subprocess
for tests and benchmarks, parsing the advertised port from stdout.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.obs.log import get_logger, kv

__all__ = ["Supervisor", "SupervisorHandle"]

logger = get_logger("serve.supervisor")

#: Restart backoff: doubles per crash from the floor to the cap, and
#: resets once a worker survives ``STABLE_S`` seconds.
BACKOFF_FLOOR_S = 0.5
BACKOFF_CAP_S = 8.0
STABLE_S = 30.0

#: Stdout line tests and operators parse for the bound address.
_SERVING_LINE = re.compile(r"serving on http://([^:]+):(\d+)")


def _tcp_socket() -> socket.socket:
    return socket.socket(socket.AF_INET, socket.SOCK_STREAM)


class Supervisor:
    """Fork, babysit, and drain N serve workers sharing one port."""

    def __init__(self, config):
        from repro.serve.app import ServeConfig

        if not isinstance(config, ServeConfig):  # pragma: no cover - misuse
            raise TypeError(f"expected ServeConfig, got {type(config).__name__}")
        if config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {config.workers}")
        self.config = config
        self.workers = int(config.workers)
        self.port: Optional[int] = None
        self.peer_ports: Dict[int, int] = {}
        self.snapshot_path: Optional[str] = None
        self.reuseport = hasattr(socket, "SO_REUSEPORT")
        self._placeholder: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._internal_socks: Dict[int, socket.socket] = {}
        self._pids: Dict[int, int] = {}            # slot -> live child pid
        self._spawned_at: Dict[int, float] = {}    # slot -> monotonic stamp
        self._backoff: Dict[int, float] = {}       # slot -> next crash delay
        self._restarts = 0
        self._shutting_down = False
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None

    # -- setup -----------------------------------------------------------------

    def _setup(self) -> None:
        """Snapshot, shared cache dir, and every socket — all pre-fork."""
        from repro.serve.snapshot import build_snapshot, save_snapshot

        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
        if self.config.use_cache and not self.config.cache_dir:
            # No directory given: provision one all workers share so a
            # schedule computed by any replica warms every replica.
            self.config.cache_dir = os.path.join(self._tmpdir.name, "cache")
            os.makedirs(self.config.cache_dir, exist_ok=True)
        snapshot = build_snapshot()
        self.snapshot_path = str(
            save_snapshot(snapshot, os.path.join(self._tmpdir.name, "snapshot.pkl"))
        )
        self._bind_sockets()

    def _bind_sockets(self) -> None:
        host, port = self.config.host, self.config.port
        if self.reuseport:
            # A bound (not listening) placeholder pins the port for the
            # process group without joining the kernel's accept
            # distribution — only listening sockets receive connections.
            sock = _tcp_socket()
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((host, port))
            except OSError:
                sock.close()
                self.reuseport = False
            else:
                self._placeholder = sock
                self.port = sock.getsockname()[1]
        if not self.reuseport:
            # Fallback: one listening socket inherited by every worker;
            # the kernel wakes one acceptor per connection.
            sock = _tcp_socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen(128)
            self._listen_sock = sock
            self.port = sock.getsockname()[1]
        for index in range(self.workers):
            internal = _tcp_socket()
            internal.bind(("127.0.0.1", 0))
            internal.listen(128)
            self._internal_socks[index] = internal
        self.peer_ports = {
            index: sock.getsockname()[1]
            for index, sock in self._internal_socks.items()
        }

    # -- worker processes ------------------------------------------------------

    def _spawn(self, index: int) -> None:
        pid = os.fork()
        if pid == 0:
            # Child: nothing below this line returns.
            code = 70  # EX_SOFTWARE unless the serve loop says otherwise
            try:
                code = self._worker_main(index)
            except BaseException:  # noqa: BLE001 - child must never unwind
                traceback.print_exc()
            finally:
                os._exit(code)
        self._pids[index] = pid
        self._spawned_at[index] = time.monotonic()
        logger.info("supervisor.spawned %s", kv(worker=index, pid=pid))

    def _worker_main(self, index: int) -> int:
        """Runs inside the forked child; serves until SIGTERM."""
        # The inherited supervisor handlers would make this child signal
        # its own siblings; drop to defaults until asyncio installs the
        # graceful-drain handler.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        from repro.obs.metrics import reset_metrics
        from repro.serve.app import ServeApp

        reset_metrics()  # drop the supervisor's snapshot-build counters
        for sibling, sock in self._internal_socks.items():
            if sibling != index:
                sock.close()
        config = replace(
            self.config,
            workers=1,
            port=self.port,
            worker_index=index,
            peer_ports=dict(self.peer_ports),
            snapshot_path=self.snapshot_path,
        )
        app = ServeApp(config)
        if self.reuseport:
            assert self._placeholder is not None
            self._placeholder.close()
            sock = _tcp_socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.config.host, self.port))
            app.listen_sock = sock
        else:
            app.listen_sock = self._listen_sock
        app.internal_sock = self._internal_socks[index]
        asyncio.run(app.serve_until_shutdown(install_signals=True))
        return 0

    def _slot_of(self, pid: int) -> Optional[int]:
        for index, known in self._pids.items():
            if known == pid:
                return index
        return None

    def _restart(self, index: int, status: int) -> None:
        """Respawn a crashed worker after its slot's current backoff."""
        uptime = time.monotonic() - self._spawned_at.get(index, 0.0)
        if uptime >= STABLE_S:
            self._backoff[index] = BACKOFF_FLOOR_S
        delay = self._backoff.get(index, BACKOFF_FLOOR_S)
        self._backoff[index] = min(BACKOFF_CAP_S, delay * 2)
        self._restarts += 1
        logger.warning(
            "supervisor.worker_died %s",
            kv(worker=index, status=status, uptime_s=uptime, backoff_s=delay),
        )
        deadline = time.monotonic() + delay
        while not self._shutting_down and time.monotonic() < deadline:
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
        if not self._shutting_down:
            self._spawn(index)

    # -- lifecycle -------------------------------------------------------------

    def _handle_signal(self, signum, frame) -> None:
        self._shutting_down = True
        for pid in self._pids.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    def _wait_listening(self, timeout_s: float = 30.0) -> None:
        """Block until a worker accepts on the public port.

        In reuseport mode the kernel refuses connections until the first
        child binds its listener, so "serving on ..." must not be
        printed (operators and the CI smoke race on it) until a probe
        connect succeeds.  The probe closes without sending a request;
        workers treat that as normal client churn.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                socket.create_connection(
                    ("127.0.0.1" if self.config.host == "0.0.0.0" else self.config.host,
                     self.port),
                    timeout=1.0,
                ).close()
                return
            except OSError:
                time.sleep(0.05)
        logger.warning("supervisor.not_listening %s", kv(timeout_s=timeout_s))

    def run(self) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT, exit 0."""
        self._setup()
        assert self.port is not None
        for index in range(self.workers):
            self._spawn(index)
        signal.signal(signal.SIGTERM, self._handle_signal)
        signal.signal(signal.SIGINT, self._handle_signal)
        self._wait_listening()
        print(
            f"serving on http://{self.config.host}:{self.port} "
            f"[workers {self.workers}] "
            f"[mode {'reuseport' if self.reuseport else 'shared-socket'}]",
            flush=True,
        )
        logger.info(
            "supervisor.up %s",
            kv(
                port=self.port,
                workers=self.workers,
                reuseport=self.reuseport,
                snapshot=self.snapshot_path,
            ),
        )
        while not self._shutting_down:
            try:
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:
                break  # every child gone and none to restart
            except InterruptedError:  # pragma: no cover - pre-3.5 semantics
                continue
            index = self._slot_of(pid)
            if index is not None:
                del self._pids[index]
            if self._shutting_down:
                break
            if index is not None:
                self._restart(index, status)
        self._shutdown()
        print("drained, bye", flush=True)
        return 0

    def _shutdown(self) -> None:
        """SIGTERM every child, grant the drain budget, SIGKILL stragglers."""
        self._shutting_down = True
        for pid in self._pids.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.config.drain_timeout_s + 5.0
        for index, pid in list(self._pids.items()):
            while True:
                try:
                    done, _ = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    break
                if done == pid:
                    break
                if time.monotonic() >= deadline:
                    logger.warning(
                        "supervisor.kill %s", kv(worker=index, pid=pid)
                    )
                    try:
                        os.kill(pid, signal.SIGKILL)
                        os.waitpid(pid, 0)
                    except (ProcessLookupError, ChildProcessError):
                        pass
                    break
                time.sleep(0.02)
        self._pids.clear()
        for sock in (
            [self._placeholder, self._listen_sock]
            + list(self._internal_socks.values())
        ):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
        logger.info("supervisor.down %s", kv(restarts=self._restarts))


class SupervisorHandle:
    """A multi-worker server running as a subprocess (tests/benchmarks).

    Usage::

        handle = SupervisorHandle(workers=2).start()
        ... http requests against handle.port ...
        assert handle.stop() == 0
    """

    def __init__(
        self,
        workers: int = 2,
        extra_args: Tuple[str, ...] = (),
        env: Optional[Dict[str, str]] = None,
    ):
        self.workers = int(workers)
        self.extra_args = tuple(extra_args)
        self.env = dict(env or {})
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.proc: Optional[subprocess.Popen] = None
        self.lines: List[str] = []
        self._ready = threading.Event()
        self._reader: Optional[threading.Thread] = None

    def start(self, timeout_s: float = 120.0) -> "SupervisorHandle":
        env = dict(os.environ)
        env.setdefault("PYTHONUNBUFFERED", "1")
        env.update(self.env)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", str(self.workers),
                *self.extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._reader = threading.Thread(target=self._drain_stdout, daemon=True)
        self._reader.start()
        if not self._ready.wait(timeout_s):
            self.proc.kill()
            raise RuntimeError(
                "supervisor did not advertise a port in "
                f"{timeout_s:.0f}s; output so far:\n" + "".join(self.lines)
            )
        if self.port is None:
            raise RuntimeError(
                "supervisor exited before serving:\n" + "".join(self.lines)
            )
        return self

    def _drain_stdout(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        for line in self.proc.stdout:
            self.lines.append(line)
            found = _SERVING_LINE.search(line)
            if found is not None:
                self.host, self.port = found.group(1), int(found.group(2))
                self._ready.set()
        self._ready.set()  # EOF: unblock start() so it can report the death

    def stop(self, timeout_s: float = 60.0) -> int:
        """SIGTERM the supervisor and return its exit code."""
        assert self.proc is not None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            code = self.proc.wait(10.0)
        if self._reader is not None:
            self._reader.join(5.0)
        return code

    @property
    def output(self) -> str:
        return "".join(self.lines)
