"""Empirical case studies of chip specialization return (paper Section IV).

Four accelerator domains, each reconstructed from the paper's figures and
cited public sources (see DESIGN.md's substitution table):

* :mod:`repro.studies.video_decoders` — ASIC video decoders (Fig 4);
* :mod:`repro.studies.gpu_graphics` — GPU graphics rendering (Figs 5-7);
* :mod:`repro.studies.fpga_cnn` — FPGA CNN accelerators (Fig 8);
* :mod:`repro.studies.bitcoin` — CPU/GPU/FPGA/ASIC Bitcoin miners (Figs 1, 9).
"""

from repro.studies.base import CaseStudy, StudyChip
from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders

__all__ = [
    "CaseStudy",
    "StudyChip",
    "bitcoin",
    "fpga_cnn",
    "gpu_graphics",
    "video_decoders",
]
