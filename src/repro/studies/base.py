"""Shared case-study framework.

Every Section IV study is a population of chips with measured application
gains.  :class:`CaseStudy` wraps the population with the operations the
figures need: baseline-normalised gain/CSR series (via
:mod:`repro.csr.series`), best-performer extraction, and the
(physical, gain) scatter the Section VII projections consume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cmos.model import CmosPotentialModel
from repro.csr.series import CsrSeries, compute_csr_series
from repro.datasheets.schema import ChipSpec
from repro.errors import DatasetError


@dataclass(frozen=True)
class StudyChip:
    """A chip in a case study: physical spec plus measured application gains.

    ``measured`` maps metric names (study-specific, e.g.
    ``"throughput_mpixels_s"``, ``"power_w"``) to values.
    """

    spec: ChipSpec
    measured: Dict[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        try:
            return self.measured[name]
        except KeyError:
            raise DatasetError(
                f"{self.spec.name}: no measured metric {name!r}; "
                f"has {sorted(self.measured)}"
            ) from None


class CaseStudy:
    """A named population of measured chips with CSR-series operations."""

    #: Mapping from the study's measured-performance metric name to the
    #: physical-model metric used as its CMOS-potential counterpart.
    performance_metric: str = "throughput"
    physical_performance_metric: str = "throughput"

    def __init__(
        self,
        name: str,
        chips: Sequence[StudyChip],
        performance_metric: str,
        efficiency_metric: str,
        physical_performance_metric: str = "throughput",
        capped: bool = True,
    ):
        if not chips:
            raise DatasetError(f"case study {name!r} has no chips")
        self.name = name
        self.chips = tuple(chips)
        self.performance_metric = performance_metric
        self.efficiency_metric = efficiency_metric
        self.physical_performance_metric = physical_performance_metric
        #: Whether physical potential is TDP-capped (see compute_csr_series).
        self.capped = capped

    def __len__(self) -> int:
        return len(self.chips)

    def names(self) -> List[str]:
        return [chip.spec.name for chip in self.chips]

    def fingerprint(self) -> str:
        """Stable content hash of the study's dataset (provenance input).

        Covers every chip's physical spec and measured application gains
        plus the study's metric configuration, so two runs with equal
        fingerprints consumed byte-for-byte the same case-study inputs.
        """
        h = hashlib.sha256()
        h.update(
            f"{self.name}|{self.performance_metric}|{self.efficiency_metric}"
            f"|{self.physical_performance_metric}|{self.capped}\n".encode()
        )
        for chip in self.chips:
            spec = chip.spec
            h.update(
                f"{spec.name}|{spec.category.value}|{spec.node_nm!r}"
                f"|{spec.frequency_mhz!r}|{spec.tdp_w!r}|{spec.area_mm2!r}"
                f"|{spec.transistors!r}|{spec.year!r}\n".encode()
            )
            for name in sorted(chip.measured):
                h.update(f"  {name}={chip.measured[name]!r}\n".encode())
        return h.hexdigest()

    def performance_series(
        self, model: CmosPotentialModel, baseline: Optional[str] = None
    ) -> CsrSeries:
        """Measured performance vs. physical potential, baseline-normalised."""
        pairs = [
            (chip.spec, chip.metric(self.performance_metric)) for chip in self.chips
        ]
        return compute_csr_series(
            pairs,
            model,
            metric=self.physical_performance_metric,
            baseline=baseline,
            capped=self.capped,
        )

    def efficiency_series(
        self, model: CmosPotentialModel, baseline: Optional[str] = None
    ) -> CsrSeries:
        """Measured energy efficiency vs. physical potential."""
        pairs = [
            (chip.spec, chip.metric(self.efficiency_metric)) for chip in self.chips
        ]
        return compute_csr_series(
            pairs,
            model,
            metric="energy_efficiency",
            baseline=baseline,
            capped=self.capped,
        )

    def summary(self, model: CmosPotentialModel) -> Dict[str, float]:
        """Headline numbers for reports and shape tests."""
        perf = self.performance_series(model)
        eff = self.efficiency_series(model)
        return {
            "chips": float(len(self)),
            "max_performance_gain": perf.max_gain,
            "max_efficiency_gain": eff.max_gain,
            "max_physical_gain": perf.max_physical,
            "best_performer_csr": perf.best_performer().csr,
            "best_efficiency_csr": eff.best_performer().csr,
            "max_performance_csr": perf.max_csr,
            "max_efficiency_csr": eff.max_csr,
        }
