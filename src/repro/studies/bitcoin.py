"""Bitcoin-mining case study (paper Figs 1 and 9, Section IV-D).

A mining-hardware population spanning the four platform generations — CPUs,
GPUs, FPGAs, and ASICs — reconstructed from the paper's figures and the
public mining-hardware comparisons it cites.  Because ASIC miners integrate
wildly different chip counts, the performance metric is SHA-256 hashing
throughput *per chip area* (GH/s/mm^2), as in the paper.

Headline observations reproduced:

* ASIC chips beat the baseline CPU miner by ~6e5x in per-area performance —
  but most of it is physical: specialization return across ASICs is ~2x
  while per-area performance spans ~500x (Fig 1's 510x vs 307x split);
* energy-efficiency CSR shows two improvement regions (early 130/110nm
  ASICs, then modern 28/16nm ASICs) separated by the sharp 110nm -> 28nm
  node jump of 2013, which outpaced algorithmic innovation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.datasheets.schema import Category, ChipSpec
from repro.studies.base import CaseStudy, StudyChip

#: (name, category, node nm, chip area mm2, clock MHz, chip power W,
#:  hash rate GH/s per chip, introduction date as fractional year)
_MINERS = (
    # CPUs ------------------------------------------------------------------
    ("Athlon 64 3200+ (miner)", Category.CPU, 130, 193, 2000, 89.0, 0.0015, 2009.5),
    ("Core i7-920 (miner)", Category.CPU, 45, 263, 2667, 130.0, 0.019, 2010.2),
    # GPUs ------------------------------------------------------------------
    ("Radeon HD 5870 (miner)", Category.GPU, 40, 334, 850, 188.0, 0.40, 2010.7),
    ("GeForce GTX 580 (miner)", Category.GPU, 40, 520, 772, 244.0, 0.14, 2011.0),
    ("Radeon HD 6970 (miner)", Category.GPU, 40, 389, 880, 250.0, 0.35, 2011.2),
    ("Radeon HD 7970 (miner)", Category.GPU, 28, 352, 925, 250.0, 0.68, 2012.1),
    # FPGAs -----------------------------------------------------------------
    ("Spartan-6 LX150 (miner)", Category.FPGA, 45, 230, 100, 8.0, 0.10, 2011.4),
    ("BFL Single FPGA", Category.FPGA, 65, 280, 125, 17.0, 0.42, 2011.8),
    ("X6500 FPGA", Category.FPGA, 45, 230, 100, 8.5, 0.20, 2011.9),
    # ASICs ------------------------------------------------------------------
    ("ASICMiner BE1", Category.ASIC, 130, 36, 300, 3.5, 0.333, 2012.95),
    ("Avalon A3256", Category.ASIC, 110, 35, 282, 2.6, 0.282, 2013.05),
    ("Bitfury 55nm", Category.ASIC, 55, 14, 400, 0.9, 1.56, 2013.5),
    ("BM1380", Category.ASIC, 65, 22, 350, 2.3, 2.80, 2013.85),
    ("KnC Jupiter 28nm", Category.ASIC, 28, 55, 600, 12.0, 25.0, 2013.8),
    ("BM1382", Category.ASIC, 28, 30, 600, 6.0, 10.7, 2014.3),
    ("BM1384", Category.ASIC, 28, 25, 700, 4.5, 11.5, 2014.7),
    ("SP20 Spondoolies", Category.ASIC, 28, 28, 650, 6.5, 14.0, 2014.8),
    ("BM1385", Category.ASIC, 28, 22, 700, 8.0, 32.5, 2015.6),
    ("Avalon6 A3218 28nm", Category.ASIC, 28, 20, 650, 5.5, 20.0, 2015.9),
    ("BM1387", Category.ASIC, 16, 17, 700, 7.3, 80.0, 2016.45),
    ("Avalon7 A3212 16nm", Category.ASIC, 16, 17, 650, 6.5, 60.0, 2016.9),
)

#: Fig 9's baseline miner.
BASELINE_CPU = "Athlon 64 3200+ (miner)"
#: Fig 1's baseline ASIC.
BASELINE_ASIC = "ASICMiner BE1"


def dataset(category: Optional[Category] = None) -> List[StudyChip]:
    """The mining population, optionally filtered by platform class."""
    chips = []
    for name, cat, node, area, freq, power, ghs, date in _MINERS:
        if category is not None and cat is not category:
            continue
        spec = ChipSpec(
            name=name,
            category=cat,
            node_nm=node,
            area_mm2=area,
            frequency_mhz=freq,
            tdp_w=power,
            year=int(date),
            source="fig9-reconstruction",
        )
        chips.append(
            StudyChip(
                spec=spec,
                measured={
                    "ghash_s": ghs,
                    "ghash_s_mm2": ghs / area,
                    "ghash_j": ghs / power,
                    "date": date,
                },
            )
        )
    return chips


def study(category: Optional[Category] = None) -> CaseStudy:
    """The Fig 9 case study (all platforms, or one platform class)."""
    suffix = f"_{category.value}" if category is not None else ""
    return CaseStudy(
        name=f"bitcoin{suffix}",
        chips=dataset(category),
        performance_metric="ghash_s_mm2",
        efficiency_metric="ghash_j",
        physical_performance_metric="throughput_per_area",
    )


def asic_study() -> CaseStudy:
    """The Fig 1 view: ASIC chips only, baselined on the first 130nm ASIC."""
    return study(Category.ASIC)
