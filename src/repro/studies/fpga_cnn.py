"""FPGA convolutional-neural-network case study (paper Fig 8, Section IV-C).

FPGA implementations of AlexNet and VGG-16 from FPGA/ISCA/ICCAD/FPL/FCCM
2015-2018, reconstructed from the paper's Fig 8 and the cited publications.
All boards use 28nm (Virtex-7 / Stratix V / Zynq) or 20nm (Arria 10 /
UltraScale) FPGAs.  Headline observations reproduced:

* AlexNet throughput improved ~24x and energy efficiency ~14x; VGG-16 ~9x
  and ~7x (the 3x-larger model stresses FPGA resources harder);
* CSR improved by up to ~6x — CNNs were an *emerging* domain where
  algorithmic innovation (Winograd transforms, GEMM reformulations) still
  outpaced silicon — but for the best-performing FPGAs CSR flattens.
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasheets.schema import Category, ChipSpec
from repro.studies.base import CaseStudy, StudyChip

#: (label, model, node nm, die mm2, clock MHz, power W, GOPS,
#:  %LUT, %DSP, %BRAM, year)
_IMPLEMENTATIONS = (
    # -- AlexNet ------------------------------------------------------------
    ("FPGA2015", "alexnet", 28, 550, 100, 18.6, 61.6, 61, 80, 50, 2015),
    ("FPGA2016", "alexnet", 28, 550, 120, 19.1, 72.4, 58, 84, 61, 2016),
    ("FPGA2016*", "alexnet", 28, 550, 100, 20.0, 114.5, 55, 88, 70, 2016),
    ("ICCAD2016", "alexnet", 28, 550, 200, 21.0, 360.4, 82, 90, 78, 2016),
    ("FPL2016", "alexnet", 28, 550, 150, 21.5, 390.0, 85, 92, 82, 2016),
    ("ISCA2017", "alexnet", 20, 560, 250, 25.0, 620.0, 70, 85, 72, 2017),
    ("ISCA2017*", "alexnet", 20, 560, 270, 26.0, 740.0, 74, 88, 76, 2017),
    ("ISCA2017**", "alexnet", 20, 560, 285, 27.5, 900.0, 78, 92, 80, 2017),
    ("FPGA2017", "alexnet", 20, 560, 303, 33.0, 1382.0, 80, 94, 84, 2017),
    ("FPGA2017*", "alexnet", 20, 560, 385, 41.0, 1460.0, 83, 96, 88, 2017),
    ("FPGA2017**", "alexnet", 20, 560, 370, 45.0, 1480.0, 85, 97, 90, 2017),
    # -- VGG-16 --------------------------------------------------------------
    ("FPGA2016a", "vgg16", 28, 550, 150, 9.6, 137.0, 84, 89, 87, 2016),
    ("FPGA2016b", "vgg16", 28, 550, 120, 19.5, 118.0, 80, 85, 83, 2016),
    ("FPGA2016c", "vgg16", 28, 550, 100, 25.0, 230.0, 86, 92, 90, 2016),
    ("ICCAD2016v", "vgg16", 28, 550, 150, 22.0, 290.0, 88, 94, 92, 2016),
    ("FCCM2017", "vgg16", 20, 560, 200, 24.0, 450.0, 75, 88, 80, 2017),
    ("FPGA2017a", "vgg16", 20, 560, 231, 25.0, 680.0, 78, 92, 85, 2017),
    ("FPGA2017b", "vgg16", 20, 560, 240, 26.0, 866.0, 82, 95, 88, 2017),
    ("FPGA2017c", "vgg16", 20, 560, 200, 28.0, 910.0, 85, 96, 92, 2017),
    ("FPGA2018", "vgg16", 20, 560, 220, 30.0, 1200.0, 88, 97, 94, 2018),
)


def dataset(model: str = "alexnet") -> List[StudyChip]:
    """FPGA implementations of one CNN model (``alexnet`` or ``vgg16``)."""
    if model not in ("alexnet", "vgg16"):
        raise ValueError(f"unknown CNN model {model!r}")
    chips = []
    for (label, cnn, node, area, freq, power, gops,
         lut, dsp, bram, year) in _IMPLEMENTATIONS:
        if cnn != model:
            continue
        spec = ChipSpec(
            name=label,
            category=Category.FPGA,
            node_nm=node,
            area_mm2=area,
            frequency_mhz=freq,
            tdp_w=power,
            year=year,
            vendor="academic",
            source="fig8-reconstruction",
        )
        chips.append(
            StudyChip(
                spec=spec,
                measured={
                    "gops": gops,
                    "power_w": power,
                    "gops_per_j": gops / power,
                    "lut_pct": lut,
                    "dsp_pct": dsp,
                    "bram_pct": bram,
                },
            )
        )
    return chips


def study(model: str = "alexnet") -> CaseStudy:
    """The Fig 8 case study for one CNN model."""
    return CaseStudy(
        name=f"fpga_cnn_{model}",
        chips=dataset(model),
        performance_metric="gops",
        efficiency_metric="gops_per_j",
        # Research FPGA boards draw 10-45W on silicon rated far higher, so
        # the measured power never caps the physical potential.
        capped=False,
    )


def utilization_table(model: str = "alexnet") -> List[Dict[str, float]]:
    """Fig 8b: resource utilisation and clock per implementation."""
    return [
        {
            "name": chip.spec.name,
            "frequency_mhz": chip.spec.frequency_mhz,
            "lut_pct": chip.metric("lut_pct"),
            "dsp_pct": chip.metric("dsp_pct"),
            "bram_pct": chip.metric("bram_pct"),
        }
        for chip in dataset(model)
    ]
