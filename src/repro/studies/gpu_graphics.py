"""GPU graphics-rendering case study (paper Figs 5-7, Section IV-B).

The paper combines an AnandTech game-benchmark database with its GPU
datasheet scrape: 24 game benchmarks over 20+ GPUs spanning the Tesla
(90nm) through Pascal (16nm) architecture generations.  We cannot ship that
scrape, so this module reconstructs it the way the paper's own analysis
factors it (Eq 2): each GPU's frame rate for an application is its physical
(CMOS-model) throughput times an *architecture quality factor* — the
CSR of its architecture generation, calibrated to the paper's Figs 6-7
readings — times a small deterministic per-(GPU, game) affinity jitter.

The calibrated factors encode the paper's observations directly: first
architectures on a new node dip below their predecessors (Fermi on 40nm,
Pascal on 16nm vs. Maxwell 2), mature-node architectures recover, and the
16nm Pascal's CSR is roughly the 65nm Tesla's — six years of architecture
work kept CSR in a 0.95-1.30 band while frame rates rose ~5x on CMOS alone.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cmos.model import CmosPotentialModel
from repro.csr.relations import RelationMatrix, build_relation_matrix, geometric_mean
from repro.datasheets.schema import Category, ChipSpec
from repro.studies.base import CaseStudy, StudyChip

#: (name, architecture, node nm, die mm2, boost MHz, TDP W, year, tier)
_GPUS = (
    ("GeForce 8800 GTX", "Tesla", 90, 484, 575, 145, 2006, "high"),
    ("GeForce GTX 280", "Tesla 2", 65, 576, 602, 236, 2008, "high"),
    ("GeForce GTX 285", "Tesla 2", 55, 470, 648, 204, 2009, "high"),
    ("Radeon HD 5870", "TeraScale 2", 40, 334, 850, 188, 2009, "high"),
    ("GeForce GTX 480", "Fermi", 40, 529, 701, 250, 2010, "high"),
    ("GeForce GTX 580", "Fermi 2", 40, 520, 772, 244, 2010, "high"),
    ("Radeon HD 6970", "TeraScale 2", 40, 389, 880, 250, 2010, "high"),
    ("GeForce GTX 560 Ti", "Fermi 2", 40, 332, 822, 170, 2011, "mid"),
    ("Radeon HD 7970", "GCN 1", 28, 352, 925, 250, 2011, "high"),
    ("GeForce GTX 680", "Kepler", 28, 294, 1006, 195, 2012, "high"),
    ("GeForce GTX 780 Ti", "Kepler", 28, 561, 876, 250, 2013, "high"),
    ("Radeon R9 290X", "GCN 2", 28, 438, 1000, 290, 2013, "high"),
    ("GeForce GTX 750 Ti", "Maxwell 2", 28, 148, 1020, 60, 2014, "low"),
    ("GeForce GTX 980", "Maxwell 2", 28, 398, 1126, 165, 2014, "high"),
    ("GeForce GTX 980 Ti", "Maxwell 2", 28, 601, 1000, 250, 2015, "high"),
    ("Radeon R9 Fury X", "GCN 2", 28, 596, 1050, 275, 2015, "high"),
    ("GeForce GTX 1050 Ti", "Pascal", 14, 132, 1392, 75, 2016, "low"),
    ("GeForce GTX 1060", "Pascal", 16, 200, 1506, 120, 2016, "mid"),
    ("GeForce GTX 1080", "Pascal", 16, 314, 1607, 180, 2016, "high"),
    ("GeForce GTX 1080 Ti", "Pascal", 16, 471, 1481, 250, 2017, "high"),
)

#: Architecture quality factors calibrated to the paper's Figs 6-7 CSR
#: readings (Tesla normalised to 1.0).
ARCH_FACTOR: Dict[str, float] = {
    "Tesla": 1.00,
    "Tesla 2": 1.12,
    "Fermi": 0.95,
    "Fermi 2": 1.08,
    "TeraScale 2": 1.05,
    "GCN 1": 1.02,
    "Kepler": 1.05,
    "GCN 2": 1.12,
    "Maxwell 2": 1.30,
    "Pascal": 1.15,
}

#: The five Fig 5 applications: (label, baseline frame rate).
APPS = (
    ("Crysis 3 FHD", 24.0),
    ("Battlefield 4 FHD", 45.0),
    ("Battlefield 4 QHD", 28.0),
    ("GTA V FHD", 48.0),
    ("GTA V FHD 99th perc.", 35.0),
)

#: The rest of the paper's 24-game benchmark set ("other applications show
#: similar trends"), used by the Figs 6-7 architecture relations.
EXTENDED_APPS = (
    ("Crysis Warhead FHD", 30.0),
    ("Left 4 Dead FHD", 90.0),
    ("Fallout 3 FHD", 60.0),
    ("Dawn of War II FHD", 45.0),
    ("Mass Effect 2 FHD", 70.0),
    ("Portal 2 FHD", 110.0),
    ("Metro 2033 FHD", 34.0),
    ("Tomb Raider FHD", 55.0),
    ("Tomb Raider QHD", 34.0),
    ("Bioshock Infinite FHD", 62.0),
    ("Far Cry 4 FHD", 46.0),
    ("The Witcher 3 FHD", 38.0),
    ("Shadow of Mordor FHD", 52.0),
    ("Shadow of Mordor 4K", 18.0),
    ("DiRT Rally FHD", 70.0),
    ("Civilization VI FHD", 58.0),
    ("Ashes of the Singularity FHD", 33.0),
    ("Hitman 2016 FHD", 47.0),
    ("Doom 2016 FHD", 84.0),
)

#: All 24 benchmarked applications.
ALL_APPS = APPS + EXTENDED_APPS

#: Benchmark-suite windows: a GPU only carries an app's result when its
#: introduction year falls inside the app's testing window — exactly the
#: structure of the scraped data that forces the paper's Eq 4 transitive
#: closure (a 2006 Tesla and a 2017 Pascal were never benchmarked on the
#: same game; the relation matrix must bridge through intermediaries).
APP_WINDOWS: Dict[str, Tuple[int, int]] = {
    "Crysis Warhead FHD": (2006, 2012),
    "Left 4 Dead FHD": (2006, 2012),
    "Fallout 3 FHD": (2006, 2012),
    "Dawn of War II FHD": (2006, 2013),
    "Mass Effect 2 FHD": (2008, 2013),
    "Portal 2 FHD": (2006, 2013),
    "Metro 2033 FHD": (2009, 2014),
    "Tomb Raider FHD": (2009, 2015),
    "Tomb Raider QHD": (2010, 2015),
    "Bioshock Infinite FHD": (2010, 2015),
    "Crysis 3 FHD": (2011, 2017),
    "Battlefield 4 FHD": (2011, 2017),
    "Battlefield 4 QHD": (2011, 2017),
    "GTA V FHD": (2011, 2017),
    "GTA V FHD 99th perc.": (2011, 2017),
    "Far Cry 4 FHD": (2010, 2016),
    "The Witcher 3 FHD": (2012, 2017),
    "Shadow of Mordor FHD": (2010, 2016),
    "Shadow of Mordor 4K": (2013, 2017),
    "DiRT Rally FHD": (2010, 2016),
    "Civilization VI FHD": (2013, 2017),
    "Ashes of the Singularity FHD": (2013, 2017),
    "Hitman 2016 FHD": (2012, 2017),
    "Doom 2016 FHD": (2013, 2017),
}


def _available(app: str, gpu_year: int) -> bool:
    start, end = APP_WINDOWS[app]
    return start <= gpu_year <= end

#: The reference GPU frame rates are expressed against.
_REFERENCE_GPU = "GeForce GTX 560 Ti"


def _jitter(gpu: str, app: str) -> float:
    """Deterministic per-(GPU, game) affinity in [0.94, 1.06]."""
    crc = zlib.crc32(f"{gpu}|{app}".encode())
    return 0.94 + 0.12 * (crc % 1000) / 999.0


def _spec(row) -> ChipSpec:
    name, arch, node, area, freq, tdp, year, _tier = row
    return ChipSpec(
        name=name,
        category=Category.GPU,
        node_nm=node,
        area_mm2=area,
        frequency_mhz=freq,
        tdp_w=tdp,
        year=year,
        vendor="NVIDIA" if name.startswith("GeForce") else "AMD",
        source="fig5-reconstruction",
    )


def frame_rates(
    model: Optional[CmosPotentialModel] = None,
    apps: Sequence = ALL_APPS,
) -> Dict[str, Dict[str, float]]:
    """``{gpu: {app: frames per second}}`` over the full GPU set."""
    cmos = model if model is not None else CmosPotentialModel.paper()
    reference_spec = next(_spec(row) for row in _GPUS if row[0] == _REFERENCE_GPU)
    reference = cmos.evaluate_spec(reference_spec).gains.throughput
    rates: Dict[str, Dict[str, float]] = {}
    for row in _GPUS:
        spec = _spec(row)
        arch = row[1]
        physical = cmos.evaluate_spec(spec).gains.throughput / reference
        rates[spec.name] = {
            app: base * physical * ARCH_FACTOR[arch] * _jitter(spec.name, app)
            for app, base in apps
            if _available(app, spec.year)
        }
    return rates


def dataset(
    app: str, model: Optional[CmosPotentialModel] = None, min_year: int = 2011
) -> List[StudyChip]:
    """Fig 5 population for one application (GPUs introduced >= *min_year*)."""
    rates = frame_rates(model)
    chips = []
    for row in _GPUS:
        spec = _spec(row)
        if spec.year < min_year or app not in rates[spec.name]:
            continue
        fps = rates[spec.name][app]
        chips.append(
            StudyChip(
                spec=spec,
                measured={
                    "fps": fps,
                    "fps_per_w": fps / spec.tdp_w,
                    "tier": {"low": 0.0, "mid": 1.0, "high": 2.0}[row[7]],
                },
            )
        )
    return chips


def study(
    app: str = "GTA V FHD",
    model: Optional[CmosPotentialModel] = None,
    min_year: int = 2011,
) -> CaseStudy:
    """The Fig 5 case study for one game (any of the 24 benchmarked apps)."""
    if app not in {name for name, _ in ALL_APPS}:
        raise ValueError(f"unknown application {app!r}")
    return CaseStudy(
        name=f"gpu_graphics[{app}]",
        chips=dataset(app, model, min_year),
        performance_metric="fps",
        efficiency_metric="fps_per_w",
    )


def architecture_measurements(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-architecture app gains: geometric mean over the arch's GPUs."""
    rates = frame_rates(model)
    by_arch: Dict[str, Dict[str, List[float]]] = {}
    for row in _GPUS:
        name, arch = row[0], row[1]
        for app, _ in ALL_APPS:
            if app in rates[name]:
                by_arch.setdefault(arch, {}).setdefault(app, []).append(
                    rates[name][app]
                )
    return {
        arch: {app: geometric_mean(values) for app, values in apps.items()}
        for arch, apps in by_arch.items()
    }


def architecture_relations(
    model: Optional[CmosPotentialModel] = None, min_shared_apps: int = 5
) -> RelationMatrix:
    """Figs 6-7 relation matrix (Eqs 3-4) over architecture generations."""
    return build_relation_matrix(
        architecture_measurements(model), min_shared_apps=min_shared_apps
    )


def architecture_csr(
    model: Optional[CmosPotentialModel] = None,
) -> Dict[str, float]:
    """Per-architecture CSR: frame rate over physical potential, normalised
    so Tesla is 1.0 (the Figs 6-7 'acceleration returns' axis)."""
    cmos = model if model is not None else CmosPotentialModel.paper()
    rates = frame_rates(cmos)
    reference_spec = next(_spec(row) for row in _GPUS if row[0] == _REFERENCE_GPU)
    reference = cmos.evaluate_spec(reference_spec).gains.throughput
    per_arch: Dict[str, List[float]] = {}
    for row in _GPUS:
        spec = _spec(row)
        physical = cmos.evaluate_spec(spec).gains.throughput / reference
        for app, base in ALL_APPS:
            if app in rates[spec.name]:
                per_arch.setdefault(row[1], []).append(
                    rates[spec.name][app] / (base * physical)
                )
    csr = {arch: geometric_mean(values) for arch, values in per_arch.items()}
    tesla = csr["Tesla"]
    return {arch: value / tesla for arch, value in csr.items()}


def architecture_nodes() -> Dict[str, float]:
    """Representative (newest) node per architecture, for the Figs 6-7 axes."""
    nodes: Dict[str, float] = {}
    for _name, arch, node, *_rest in _GPUS:
        nodes[arch] = min(nodes.get(arch, float("inf")), node)
    return nodes
