"""The paper's Section IV-E observations, as computable checks.

Each function operationalises one of the five "Observations and Insights"
the paper draws from its case studies, returning a small result object with
the quantitative evidence.  The test suite asserts all five hold over the
reconstructed datasets; downstream users can run them over their own
:class:`~repro.studies.base.CaseStudy` populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cmos.model import CmosPotentialModel
from repro.csr.trends import Maturity, assess_maturity
from repro.datasheets.schema import Category
from repro.studies.base import CaseStudy


@dataclass(frozen=True)
class Insight:
    """Outcome of one Section IV-E check."""

    name: str
    holds: bool
    evidence: Dict[str, float]

    def describe(self) -> str:
        evidence = ", ".join(f"{k}={v:.3g}" for k, v in self.evidence.items())
        return f"{self.name}: {'holds' if self.holds else 'FAILS'} ({evidence})"


def specialization_plateaus_with_maturity(
    mature_study: CaseStudy,
    emerging_study: CaseStudy,
    model: Optional[CmosPotentialModel] = None,
) -> Insight:
    """Insight 1: mature domains plateau/drop in CSR; emerging ones climb."""
    cmos = model if model is not None else CmosPotentialModel.paper()
    mature = assess_maturity(
        mature_study.performance_series(cmos), mature_study.name
    )
    emerging = assess_maturity(
        emerging_study.performance_series(cmos), emerging_study.name
    )
    return Insight(
        name="specialization returns track computation maturity",
        holds=(
            mature.maturity in (Maturity.MATURE, Maturity.DECLINING)
            and emerging.maturity is not Maturity.DECLINING
        ),
        evidence={
            "mature_end_slope": mature.csr_end_slope,
            "emerging_end_slope": emerging.csr_end_slope,
        },
    )


def platform_transition_boost(
    study: CaseStudy, model: Optional[CmosPotentialModel] = None
) -> Insight:
    """Insight 2: a new platform delivers a non-recurring CSR boost.

    Measured as: ordering the population by platform generation
    (CPU->GPU->FPGA->ASIC, then date), the largest single-step CSR jump
    happens *at a platform boundary* and exceeds every jump within a
    platform — the boost comes from switching platforms, not from iterating
    within one.
    """
    cmos = model if model is not None else CmosPotentialModel.paper()
    series = study.performance_series(cmos)
    order = {
        Category.CPU: 0, Category.GPU: 1, Category.FPGA: 2, Category.ASIC: 3,
    }
    chips = sorted(
        zip(study.chips, series.points),
        key=lambda pair: (order[pair[0].spec.category], pair[0].spec.year or 0),
    )
    boundary_jumps = []
    within_jumps = []
    for (chip_a, point_a), (chip_b, point_b) in zip(chips, chips[1:]):
        jump = point_b.csr / point_a.csr
        if chip_a.spec.category is chip_b.spec.category:
            within_jumps.append(jump)
        else:
            boundary_jumps.append(jump)
    biggest_boundary = max(boundary_jumps) if boundary_jumps else 1.0
    biggest_within = max(within_jumps) if within_jumps else 1.0
    return Insight(
        name="new platforms deliver a non-recurring CSR boost",
        holds=biggest_boundary > biggest_within,
        evidence={
            "largest_boundary_jump": biggest_boundary,
            "largest_within_platform_jump": biggest_within,
        },
    )


def confined_domain_stagnation(
    study: CaseStudy, model: Optional[CmosPotentialModel] = None
) -> Insight:
    """Insight 3: confined domains' CSR stagnates across *all* platforms.

    Measured as: total CSR growth within the final platform is small
    relative to the domain's total gain.
    """
    cmos = model if model is not None else CmosPotentialModel.paper()
    series = study.performance_series(cmos)
    total_gain = series.max_gain
    csr_spread = series.max_csr / min(p.csr for p in series)
    return Insight(
        name="confined domains stagnate algorithmically",
        holds=csr_spread < total_gain / 10,
        evidence={"csr_spread": csr_spread, "total_gain": total_gain},
    )


def accelerators_still_ride_transistors(
    studies: List[CaseStudy], model: Optional[CmosPotentialModel] = None
) -> Insight:
    """Insight 4: physical capabilities matter in *every* domain.

    Measured as: in each study, the physical gain of the best performer is
    at least comparable (>= 1/3) to its CSR — i.e. no domain's gains are
    mostly CMOS-independent.
    """
    cmos = model if model is not None else CmosPotentialModel.paper()
    evidence = {}
    holds = True
    for study in studies:
        best = study.performance_series(cmos).best_performer()
        ratio = best.physical / best.csr
        evidence[f"{study.name}_phys_over_csr"] = ratio
        if ratio < 1 / 3:
            holds = False
    return Insight(
        name="specialized chips still depend on transistors",
        holds=holds,
        evidence=evidence,
    )


def default_insights(
    model: Optional[CmosPotentialModel] = None,
) -> List[Insight]:
    """All Section IV-E insights over the paper's four domains."""
    from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders

    cmos = model if model is not None else CmosPotentialModel.paper()
    return [
        specialization_plateaus_with_maturity(
            gpu_graphics.study(), fpga_cnn.study("alexnet"), cmos
        ),
        platform_transition_boost(bitcoin.study(), cmos),
        confined_domain_stagnation(bitcoin.asic_study(), cmos),
        accelerators_still_ride_transistors(
            [
                video_decoders.study(),
                gpu_graphics.study(),
                fpga_cnn.study("alexnet"),
                bitcoin.asic_study(),
            ],
            cmos,
        ),
    ]
