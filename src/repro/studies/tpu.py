"""TPU worked example: Table I's specialization concepts, quantified.

The paper uses Google's TPU as its running example of the three
specialization concepts applied to all three processing components
(Table I, Fig 10), citing its ~80x energy-efficiency win over contemporary
CPUs *on the same-generation CMOS*.  This module reproduces that style of
argument inside our DSE: a DNN-inference core (dense matrix multiply +
activation) is evaluated at a fixed 28nm budget twice — once as a plain
spatial mapping ("general-purpose-like": no partitioning, no
simplification, no fusion) and once with every concept applied.  Because
the node is held fixed, the entire gain is specialization return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.accel.cpu import CpuReport, evaluate_on_cpu
from repro.accel.design import DesignPoint, baseline_design
from repro.accel.power import PowerReport, evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.accel.streaming import StreamingReport, evaluate_streaming
from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import floats

#: The TPU's node (the paper: "a 28nm ASIC chip called a TPU").
TPU_NODE_NM: float = 28.0

#: How each Table I concept maps onto this model's knobs.
CONCEPT_MAPPING: Dict[str, str] = {
    "memory simplification": "scratchpad arrays with direct addressing "
    "(Tracer arrays; no cache hierarchy is modelled at all)",
    "memory partitioning": "partition factor = parallel scratchpad banks "
    "holding weight/activation tiles",
    "memory heterogeneity": "separate weight / input / output arrays",
    "communication simplification": "pure producer-consumer dataflow edges "
    "(FIFO-like), no shared interconnect",
    "communication partitioning": "partition factor = concurrent operand "
    "paths into the MAC array",
    "communication heterogeneity": "dedicated output path per result "
    "(DFG output vertices)",
    "computation simplification": "simplification degree = narrow 8-bit "
    "integer MAC datapaths",
    "computation partitioning": "partition factor = parallel multiply+add "
    "lanes (the systolic array)",
    "computation heterogeneity": "fused MAC chains and the dedicated ReLU "
    "activation unit (fusion window > 1)",
}


def build_inference_kernel(
    n_inputs: int = 16, n_outputs: int = 8, seed: int = 2201
) -> TracedKernel:
    """One dense DNN inference layer: ``y = relu(W @ x)`` (Fig 10 core)."""
    weights = floats(seed, n_outputs * n_inputs)
    activations = floats(seed + 1, n_inputs)
    t = Tracer("tpu-layer")
    w = t.array("weights", weights)
    x = t.array("inputs", activations)
    for out in range(n_outputs):
        terms = [
            w.read(out * n_inputs + i) * x.read(i) for i in range(n_inputs)
        ]
        while len(terms) > 1:
            terms = [
                terms[i] + terms[i + 1] for i in range(0, len(terms) - 1, 2)
            ] + ([terms[-1]] if len(terms) % 2 else [])
        t.output(t.relu(terms[0]), f"y[{out}]")
    return t.kernel()


@dataclass(frozen=True)
class TpuCaseStudy:
    """Outcome of the fixed-node specialization comparison.

    Three rungs on the specialization ladder, all at 28nm:

    * ``cpu`` — the general-purpose baseline (per-instruction overheads,
      serial issue; :mod:`repro.accel.cpu`), the TPU paper's comparator;
    * ``generic`` — a plain spatial mapping with no concepts applied
      (already an accelerator, but an unoptimised one);
    * ``specialized`` / ``streaming`` — every Table I concept applied,
      latency mode and pipelined mode.
    """

    cpu: CpuReport
    generic: PowerReport
    specialized: PowerReport
    streaming: StreamingReport

    @property
    def efficiency_gain_vs_cpu(self) -> float:
        """The TPU-style headline: energy efficiency vs the CPU, same node."""
        return self.streaming.energy_efficiency / self.cpu.energy_efficiency

    @property
    def efficiency_gain(self) -> float:
        """Concept-only CSR: specialized vs plain spatial mapping."""
        return self.specialized.energy_efficiency / self.generic.energy_efficiency

    @property
    def throughput_gain(self) -> float:
        return self.specialized.throughput_ops / self.generic.throughput_ops

    @property
    def streaming_efficiency_gain(self) -> float:
        """With pipelining (systolic reuse), vs the generic mapping."""
        return self.streaming.energy_efficiency / self.generic.energy_efficiency


def tpu_case_study(
    library: Optional[ResourceLibrary] = None,
    partition: int = 64,
    simplification: int = 9,
) -> TpuCaseStudy:
    """Run the Table I comparison at a fixed 28nm budget."""
    lib = library if library is not None else ResourceLibrary()
    kernel = build_inference_kernel()
    cpu = evaluate_on_cpu(kernel, TPU_NODE_NM, library=lib)
    generic = evaluate_design(kernel, baseline_design(TPU_NODE_NM), lib)
    tpu_design = DesignPoint(
        node_nm=TPU_NODE_NM,
        partition=partition,
        simplification=simplification,
        heterogeneity=True,
    )
    specialized = evaluate_design(kernel, tpu_design, lib)
    streaming = evaluate_streaming(kernel, tpu_design, lib)
    return TpuCaseStudy(
        cpu=cpu, generic=generic, specialized=specialized, streaming=streaming
    )
