"""ASIC video decoders case study (paper Fig 4, Section IV-A).

Twelve fabricated decoder ASICs from ISSCC/VLSI/JSSC/ESSCIRC 2006-2017,
reconstructed from the paper's Fig 4 and the cited publications: process
node, core area, clock, measured pixel throughput and power.  The paper's
headline observations this dataset reproduces:

* absolute decoding throughput improved by up to ~64x and energy efficiency
  by up to ~34x over the ISSCC2006 baseline;
* for the best-performing ASICs, CSR is *below one* — the physical layer
  (36x more transistors, 180nm -> 40/28nm) outpaced the gains.
"""

from __future__ import annotations

from typing import List

from repro.datasheets.schema import Category, ChipSpec
from repro.studies.base import CaseStudy, StudyChip

#: (label, node nm, core area mm2, transistors 1e6 (logic + SRAM, estimated
#:  from reported gate and SRAM-bit counts as in the paper's Fig 4b),
#:  clock MHz, power W, throughput MPixels/s, year)
_DECODERS = (
    ("ISSCC2006", 180, 1.68, 0.9, 120, 0.420, 62.0, 2006),
    ("ISSCC2007", 130, 2.80, 1.4, 135, 0.071, 62.0, 2007),
    ("VLSI2009", 90, 3.00, 2.0, 150, 0.060, 125.0, 2009),
    ("ISSCC2010", 90, 4.20, 3.2, 200, 0.060, 250.0, 2010),
    ("JSSC2011", 90, 6.00, 6.0, 166, 0.170, 531.0, 2011),
    ("ISSCC2011", 65, 8.00, 9.5, 200, 0.400, 1912.0, 2011),
    ("ISSCC2012", 65, 9.00, 12.0, 280, 0.410, 2016.0, 2012),
    ("ISSCC2013", 40, 1.80, 4.5, 200, 0.067, 249.0, 2013),
    ("ESSCIRC2014", 28, 2.20, 8.0, 250, 0.100, 498.0, 2014),
    ("JSSC2016", 28, 2.60, 10.0, 300, 0.150, 500.0, 2016),
    ("ESSCIRC2016", 28, 2.60, 10.0, 300, 0.095, 500.0, 2016),
    ("JSSC2017", 40, 16.00, 32.5, 400, 1.500, 3981.0, 2017),
)

#: The chip every Fig 4 series is normalised to.
BASELINE = "ISSCC2006"


def dataset() -> List[StudyChip]:
    """The twelve decoder ASICs with measured throughput and power."""
    chips = []
    for label, node, area, trans_m, freq, power, mpixels, year in _DECODERS:
        spec = ChipSpec(
            name=label,
            category=Category.ASIC,
            node_nm=node,
            area_mm2=area,
            transistors=trans_m * 1e6,
            frequency_mhz=freq,
            tdp_w=power,
            year=year,
            vendor="academic",
            source="fig4-reconstruction",
        )
        chips.append(
            StudyChip(
                spec=spec,
                measured={
                    "throughput_mpixels_s": mpixels,
                    "power_w": power,
                    "efficiency_mpixels_j": mpixels / power,
                },
            )
        )
    return chips


def study() -> CaseStudy:
    """The Fig 4 case study object."""
    return CaseStudy(
        name="video_decoders",
        chips=dataset(),
        performance_metric="throughput_mpixels_s",
        efficiency_metric="efficiency_mpixels_j",
        # These IP blocks run at milliwatts, far below their silicon's
        # thermal capacity: physical potential is the uncapped TC x f
        # "transistor performance" of the paper's Fig 4 discussion.
        capped=False,
    )
