"""Pluggable technology backends for the accelerator-wall model.

Importing this package registers the built-in backends:

``cmos``
    The paper's planar-CMOS model, bit-identical to
    ``CmosPotentialModel.paper()`` — the scalar oracle.
``finfet``
    Tri-gate devices (Intel 22nm disclosures / Lumos FinFET-hp corner).
``tfet``
    Steep-slope tunneling FETs (Lumos BCE device corners).
``chiplet``
    Monad-style reticle-escape disaggregation over a base technology.

See :mod:`repro.tech.base` for the backend protocol and registry and
:mod:`repro.tech.scenarios` for the "does the wall move?" engine.
"""

from __future__ import annotations

from repro.tech.base import (
    TechBackend,
    TechMetadata,
    backend_index,
    backend_names,
    get_backend,
    register_backend,
)
from repro.tech.carbon import CarbonParams, CarbonReport, backend_carbon, carbon_footprint
from repro.tech.chiplet import ChipletBackend, ChipletPotentialModel, chiplet_backend
from repro.tech.cmos import CmosBackend, cmos_backend
from repro.tech.device import DerivedDeviceBackend, DeviceParams, derived_backend
from repro.tech.finfet import finfet_backend
from repro.tech.tfet import tfet_backend

__all__ = [
    "TechBackend",
    "TechMetadata",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_index",
    "CarbonParams",
    "CarbonReport",
    "carbon_footprint",
    "backend_carbon",
    "CmosBackend",
    "cmos_backend",
    "DeviceParams",
    "DerivedDeviceBackend",
    "derived_backend",
    "ChipletBackend",
    "ChipletPotentialModel",
    "chiplet_backend",
    "finfet_backend",
    "tfet_backend",
]

# Built-in registrations (idempotent across re-imports because module
# code runs once; `replace=True` keeps interactive reloads painless).
register_backend(cmos_backend(), replace=True)
register_backend(finfet_backend(), replace=True)
register_backend(tfet_backend(), replace=True)
register_backend(chiplet_backend(), replace=True)
