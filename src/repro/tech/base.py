"""Technology-backend protocol and registry.

The paper's potential model is calibrated to planar/bulk CMOS.  A
:class:`TechBackend` packages one alternative device technology as the
same model machinery — a :class:`~repro.cmos.model.CmosPotentialModel`
built from (possibly re-parameterised) Fig 3a/3b/3c fits — plus the
metadata, parameter provenance, and wall-envelope hooks the scenario
engine (:mod:`repro.tech.scenarios`) needs to answer "does the
accelerator wall move under technology T?".

Backends register into a process-global registry; the built-in set
(``cmos``, ``finfet``, ``tfet``, ``chiplet``) is registered when
:mod:`repro.tech` is imported.  The ``cmos`` backend *is* the paper
model — bit-identical to ``CmosPotentialModel.paper()`` — and acts as
the scalar oracle every other backend's deltas are measured against.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cmos.model import CmosPotentialModel
from repro.cmos.nodes import CANONICAL_NODES
from repro.errors import ValidationError
from repro.wall.limits import DomainLimits

__all__ = [
    "TechMetadata",
    "TechBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_index",
]

#: Node grid the per-backend scaling surfaces are reported over (newest
#: last, matching the direction "monotone in node" is checked in).
SURFACE_NODES: Tuple[float, ...] = tuple(sorted(CANONICAL_NODES, reverse=True))


@dataclass(frozen=True)
class TechMetadata:
    """Identity and provenance of one technology backend.

    ``parameters`` is the backend's full knob set; its canonical JSON
    encoding is content-hashed into provenance manifests so two runs can
    be compared at the parameter level, not just by backend name.
    """

    name: str
    display_name: str
    description: str
    #: Where the parameter values come from (paper/table citation).
    source: str
    parameters: Mapping[str, Union[float, int, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValidationError(
                f"backend name must be a non-empty identifier, got {self.name!r}"
            )


class TechBackend:
    """One device technology expressed through the paper's model machinery.

    Subclasses implement :meth:`build_model`; everything else — caching,
    parameter hashing, the density/TDP/frequency-energy scaling surfaces,
    and the Table V envelope hook — is shared.  The built model is cached
    (and can be :meth:`primed <prime>` from a serve snapshot so warm-boot
    replicas skip the build).
    """

    def __init__(self, metadata: TechMetadata):
        self._metadata = metadata
        self._model: Optional[CmosPotentialModel] = None
        self._model_lock = threading.Lock()

    @property
    def metadata(self) -> TechMetadata:
        return self._metadata

    @property
    def name(self) -> str:
        return self._metadata.name

    # -- model construction --------------------------------------------------

    def build_model(self) -> CmosPotentialModel:
        """Construct the backend's fitted potential model (uncached)."""
        raise NotImplementedError

    def model(self) -> CmosPotentialModel:
        """The backend's potential model, built once and cached."""
        model = self._model
        if model is None:
            with self._model_lock:
                model = self._model
                if model is None:
                    model = self.build_model()
                    self._model = model
        return model

    def prime(self, model: CmosPotentialModel) -> None:
        """Seed the model cache (serve-snapshot warm boot)."""
        with self._model_lock:
            self._model = model

    # -- provenance ----------------------------------------------------------

    def param_hash(self) -> str:
        """Content hash of the backend's parameter set (sha256 hex)."""
        canonical = json.dumps(
            {"name": self.name, "parameters": dict(self._metadata.parameters)},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly description (``GET /tech`` and manifest payloads)."""
        return {
            "name": self.name,
            "display_name": self._metadata.display_name,
            "description": self._metadata.description,
            "source": self._metadata.source,
            "parameters": dict(self._metadata.parameters),
            "param_hash": self.param_hash(),
        }

    # -- scenario hooks ------------------------------------------------------

    def wall_limits(self, row: DomainLimits) -> DomainLimits:
        """The Table V envelope as this technology sees it.

        Default: unchanged.  Backends override to move the physical
        envelope itself — chiplets lift the die-size ceiling past the
        reticle, slower devices derate the achievable clock.
        """
        return row

    def wall_limit_candidates(self, row: DomainLimits) -> Tuple[DomainLimits, ...]:
        """Alternative Table V envelopes this technology could build.

        The scenario engine evaluates every candidate and keeps the best:
        disaggregation (or any other envelope change) is a design *option*,
        so a backend's wall is never worse than declining to use it.
        Default: just :meth:`wall_limits`.
        """
        return (self.wall_limits(row),)

    def die_count(self, area_mm2: float) -> int:
        """Dies a chip of *area* is split into (1 for monolithic techs)."""
        return 1

    # -- scaling surfaces ----------------------------------------------------

    def density_surface(
        self,
        nodes: Sequence[float] = SURFACE_NODES,
        area_mm2: float = 100.0,
    ) -> Dict[float, float]:
        """Fig 3b surface: predicted transistor count per node at fixed area."""
        fit = self.model().density_fit
        return {node: fit.transistors_for_chip(area_mm2, node) for node in nodes}

    def tdp_surface(
        self,
        nodes: Sequence[float] = SURFACE_NODES,
        tdp_w: float = 100.0,
        frequency_mhz: float = 1000.0,
    ) -> Dict[float, float]:
        """Fig 3c surface: active-transistor budget per node at fixed TDP."""
        tdp_model = self.model().tdp_model
        return {
            node: tdp_model.active_transistors(node, tdp_w, frequency_mhz)
            for node in nodes
        }

    def frequency_energy_surface(
        self, nodes: Sequence[float] = SURFACE_NODES
    ) -> Dict[float, Dict[str, float]]:
        """Fig 3a surface: per-node device operating point (absolute table)."""
        scaling = self.model().scaling
        surface: Dict[float, Dict[str, float]] = {}
        for node in nodes:
            row = scaling.scaling(node)
            surface[node] = {
                "vdd": row.vdd,
                "frequency": row.frequency,
                "dynamic_energy": row.dynamic_energy,
                "leakage_power": row.leakage_power,
            }
        return surface


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, TechBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: TechBackend, replace: bool = False) -> TechBackend:
    """Add *backend* to the global registry (keyed by its metadata name)."""
    with _REGISTRY_LOCK:
        if backend.name in _REGISTRY and not replace:
            raise ValidationError(
                f"technology backend {backend.name!r} is already registered"
            )
        _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> TechBackend:
    """Look up a registered backend; raises with the valid names on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown technology backend {name!r}; registered: "
            f"{', '.join(backend_names())}"
        ) from None


def backend_names() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def backend_index() -> List[Dict[str, object]]:
    """``to_dict()`` of every registered backend, sorted by name."""
    return [_REGISTRY[name].to_dict() for name in backend_names()]
