"""Carbon overlay: embodied + operational gCO2e for any tech backend.

Follows the Sustainable-Hardware-Specialization / ACT accounting split:

* **Embodied** carbon is manufacturing: die area times a per-node fab
  intensity (gCO2e per good mm^2 — smaller nodes need more EUV/multi-
  patterning passes, modeled as a power law in the node ratio),
  amortised over die yield, plus a packaging adder per extra chiplet.
* **Operational** carbon is lifetime electricity: average draw times
  lifetime hours times the grid intensity.

The overlay is computable for *any* backend because it consumes only
(area, node, power, die count, die yield) — quantities every backend's
model already produces.  Invariants the fuzz suite pins: every
component is non-negative and the total is exactly their sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.cmos.scaling import REFERENCE_NODE
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.tech.base import TechBackend

__all__ = ["CarbonParams", "CarbonReport", "carbon_footprint", "backend_carbon"]


@dataclass(frozen=True)
class CarbonParams:
    """Accounting assumptions for the carbon overlay."""

    #: Fab intensity at the 45nm reference node, gCO2e per mm^2 of good
    #: silicon (ACT-class estimates put advanced logic at 1-2 kg/cm^2;
    #: older nodes are far cheaper — 10 g/mm^2 ~= 1 kg/cm^2 at 45nm).
    fab_intensity_gco2e_per_mm2: float = 10.0
    #: Fab intensity grows as ``(45 / node)^exponent`` toward newer nodes.
    fab_intensity_exponent: float = 0.4
    #: Grid carbon intensity, gCO2e per kWh (world average ~475).
    grid_intensity_gco2e_per_kwh: float = 475.0
    #: Service lifetime in powered hours (3 years continuous).
    lifetime_hours: float = 3 * 8760.0
    #: Average utilisation of the power envelope over the lifetime.
    utilization: float = 0.5
    #: Embodied adder per extra chiplet (substrate, interposer, SerDes).
    packaging_overhead_fraction: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "fab_intensity_gco2e_per_mm2",
            "grid_intensity_gco2e_per_kwh",
            "lifetime_hours",
        ):
            value = getattr(self, name)
            if not (math.isfinite(value) and value > 0):
                raise ValidationError(f"{name} must be positive, got {value!r}")
        if not (0.0 <= self.utilization <= 1.0):
            raise ValidationError(
                f"utilization must be in [0, 1], got {self.utilization!r}"
            )
        if self.packaging_overhead_fraction < 0:
            raise ValidationError(
                "packaging_overhead_fraction must be >= 0, got "
                f"{self.packaging_overhead_fraction!r}"
            )

    def fab_intensity(self, node_nm: float) -> float:
        """gCO2e per good mm^2 at *node* (reference intensity power law)."""
        if not (math.isfinite(node_nm) and node_nm > 0):
            raise ValidationError(f"node must be positive, got {node_nm!r}")
        return self.fab_intensity_gco2e_per_mm2 * (
            REFERENCE_NODE / node_nm
        ) ** self.fab_intensity_exponent


@dataclass(frozen=True)
class CarbonReport:
    """Lifetime gCO2e decomposition for one chip-equivalent."""

    node_nm: float
    area_mm2: float
    power_w: float
    die_count: int
    die_yield: float
    embodied_gco2e: float
    operational_gco2e: float

    @property
    def total_gco2e(self) -> float:
        return self.embodied_gco2e + self.operational_gco2e

    def to_dict(self) -> Dict[str, float]:
        return {
            "node_nm": self.node_nm,
            "area_mm2": self.area_mm2,
            "power_w": self.power_w,
            "die_count": float(self.die_count),
            "die_yield": self.die_yield,
            "embodied_gco2e": self.embodied_gco2e,
            "operational_gco2e": self.operational_gco2e,
            "total_gco2e": self.total_gco2e,
        }


def carbon_footprint(
    area_mm2: float,
    node_nm: float,
    power_w: float,
    params: CarbonParams = CarbonParams(),
    die_count: int = 1,
    die_yield: float = 1.0,
) -> CarbonReport:
    """Lifetime carbon for one chip-equivalent of *area* at *node*."""
    if not (math.isfinite(area_mm2) and area_mm2 > 0):
        raise ValidationError(f"area must be positive, got {area_mm2!r}")
    if not (math.isfinite(power_w) and power_w >= 0):
        raise ValidationError(f"power must be non-negative, got {power_w!r}")
    if die_count < 1:
        raise ValidationError(f"die count must be >= 1, got {die_count!r}")
    if not (0.0 < die_yield <= 1.0):
        raise ValidationError(f"die yield must be in (0, 1], got {die_yield!r}")
    packaging = 1.0 + params.packaging_overhead_fraction * (die_count - 1)
    embodied = area_mm2 * params.fab_intensity(node_nm) / die_yield * packaging
    operational = (
        power_w
        * params.utilization
        * params.lifetime_hours
        / 1000.0  # Wh -> kWh
        * params.grid_intensity_gco2e_per_kwh
    )
    return CarbonReport(
        node_nm=float(node_nm),
        area_mm2=float(area_mm2),
        power_w=float(power_w),
        die_count=int(die_count),
        die_yield=float(die_yield),
        embodied_gco2e=embodied,
        operational_gco2e=operational,
    )


def backend_carbon(
    backend: "TechBackend",
    node_nm: float,
    area_mm2: float,
    power_w: float,
    params: CarbonParams = CarbonParams(),
) -> CarbonReport:
    """Carbon for a chip built under *backend* (die split and yield aware)."""
    die_count = backend.die_count(area_mm2)
    per_die = area_mm2 / die_count
    die_yield_fn = getattr(backend, "die_yield", None)
    die_yield = die_yield_fn(per_die) if callable(die_yield_fn) else 1.0
    return carbon_footprint(
        area_mm2,
        node_nm,
        power_w,
        params=params,
        die_count=die_count,
        die_yield=die_yield,
    )
