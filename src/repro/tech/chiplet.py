"""The ``chiplet`` backend: disaggregate past the reticle, pay for links.

Monad-style multi-chip-module modeling layered on a base technology
(planar CMOS by default).  Three effects, applied only when a queried
die exceeds the photolithographic reticle limit:

* **Reticle escape** — a target area ``A`` splits into
  ``n = ceil(A / reticle)`` dies (capped at ``max_chiplets``).  Because
  the Fig 3b density law is sublinear (``TC ~ D^0.877`` — design
  complexity erodes density on huge dice), ``n`` small dies hold
  ``n^(1-0.877)`` *more* transistors than one monolithic die of the
  same total area: disaggregation is a density win, not just an area
  win.
* **Inter-chiplet communication** — each extra die taxes delivered
  throughput by a per-chiplet link efficiency (cross-die wires are
  slower and costlier than on-die wires).
* **Packaging power** — SerDes and the package substrate add a power
  overhead that grows with die count, degrading energy efficiency.

Yield enters the cost/carbon side: a Murphy/negative-binomial model
``Y(A) = (1 + A*D0/alpha)^(-alpha)`` makes small dies dramatically
cheaper per good mm^2, which is the economic argument for chiplets and
feeds the per-die embodied-carbon amortisation in
:mod:`repro.tech.carbon`.

Historical chips with disclosed transistor counts (``transistors``
given) and any die under the reticle bypass disaggregation entirely, so
the CSR baseline chips evaluate exactly as under the base technology.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional, Union

from repro.cmos.gains import ChipGains
from repro.cmos.model import CmosPotentialModel
from repro.errors import ValidationError
from repro.tech.base import TechBackend, TechMetadata
from repro.wall.limits import DomainLimits
from repro.wall.surmount import (
    COMM_EFFICIENCY_PER_CHIPLET,
    PACKAGING_POWER_OVERHEAD,
)

__all__ = [
    "RETICLE_LIMIT_MM2",
    "ChipletPotentialModel",
    "ChipletBackend",
    "chiplet_backend",
    "murphy_yield",
]

#: Photolithographic reticle field, mm^2 (ASML full-field 26mm x 33mm).
RETICLE_LIMIT_MM2: float = 858.0

#: Default maximum dies per package (interposer escape-routing bound).
DEFAULT_MAX_CHIPLETS: int = 4

#: Murphy-model defect density, defects per mm^2 (mature-process figure).
DEFAULT_DEFECT_DENSITY_PER_MM2: float = 0.001

#: Negative-binomial clustering parameter for the yield model.
DEFAULT_YIELD_ALPHA: float = 3.0


def murphy_yield(
    area_mm2: float,
    defect_density_per_mm2: float = DEFAULT_DEFECT_DENSITY_PER_MM2,
    alpha: float = DEFAULT_YIELD_ALPHA,
) -> float:
    """Negative-binomial die yield ``(1 + A*D0/alpha)^(-alpha)``."""
    if not (math.isfinite(area_mm2) and area_mm2 > 0):
        raise ValidationError(f"die area must be positive, got {area_mm2!r}")
    return (1.0 + area_mm2 * defect_density_per_mm2 / alpha) ** (-alpha)


class ChipletPotentialModel(CmosPotentialModel):
    """The base potential model with reticle-aware disaggregation.

    Area-only queries larger than the reticle are evaluated as an MCM:
    the potential transistor count comes from ``n`` reticle-sized dies
    (a density win under the sublinear Fig 3b law), then delivered
    throughput and power are taxed by the link/packaging overheads.
    Queries with an explicit transistor count, or dies that fit a single
    reticle, delegate to the base model untouched.
    """

    def __init__(
        self,
        base: CmosPotentialModel,
        reticle_limit_mm2: float = RETICLE_LIMIT_MM2,
        max_chiplets: int = DEFAULT_MAX_CHIPLETS,
        comm_efficiency: float = COMM_EFFICIENCY_PER_CHIPLET,
        packaging_overhead: float = PACKAGING_POWER_OVERHEAD,
    ):
        super().__init__(
            density_fit=base.density_fit,
            tdp_model=base.tdp_model,
            scaling=base.scaling,
            gains_config=base.gains_model.config,
        )
        if reticle_limit_mm2 <= 0:
            raise ValidationError(f"reticle limit must be positive, got {reticle_limit_mm2!r}")
        if max_chiplets < 1:
            raise ValidationError(f"max_chiplets must be >= 1, got {max_chiplets!r}")
        self.reticle_limit_mm2 = float(reticle_limit_mm2)
        self.max_chiplets = int(max_chiplets)
        self.comm_efficiency = float(comm_efficiency)
        self.packaging_overhead = float(packaging_overhead)

    def die_count(self, area_mm2: Optional[float]) -> int:
        """Dies an *area* target splits into (1 when it fits the reticle)."""
        if area_mm2 is None or area_mm2 <= self.reticle_limit_mm2:
            return 1
        return min(self.max_chiplets, math.ceil(area_mm2 / self.reticle_limit_mm2))

    def evaluate(
        self,
        node_nm: Union[float, str],
        frequency_mhz: float,
        area_mm2: Optional[float] = None,
        transistors: Optional[float] = None,
        tdp_w: Optional[float] = None,
        cap_mode: str = "analytic",
    ) -> ChipGains:
        if transistors is not None or area_mm2 is None:
            return super().evaluate(
                node_nm, frequency_mhz, area_mm2, transistors, tdp_w, cap_mode
            )
        n = self.die_count(area_mm2)
        if n == 1:
            return super().evaluate(
                node_nm, frequency_mhz, area_mm2, None, tdp_w, cap_mode
            )
        per_die = area_mm2 / n
        potential = n * self.density_fit.transistors_for_chip(per_die, node_nm)
        gains = super().evaluate(
            node_nm,
            frequency_mhz,
            area_mm2=area_mm2,
            transistors=potential,
            tdp_w=tdp_w,
            cap_mode=cap_mode,
        )
        comm = self.comm_efficiency ** (n - 1)
        power_factor = 1.0 + self.packaging_overhead * (n - 1) / n
        return replace(
            gains,
            active_transistors=gains.active_transistors * comm,
            power_w=gains.power_w * power_factor,
        )


class ChipletBackend(TechBackend):
    """Disaggregation backend wrapping a base technology backend."""

    def __init__(
        self,
        metadata: TechMetadata,
        base: TechBackend,
        reticle_limit_mm2: float = RETICLE_LIMIT_MM2,
        max_chiplets: int = DEFAULT_MAX_CHIPLETS,
        defect_density_per_mm2: float = DEFAULT_DEFECT_DENSITY_PER_MM2,
        yield_alpha: float = DEFAULT_YIELD_ALPHA,
    ):
        super().__init__(metadata)
        self._base = base
        self._reticle_limit_mm2 = reticle_limit_mm2
        self._max_chiplets = max_chiplets
        self.defect_density_per_mm2 = defect_density_per_mm2
        self.yield_alpha = yield_alpha

    @property
    def base(self) -> TechBackend:
        return self._base

    def build_model(self) -> ChipletPotentialModel:
        return ChipletPotentialModel(
            self._base.model(),
            reticle_limit_mm2=self._reticle_limit_mm2,
            max_chiplets=self._max_chiplets,
        )

    def wall_limits(self, row: DomainLimits) -> DomainLimits:
        """Lift the die ceiling: the package, not the reticle, is the limit."""
        return replace(row, max_die_mm2=row.max_die_mm2 * self._max_chiplets)

    def wall_limit_candidates(self, row: DomainLimits) -> "tuple[DomainLimits, ...]":
        """Monolithic vs. disaggregated: in TDP-bound domains the extra
        silicon buys nothing and the links cost throughput, so staying on
        one die must remain on the table."""
        return (row, self.wall_limits(row))

    def die_count(self, area_mm2: float) -> int:
        model = self.model()
        assert isinstance(model, ChipletPotentialModel)
        return model.die_count(area_mm2)

    def die_yield(self, area_mm2: float) -> float:
        """Per-die yield at the backend's defect density (for cost/carbon)."""
        return murphy_yield(
            area_mm2, self.defect_density_per_mm2, self.yield_alpha
        )


def chiplet_backend(base: Optional[TechBackend] = None) -> ChipletBackend:
    if base is None:
        from repro.tech.cmos import cmos_backend

        base = cmos_backend()
    parameters: Dict[str, Union[float, int, str]] = {
        "base": base.name,
        "reticle_limit_mm2": RETICLE_LIMIT_MM2,
        "max_chiplets": DEFAULT_MAX_CHIPLETS,
        "comm_efficiency_per_chiplet": COMM_EFFICIENCY_PER_CHIPLET,
        "packaging_power_overhead": PACKAGING_POWER_OVERHEAD,
        "defect_density_per_mm2": DEFAULT_DEFECT_DENSITY_PER_MM2,
        "yield_alpha": DEFAULT_YIELD_ALPHA,
    }
    return ChipletBackend(
        TechMetadata(
            name="chiplet",
            display_name="Chiplet / MCM disaggregation",
            description=(
                "The base technology split across up to "
                f"{DEFAULT_MAX_CHIPLETS} reticle-sized dies: larger "
                "packages and a sublinear-density win, taxed by "
                "inter-chiplet links and packaging power."
            ),
            source=(
                "Monad-style chiplet cost modeling; ASML full-field "
                "reticle (26x33mm); Murphy/negative-binomial yield"
            ),
            parameters=parameters,
        ),
        base=base,
    )
