"""The default ``cmos`` backend — the paper model, bit-identical.

This backend *is* the scalar oracle: :meth:`build_model` returns
``CmosPotentialModel.paper()`` with no re-parameterisation whatsoever,
so every number produced through the ``cmos`` backend is bit-identical
to the legacy direct-model path (``repro check`` pins this, and the
golden-drift comparator keeps it pinned across commits).  Cross-tech
deltas in :mod:`repro.tech.scenarios` are measured against it.
"""

from __future__ import annotations

from repro.cmos.model import CmosPotentialModel
from repro.tech.base import TechBackend, TechMetadata

__all__ = ["CmosBackend", "cmos_backend"]


class CmosBackend(TechBackend):
    """Planar/bulk CMOS exactly as the paper fits it."""

    def build_model(self) -> CmosPotentialModel:
        return CmosPotentialModel.paper()


def cmos_backend() -> CmosBackend:
    return CmosBackend(
        TechMetadata(
            name="cmos",
            display_name="Planar CMOS (paper baseline)",
            description=(
                "The paper's published potential model: Fig 3b density law "
                "TC(D) = 4.99e9 * D^0.877, Fig 3c per-era TDP budget fits, "
                "and the Stillmaker & Baas + IRDS-2017 device scaling table."
            ),
            source=(
                "Fuchs & Wentzlaff, 'The Accelerator Wall: Limits of Chip "
                "Specialization', HPCA 2019 (Figs 3a-3c, Table V)"
            ),
            parameters={
                "density_coefficient": 4.99e9,
                "density_exponent": 0.877,
                "reference_node_nm": 45.0,
                "final_node_nm": 5.0,
            },
        )
    )
