"""Derived device backends: new transistors through the same fit machinery.

A :class:`DeviceParams` set captures how one device technology differs
from the paper's planar-CMOS calibration as multiplicative knobs on the
published Fig 3a/3b/3c laws:

* ``dynamic_energy_scale`` / ``leakage_scale`` — per-switch ``C*VDD^2``
  energy and per-device static power relative to bulk CMOS at the same
  node.  These enter the gains model through the
  :class:`~repro.cmos.gains.GainsConfig` *reference power densities*
  (the 45nm/25mm^2/1GHz calibration chip re-evaluated under the new
  devices), because the model consumes the device table only in ratio
  form where uniform scales cancel.
* ``frequency_scale`` / ``vdd_scale`` — achievable clock and supply at
  iso-node.  Frequency also derates the Table V limit-chip clock via
  :meth:`~DerivedDeviceBackend.wall_limits`.
* ``density_coefficient_scale`` / ``density_exponent_delta`` — Fig 3b
  areal-density law adjustments.
* ``tdp_coefficient_scale`` / ``tdp_exponent_delta`` — Fig 3c budget-law
  adjustments; to first order a device drawing ``s``x less dynamic power
  sustains ``1/s``x more active transistors per watt, so the coefficient
  scale is normally ``1 / dynamic_energy_scale``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Dict, Union

from repro.cmos.gains import GainsConfig
from repro.cmos.model import CmosPotentialModel
from repro.cmos.scaling import default_scaling_table
from repro.cmos.tdp import paper_tdp_model
from repro.cmos.transistors import PAPER_DENSITY_FIT
from repro.errors import ValidationError
from repro.tech.base import TechBackend, TechMetadata
from repro.wall.limits import DomainLimits

__all__ = ["DeviceParams", "DerivedDeviceBackend", "derived_backend"]


@dataclass(frozen=True)
class DeviceParams:
    """Multiplicative device knobs relative to the paper's planar CMOS."""

    dynamic_energy_scale: float = 1.0
    leakage_scale: float = 1.0
    frequency_scale: float = 1.0
    vdd_scale: float = 1.0
    density_coefficient_scale: float = 1.0
    density_exponent_delta: float = 0.0
    tdp_coefficient_scale: float = 1.0
    tdp_exponent_delta: float = 0.0

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not math.isfinite(value):
                raise ValidationError(f"non-finite device knob {spec.name}={value!r}")
            if not spec.name.endswith("_delta") and value <= 0:
                raise ValidationError(
                    f"device knob {spec.name} must be positive, got {value!r}"
                )

    def as_mapping(self) -> Dict[str, Union[float, int, str]]:
        """The knob set as a plain dict (metadata / content hashing)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


class DerivedDeviceBackend(TechBackend):
    """A backend whose model is the paper machinery under scaled laws."""

    def __init__(self, metadata: TechMetadata, params: DeviceParams):
        super().__init__(metadata)
        self._params = params

    @property
    def params(self) -> DeviceParams:
        return self._params

    def build_model(self) -> CmosPotentialModel:
        p = self._params
        density = PAPER_DENSITY_FIT.scaled(
            p.density_coefficient_scale, p.density_exponent_delta
        )
        tdp = paper_tdp_model().scaled(p.tdp_coefficient_scale, p.tdp_exponent_delta)
        scaling = default_scaling_table().scaled(
            vdd_scale=p.vdd_scale,
            frequency_scale=p.frequency_scale,
            capacitance_scale=p.dynamic_energy_scale / p.vdd_scale**2,
            leakage_scale=p.leakage_scale,
        )
        base = GainsConfig()
        config = replace(
            base,
            ref_dynamic_density_w_mm2=(
                base.ref_dynamic_density_w_mm2 * p.dynamic_energy_scale
            ),
            ref_leakage_density_w_mm2=(
                base.ref_leakage_density_w_mm2 * p.leakage_scale
            ),
        )
        return CmosPotentialModel(
            density_fit=density,
            tdp_model=tdp,
            scaling=scaling,
            gains_config=config,
        )

    def wall_limits(self, row: DomainLimits) -> DomainLimits:
        """Derate the Table V clock by the device's achievable frequency."""
        if self._params.frequency_scale == 1.0:
            return row
        return replace(
            row, frequency_mhz=row.frequency_mhz * self._params.frequency_scale
        )


def derived_backend(
    name: str,
    display_name: str,
    description: str,
    source: str,
    params: DeviceParams,
) -> DerivedDeviceBackend:
    """Build a :class:`DerivedDeviceBackend` with params in its metadata."""
    metadata = TechMetadata(
        name=name,
        display_name=display_name,
        description=description,
        source=source,
        parameters=params.as_mapping(),
    )
    return DerivedDeviceBackend(metadata, params)
