"""The ``finfet`` backend: tri-gate devices, better everything in moderation.

Parameter provenance: Intel's 22nm tri-gate disclosures (Auth et al.,
VLSI 2012) and the FinFET-hp corner of the Lumos dark-silicon
framework.  Relative to planar bulk at iso-node, tri-gate devices are
reported ~18-37% faster at low voltage, or alternatively cut active
power roughly in half at iso-performance (we encode the mid-point:
1.18x clock with 0.55x energy per switch at ~0.9x VDD), with an
order-of-magnitude better subthreshold leakage from the wrapped gate
(we use a conservative 0.35x).  Density is taken as unchanged — the fin
pitch roughly tracks the planar metal pitch at these nodes.

The net scenario effect: both walls move outward modestly — the
performance wall by the larger TDP-constrained active budget times the
faster clock, the efficiency wall by roughly the energy ratio.
"""

from __future__ import annotations

from repro.tech.device import DerivedDeviceBackend, DeviceParams, derived_backend

__all__ = ["finfet_backend"]

#: Tri-gate : planar energy-per-switch ratio at iso-node.
_DYNAMIC_ENERGY_RATIO = 0.55


def finfet_backend() -> DerivedDeviceBackend:
    params = DeviceParams(
        dynamic_energy_scale=_DYNAMIC_ENERGY_RATIO,
        leakage_scale=0.35,
        frequency_scale=1.18,
        vdd_scale=0.9,
        density_coefficient_scale=1.0,
        density_exponent_delta=0.0,
        tdp_coefficient_scale=1.0 / _DYNAMIC_ENERGY_RATIO,
        tdp_exponent_delta=0.0,
    )
    return derived_backend(
        name="finfet",
        display_name="FinFET / tri-gate",
        description=(
            "Tri-gate devices: ~1.8x lower switching energy, ~3x lower "
            "leakage, and ~1.18x clock at iso-node, expressed as scaled "
            "Fig 3a/3c laws over the paper's fit machinery."
        ),
        source=(
            "Intel 22nm tri-gate disclosures (Auth et al., VLSI 2012); "
            "Lumos dark-silicon framework FinFET-hp corner"
        ),
        params=params,
    )
