"""Scenario engine: does the accelerator wall move under technology T?

For one backend this re-runs the paper's end-game analysis — the
Table V envelope, the Figs 15-16 wall projections, the per-study CSR
decomposition, and the carbon overlay — and packages the results as the
per-tech export artifacts (``fig15_16_<tech>``, ``table5_<tech>``,
``csr_<tech>``, ``tech_<tech>``) plus a cross-tech delta artifact
(``tech_delta_<tech>``) that answers the headline question directly:
"the wall moved by X years / Yx under technology T".

Modeling stance: **history stays CMOS**.  The measured scatter, the
frontier fits, and the baseline chip are always evaluated under the
paper's CMOS model; only the *limit chip* switches to the backend's
model and backend-adjusted Table V envelope (via the
``limit_model`` / ``limits_row`` hooks on
:func:`~repro.wall.limits.accelerator_wall`).  The per-tech CSR
decomposition, by contrast, asks the complementary counterfactual —
"what if these measured chips had been built in T?" — and evaluates
the whole population under the backend model.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union

from repro.cmos.model import CmosPotentialModel
from repro.cmos.nodes import FINAL_NODE
from repro.errors import ProjectionError
from repro.tech.base import TechBackend, get_backend
from repro.tech.carbon import CarbonParams, backend_carbon
from repro.wall.limits import WallReport, _limits, accelerator_wall
# The pace estimator is shared with `repro wall --whatif`; a private
# import keeps one definition of "historical annual gain rate".
from repro.wall.whatif import _annual_gain_rate

__all__ = [
    "WALL_METRICS",
    "wall_reports",
    "wall_projection_rows",
    "table5_rows",
    "csr_rows",
    "carbon_rows",
    "scenario_payload",
    "delta_payload",
]

WALL_METRICS = ("performance", "efficiency")


def _backend(tech: Union[str, TechBackend]) -> TechBackend:
    return tech if isinstance(tech, TechBackend) else get_backend(tech)


def wall_reports(tech: Union[str, TechBackend]) -> List[WallReport]:
    """Figs 15-16 wall reports with the limit chip built in *tech*."""
    backend = _backend(tech)
    limit_model = backend.model()
    reports = []
    for domain, row in _limits().items():
        candidates = backend.wall_limit_candidates(row)
        for metric in WALL_METRICS:
            # A backend may offer several buildable envelopes (e.g.
            # chiplet: monolithic vs. disaggregated); the wall is the
            # best design, judged by the physical limit the shared
            # frontier fits are evaluated at.
            best = max(
                (
                    accelerator_wall(
                        domain,
                        None,  # history and baseline stay CMOS
                        metric,
                        limits_row=candidate,
                        limit_model=limit_model,
                    )
                    for candidate in candidates
                ),
                key=lambda report: report.physical_limit,
            )
            reports.append(best)
    return reports


def wall_projection_rows(tech: Union[str, TechBackend]) -> List[Dict[str, object]]:
    """Per-tech Figs 15-16 rows (same shape as the ``fig15_16`` artifact)."""
    return [
        {
            "domain": report.domain,
            "metric": report.metric,
            "unit": report.gain_unit,
            "current_best": report.current_best,
            "physical_limit": report.physical_limit,
            "projected_log": report.projected_log,
            "projected_linear": report.projected_linear,
            "headroom": report.headroom,
        }
        for report in wall_reports(tech)
    ]


def table5_rows(tech: Union[str, TechBackend]) -> List[Dict[str, object]]:
    """Table V as *tech* sees it (post ``wall_limits``, with die split)."""
    backend = _backend(tech)
    rows = []
    for row in _limits().values():
        effective = backend.wall_limits(row)
        rows.append(
            {
                "domain": effective.domain,
                "platform": effective.platform.value,
                "min_die_mm2": effective.min_die_mm2,
                "max_die_mm2": effective.max_die_mm2,
                "tdp_w": effective.tdp_w,
                "frequency_mhz": effective.frequency_mhz,
                "die_count": backend.die_count(effective.max_die_mm2),
            }
        )
    return rows


def csr_rows(tech: Union[str, TechBackend]) -> Dict[str, Dict[str, object]]:
    """Per-study CSR decomposition with every chip evaluated under *tech*."""
    backend = _backend(tech)
    model = backend.model()
    out: Dict[str, Dict[str, object]] = {}
    for domain, row in _limits().items():
        study = row.study_factory()
        out[domain] = {
            "study": study.name,
            "summary": study.summary(model),
            "performance": study.performance_series(model).to_rows(),
            "efficiency": study.efficiency_series(model).to_rows(),
        }
    return out


def carbon_rows(
    tech: Union[str, TechBackend],
    params: CarbonParams = CarbonParams(),
) -> Dict[str, Dict[str, float]]:
    """Carbon overlay for each domain's limit chip built in *tech*."""
    backend = _backend(tech)
    model = backend.model()
    out: Dict[str, Dict[str, float]] = {}
    for domain, row in _limits().items():
        effective = backend.wall_limits(row)
        gains = model.evaluate(
            FINAL_NODE,
            effective.frequency_mhz,
            area_mm2=effective.max_die_mm2,
            tdp_w=effective.tdp_w if effective.limit_cap is not None else None,
            cap_mode=effective.limit_cap or "analytic",
        )
        report = backend_carbon(
            backend, FINAL_NODE, effective.max_die_mm2, gains.power_w, params
        )
        row_dict = report.to_dict()
        row_dict["throughput"] = gains.throughput
        row_dict["gco2e_per_throughput"] = (
            report.total_gco2e / gains.throughput if gains.throughput > 0 else 0.0
        )
        out[domain] = row_dict
    return out


def scenario_payload(tech: Union[str, TechBackend]) -> Dict[str, object]:
    """The full per-tech scenario artifact (``tech_<name>``)."""
    backend = _backend(tech)
    return {
        "tech": backend.to_dict(),
        "table5": table5_rows(backend),
        "wall": wall_projection_rows(backend),
        "csr": csr_rows(backend),
        "carbon": carbon_rows(backend),
    }


def _domain_pace(domain: str) -> Optional[float]:
    """Historical compound annual performance gain for *domain* (CMOS)."""
    study = _limits()[domain].study_factory()
    try:
        rate, _ = _annual_gain_rate(study, CmosPotentialModel.paper())
    except ProjectionError:
        return None
    return rate if rate > 1.0 else None


def delta_payload(tech: Union[str, TechBackend]) -> Dict[str, object]:
    """Cross-tech delta artifact: how far the wall moves vs. ``cmos``.

    Wall shifts are reported as ratios (``projected_*_ratio``) and, for
    the performance metric, as years of progress at the domain's
    historical compound gain rate (``wall_shift_years_*``) — a shifted
    wall worth a 2x higher projection buys ``log(2)/log(rate)`` extra
    years at that pace.
    """
    backend = _backend(tech)
    baseline = {
        (r.domain, r.metric): r for r in wall_reports("cmos")
    }
    rows: List[Dict[str, object]] = []
    summary: List[str] = []
    paces: Dict[str, Optional[float]] = {}
    for report in wall_reports(backend):
        base = baseline[(report.domain, report.metric)]
        log_ratio = report.projected_log / base.projected_log
        linear_ratio = report.projected_linear / base.projected_linear
        years_log = years_linear = None
        if report.metric == "performance":
            if report.domain not in paces:
                paces[report.domain] = _domain_pace(report.domain)
            pace = paces[report.domain]
            if pace is not None:
                years_log = math.log(log_ratio) / math.log(pace)
                years_linear = math.log(linear_ratio) / math.log(pace)
        rows.append(
            {
                "domain": report.domain,
                "metric": report.metric,
                "unit": report.gain_unit,
                "physical_limit_ratio": report.physical_limit / base.physical_limit,
                "projected_log_ratio": log_ratio,
                "projected_linear_ratio": linear_ratio,
                "wall_shift_years_log": years_log,
                "wall_shift_years_linear": years_linear,
            }
        )
        line = (
            f"{report.domain}/{report.metric}: wall moves "
            f"{log_ratio:.3g}x (log) / {linear_ratio:.3g}x (linear) "
            f"under {backend.name}"
        )
        if years_linear is not None:
            line += f", ~{years_linear:+.1f} years at the historical pace"
        summary.append(line)
    return {
        "tech": backend.name,
        "baseline": "cmos",
        "param_hash": backend.param_hash(),
        "rows": rows,
        "summary": summary,
    }
