"""The ``tfet`` backend: tunneling FETs trade clock for energy.

Parameter provenance: the inter-band tunneling FET corner of the Lumos
dark-silicon framework (Wang & Skadron, following the UVA/Penn State
homo-junction TFET device studies), which tabulates TFET cores against
high-performance bulk CMOS at the same node: relative performance
``1.21 / 1.65`` (TFETs cannot reach CMOS drive current at nominal VDD)
and relative dynamic power ``0.206 / 2.965`` (steep sub-60mV/dec
subthreshold slope lets VDD drop to ~0.3V).  The energy-per-switch
ratio is dynamic-power / frequency; leakage collapses by ~20x for the
same steep-slope reason.  Density is taken as unchanged — TFET layouts
are CMOS-like.

The net scenario effect: the performance wall barely moves (slower
devices offset the bigger active budget), while the energy-efficiency
wall jumps by roughly the inverse energy ratio.
"""

from __future__ import annotations

from repro.tech.device import DerivedDeviceBackend, DeviceParams, derived_backend

__all__ = ["tfet_backend"]

#: TFET : CMOS-HP clock ratio at iso-node (Lumos BCE table).
_PERF_RATIO = 1.21 / 1.65
#: TFET : CMOS-HP dynamic-power ratio at iso-node (Lumos BCE table).
_DYNAMIC_POWER_RATIO = 0.206 / 2.965
#: Energy per switch = power / frequency.
_DYNAMIC_ENERGY_RATIO = _DYNAMIC_POWER_RATIO / _PERF_RATIO


def tfet_backend() -> DerivedDeviceBackend:
    params = DeviceParams(
        dynamic_energy_scale=_DYNAMIC_ENERGY_RATIO,
        leakage_scale=0.05,
        frequency_scale=_PERF_RATIO,
        vdd_scale=0.47,  # ~0.3V vs the 0.64V-class bulk nominal
        density_coefficient_scale=1.0,
        density_exponent_delta=0.0,
        # s-times-lower switching energy sustains 1/s-times more active
        # transistors inside the same Fig 3c TDP envelope.
        tdp_coefficient_scale=1.0 / _DYNAMIC_ENERGY_RATIO,
        tdp_exponent_delta=0.0,
    )
    return derived_backend(
        name="tfet",
        display_name="Tunneling FET (steep slope)",
        description=(
            "Inter-band tunneling FETs: ~10x lower switching energy and "
            "~20x lower leakage at ~0.73x clock, expressed as scaled "
            "Fig 3a/3c laws over the paper's fit machinery."
        ),
        source=(
            "Lumos dark-silicon framework BCE device corners "
            "(homo-junction TFET vs. bulk CMOS-HP at iso-node)"
        ),
        params=params,
    )
