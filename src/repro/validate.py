"""Reusable numerical guards for the model pipeline.

The paper's headline numbers come out of a chain of least-squares fits,
log-space decompositions, and frontier extrapolations.  Each stage is
individually simple, but a ``nan`` or ``inf`` produced in one stage (a
degenerate fit, a near-zero denominator, an overflowing power law) flows
silently through the rest and surfaces — if at all — as a subtly wrong
table entry rather than an error.

This module centralises the guards every fit, metric, and projection path
uses so that bad numerics fail *loudly* at the stage that produced them:

* :func:`require_finite` / :func:`require_positive` — scalar input guards;
* :func:`require_all_finite` — array input guard for fit pipelines;
* :func:`require_monotone` — sequence ordering contracts (e.g. the
  strictly-increasing shape :func:`repro.wall.pareto.upper_frontier`
  promises);
* :func:`condition_number` / :func:`require_well_conditioned` — degenerate
  and near-collinear design-matrix detection for least-squares fits;
* :func:`guarded_numpy` — a context manager that converts floating-point
  overflow/invalid/divide signals and numpy's ``RankWarning`` into the
  caller's :class:`repro.errors.ReproError` subclass instead of leaking
  warnings to stderr.

Every guard takes an ``error`` class so call sites raise their layer's
existing exception (:class:`~repro.errors.FitError`,
:class:`~repro.errors.ProjectionError`, ...); the default is
:class:`~repro.errors.ValidationError`, which is also a ``ValueError`` so
pre-existing ``except ValueError`` callers keep working.
"""

from __future__ import annotations

import math
import warnings
from contextlib import contextmanager
from typing import Iterator, Sequence, Type

import numpy as np

from repro.errors import ReproError, ValidationError

#: Design matrices whose 2-norm condition number exceeds this are treated
#: as numerically degenerate (near-collinear predictors): a least-squares
#: solve loses roughly ``log10(cond)`` digits, so past 1e12 a double holds
#: fewer than four trustworthy digits.
MAX_CONDITION_NUMBER: float = 1e12

# ``np.RankWarning`` moved to ``np.exceptions`` in numpy 2.0.
_RANK_WARNING = getattr(
    getattr(np, "exceptions", np), "RankWarning", RuntimeWarning
)


def require_finite(
    value: float,
    name: str = "value",
    error: Type[ReproError] = ValidationError,
) -> float:
    """Return ``float(value)`` or raise *error* if it is ``nan``/``inf``."""
    try:
        result = float(value)
    except (TypeError, ValueError):
        raise error(f"{name} must be a real number, got {value!r}") from None
    if not math.isfinite(result):
        raise error(f"{name} must be finite, got {value!r}")
    return result


def require_positive(
    value: float,
    name: str = "value",
    error: Type[ReproError] = ValidationError,
) -> float:
    """Return ``float(value)`` or raise *error* unless it is finite and > 0."""
    result = require_finite(value, name, error)
    if result <= 0:
        raise error(f"{name} must be positive, got {value!r}")
    return result


def require_fraction(
    value: float,
    name: str = "value",
    error: Type[ReproError] = ValidationError,
) -> float:
    """Return ``float(value)`` or raise *error* unless it lies in (0, 1]."""
    result = require_positive(value, name, error)
    if result > 1.0:
        raise error(f"{name} must lie in (0, 1], got {value!r}")
    return result


def require_all_finite(
    values: "Sequence[float] | np.ndarray",
    name: str = "values",
    error: Type[ReproError] = ValidationError,
) -> np.ndarray:
    """Return *values* as a float array or raise *error* on any non-finite."""
    array = np.asarray(values, dtype=float)
    if array.size and not np.all(np.isfinite(array)):
        bad = array[~np.isfinite(array)]
        raise error(
            f"{name} must be finite, got {bad.size} non-finite "
            f"value(s) (first: {bad.flat[0]!r})"
        )
    return array


def require_monotone(
    values: Sequence[float],
    name: str = "sequence",
    *,
    strict: bool = True,
    error: Type[ReproError] = ValidationError,
) -> Sequence[float]:
    """Raise *error* unless *values* is increasing (strictly by default)."""
    for i in range(1, len(values)):
        previous, current = values[i - 1], values[i]
        if current < previous or (strict and current == previous):
            kind = "strictly increasing" if strict else "non-decreasing"
            raise error(
                f"{name} must be {kind}: element {i} is {current!r} "
                f"after {previous!r}"
            )
    return values


def condition_number(design: "Sequence[float] | np.ndarray") -> float:
    """2-norm condition number of a degree-1 least-squares design.

    *design* is either the 1-D predictor column (an intercept column is
    appended, matching ``np.polyfit(design, y, deg=1)``) or a full 2-D
    design matrix.  Degenerate designs (zero predictor spread) return
    ``inf`` rather than raising.
    """
    array = np.asarray(design, dtype=float)
    if array.ndim == 1:
        array = np.column_stack([array, np.ones_like(array)])
    if not np.all(np.isfinite(array)):
        return float("inf")
    try:
        return float(np.linalg.cond(array))
    except np.linalg.LinAlgError:  # pragma: no cover - cond rarely raises
        return float("inf")


def require_well_conditioned(
    design: "Sequence[float] | np.ndarray",
    name: str = "design matrix",
    error: Type[ReproError] = ValidationError,
    max_condition: float = MAX_CONDITION_NUMBER,
) -> float:
    """Raise *error* when a least-squares design is degenerate.

    Rejects designs with fewer than two rows, zero predictor spread (all
    x identical — the fit line is vertical), or a condition number above
    *max_condition* (near-collinear predictors whose fitted slope is
    numerically meaningless).  Returns the condition number otherwise.
    """
    array = np.asarray(design, dtype=float)
    column = array if array.ndim == 1 else array[:, 0]
    if column.size < 2:
        raise error(f"{name}: need >= 2 points for a fit, got {column.size}")
    if column.size and np.ptp(column) == 0.0:
        raise error(
            f"{name} is degenerate: all {column.size} predictor values "
            f"equal {column.flat[0]!r}"
        )
    cond = condition_number(array)
    if cond > max_condition:
        raise error(
            f"{name} is ill-conditioned: condition number {cond:.3g} "
            f"exceeds {max_condition:.3g}"
        )
    return cond


@contextmanager
def guarded_numpy(
    error: Type[ReproError] = ValidationError,
    what: str = "numerical kernel",
) -> Iterator[None]:
    """Convert numpy floating-point signals and rank warnings into *error*.

    Inside the block, overflow / invalid-operation / divide-by-zero raise
    (underflow stays silent — flushing tiny values to zero is benign), and
    ``RankWarning`` from a rank-deficient ``polyfit`` becomes an error
    instead of a stderr warning.
    """
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("error", _RANK_WARNING)
            with np.errstate(over="raise", invalid="raise", divide="raise"):
                yield
    except FloatingPointError as exc:
        raise error(f"{what}: floating-point error: {exc}") from exc
    except _RANK_WARNING as exc:
        raise error(f"{what}: rank-deficient fit: {exc}") from exc
