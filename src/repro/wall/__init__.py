"""Accelerator-wall projection study (paper Section VII, Figs 15-16).

Fits Pareto-frontier projection models (linear and logarithmic, Eqs 5-6)
over each domain's (physical potential, measured gain) scatter and evaluates
them at the physical limit of the final 5nm CMOS node under the domain's
Table V physical parameters.
"""

from repro.wall.pareto import upper_frontier
from repro.wall.projection import (
    FrontierFit,
    ProjectionKind,
    fit_frontier,
    fit_projections,
)
from repro.wall.limits import (
    DOMAIN_LIMITS,
    DomainLimits,
    WallReport,
    accelerator_wall,
    wall_report_all_domains,
)
from repro.wall.sensitivity import SensitivityPoint, headroom_spread, wall_sensitivity
from repro.wall.whatif import TimeToWall, time_to_wall, time_to_wall_all_domains
from repro.wall.surmount import McmWall, mcm_wall, mcm_walls_all_domains

__all__ = [
    "upper_frontier",
    "FrontierFit",
    "ProjectionKind",
    "fit_frontier",
    "fit_projections",
    "DOMAIN_LIMITS",
    "DomainLimits",
    "WallReport",
    "accelerator_wall",
    "wall_report_all_domains",
    "SensitivityPoint",
    "headroom_spread",
    "wall_sensitivity",
    "TimeToWall",
    "time_to_wall",
    "time_to_wall_all_domains",
    "McmWall",
    "mcm_wall",
    "mcm_walls_all_domains",
]
