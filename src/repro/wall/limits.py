"""The accelerator wall: projected domain limits at the final CMOS node.

Table V's physical parameters define, per domain, the best chip that can be
built once CMOS scaling ends (5nm, the largest economic die, the domain's
power budget and clock).  Evaluating the CMOS potential model there gives the
*physical limit*; the Eq 5/6 frontier fits projected to that limit give the
accelerator wall — the best gain the domain can ever reach — and the
remaining headroom over today's best chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cmos.model import CmosPotentialModel
from repro.cmos.nodes import FINAL_NODE
from repro.datasheets.schema import Category
from repro.errors import ProjectionError
from repro.studies.base import CaseStudy
from repro.wall.projection import FrontierFit, fit_projections


@dataclass(frozen=True)
class DomainLimits:
    """Table V row: the physical envelope of one accelerated domain."""

    domain: str
    platform: Category
    min_die_mm2: float
    max_die_mm2: float
    tdp_w: float
    frequency_mhz: float
    study_factory: Callable[[], CaseStudy]
    gain_unit: str
    #: How the Table V TDP budget caps the *limit* chip: None (doesn't bind,
    #: e.g. video's 7W budget is 10x the highest measured power),
    #: "analytic" (Fig 3d device-power model) or "empirical" (Fig 3c
    #: per-era budget fits, the paper's quoted mechanism).
    limit_cap: Optional[str] = "empirical"


def _table5() -> Tuple[DomainLimits, ...]:
    from repro.studies import bitcoin, fpga_cnn, gpu_graphics, video_decoders

    def cnn_combined() -> CaseStudy:
        """AlexNet + VGG-16 pooled, as in Figs 15c/16c."""
        alexnet = fpga_cnn.study("alexnet")
        vgg = fpga_cnn.study("vgg16")
        return CaseStudy(
            name="fpga_cnn_combined",
            chips=tuple(alexnet.chips) + tuple(vgg.chips),
            performance_metric="gops",
            efficiency_metric="gops_per_j",
            capped=False,
        )

    return (
        DomainLimits(
            domain="video_decoding",
            platform=Category.ASIC,
            min_die_mm2=1.68,
            max_die_mm2=16.0,
            tdp_w=7.0,
            frequency_mhz=400.0,
            study_factory=video_decoders.study,
            gain_unit="MPixels/s",
            limit_cap=None,
        ),
        DomainLimits(
            domain="gaming_graphics",
            platform=Category.GPU,
            min_die_mm2=40.0,
            max_die_mm2=815.0,
            tdp_w=345.0,
            frequency_mhz=1500.0,
            study_factory=gpu_graphics.study,
            gain_unit="frames/s",
            limit_cap="analytic",
        ),
        DomainLimits(
            domain="convolutional_nn",
            platform=Category.FPGA,
            min_die_mm2=100.0,
            max_die_mm2=572.0,
            tdp_w=150.0,
            frequency_mhz=400.0,
            study_factory=cnn_combined,
            gain_unit="GOP/s",
        ),
        DomainLimits(
            domain="bitcoin_mining",
            platform=Category.ASIC,
            min_die_mm2=11.1,
            max_die_mm2=504.0,
            tdp_w=500.0,
            frequency_mhz=1400.0,
            study_factory=bitcoin.asic_study,
            gain_unit="GHash/s/mm^2",
        ),
    )


#: Table V, keyed by domain name (built lazily to avoid import cycles).
DOMAIN_LIMITS: Dict[str, DomainLimits] = {}


def _limits() -> Dict[str, DomainLimits]:
    if not DOMAIN_LIMITS:
        DOMAIN_LIMITS.update({row.domain: row for row in _table5()})
    return DOMAIN_LIMITS


@dataclass(frozen=True)
class WallReport:
    """The accelerator wall for one domain and one metric."""

    domain: str
    metric: str
    gain_unit: str
    current_best: float  # best measured gain, in gain_unit
    physical_limit: float  # physical capability at 5nm, baseline-normalised
    linear_fit: FrontierFit
    log_fit: FrontierFit

    @property
    def projected_linear(self) -> float:
        """Eq 5 projected gain at the wall, in gain_unit."""
        return max(self.current_best, self.linear_fit.predict(self.physical_limit))

    @property
    def projected_log(self) -> float:
        """Eq 6 projected gain at the wall, in gain_unit."""
        return max(self.current_best, self.log_fit.predict(self.physical_limit))

    @property
    def headroom(self) -> Tuple[float, float]:
        """(low, high) remaining improvement over today's best chip."""
        low = self.projected_log / self.current_best
        high = self.projected_linear / self.current_best
        return tuple(sorted((low, high)))

    def describe(self) -> str:
        low, high = self.headroom
        return (
            f"{self.domain}/{self.metric}: best today "
            f"{self.current_best:.4g} {self.gain_unit}; wall at "
            f"{self.projected_log:.4g} (log) .. {self.projected_linear:.4g} "
            f"(linear) {self.gain_unit} -> {low:.2g}-{high:.2g}x headroom"
        )


def accelerator_wall(
    domain: str,
    model: Optional[CmosPotentialModel] = None,
    metric: str = "performance",
    limits_row: Optional[DomainLimits] = None,
    limit_model: Optional[CmosPotentialModel] = None,
) -> WallReport:
    """Project the accelerator wall for one domain (Figs 15-16).

    *metric* is ``"performance"`` or ``"efficiency"``.  Performance limits
    use the domain's largest die; energy-efficiency limits use the smallest
    (the Section III insight that small chips favour efficiency).

    *limits_row* replaces the Table V envelope for the limit-chip
    evaluation (technology backends use this to, e.g., lift the die-size
    ceiling for chiplet disaggregation or derate the clock for TFETs);
    the historical scatter and its frontier fits always come from the
    measured chips and are unaffected.

    *limit_model* evaluates the limit chip under a different potential
    model than the historical baseline — the "what if the wall chip used
    technology T while history stays CMOS" question asked by
    :mod:`repro.tech.scenarios` (the same perturb-only-the-limit pattern
    as :mod:`repro.wall.sensitivity`).
    """
    limits = _limits()
    try:
        row = limits[domain]
    except KeyError:
        raise ProjectionError(
            f"unknown domain {domain!r}; known: {sorted(limits)}"
        ) from None
    if limits_row is not None:
        if limits_row.domain != domain:
            raise ProjectionError(
                f"limits override is for domain {limits_row.domain!r}, "
                f"not {domain!r}"
            )
        row = limits_row
    cmos = model if model is not None else CmosPotentialModel.paper()
    study = row.study_factory()

    if metric == "performance":
        series = study.performance_series(cmos)
        physical_metric = study.physical_performance_metric
        measured_metric = study.performance_metric
        die = row.max_die_mm2
    elif metric == "efficiency":
        series = study.efficiency_series(cmos)
        physical_metric = "energy_efficiency"
        measured_metric = study.efficiency_metric
        die = row.min_die_mm2
    else:
        raise ProjectionError(f"unknown wall metric {metric!r}")

    base_chip = study.chips[0]
    base_measured = base_chip.metric(measured_metric)
    # (physical capability, gain in measured units) scatter.
    points = [(p.physical, p.gain * base_measured) for p in series]

    limit_cmos = limit_model if limit_model is not None else cmos
    limit_gains = limit_cmos.evaluate(
        FINAL_NODE,
        row.frequency_mhz,
        area_mm2=die,
        tdp_w=row.tdp_w if row.limit_cap is not None else None,
        cap_mode=row.limit_cap or "analytic",
    )
    base_gains = cmos.evaluate_spec(base_chip.spec, capped=study.capped).gains
    physical_limit = limit_gains.metric(physical_metric) / base_gains.metric(
        physical_metric
    )

    linear_fit, log_fit = fit_projections(points)
    return WallReport(
        domain=domain,
        metric=metric,
        gain_unit=row.gain_unit,
        current_best=max(gain for _, gain in points),
        physical_limit=physical_limit,
        linear_fit=linear_fit,
        log_fit=log_fit,
    )


def wall_report_all_domains(
    model: Optional[CmosPotentialModel] = None,
    limits_overrides: Optional[Dict[str, DomainLimits]] = None,
) -> List[WallReport]:
    """Figs 15 + 16: both metrics for all four Table V domains.

    *limits_overrides* maps domain name to a replacement Table V row for
    the limit-chip evaluation (see :func:`accelerator_wall`).
    """
    cmos = model if model is not None else CmosPotentialModel.paper()
    overrides = limits_overrides or {}
    reports = []
    for domain in _limits():
        for metric in ("performance", "efficiency"):
            reports.append(
                accelerator_wall(domain, cmos, metric, overrides.get(domain))
            )
    return reports
