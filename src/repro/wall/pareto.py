"""Pareto-frontier extraction for the projection study."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def upper_frontier(
    points: Sequence[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """The best-gain-per-physical-capability frontier.

    Keeps the points not dominated by any other point with less-or-equal
    physical capability (x) and greater-or-equal gain (y): sweeping x in
    ascending order, a point joins the frontier iff its gain beats every
    point to its left.  The result is sorted by x and strictly increasing
    in y — the shape both Eq 5/6 models are fitted on.
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (p[0], -p[1]))
    frontier: List[Tuple[float, float]] = []
    best_gain = float("-inf")
    for x, y in ordered:
        if y > best_gain:
            frontier.append((x, y))
            best_gain = y
    return frontier
