"""Frontier projection models (paper Eqs 5-6).

Two Pareto-frontier extrapolations of gain versus physical capability:

* **linear** (Eq 5): ``gain = alpha * physical + beta`` — fits domains whose
  gains track added parallel hardware (performance of highly parallel
  workloads);
* **logarithmic** (Eq 6): ``gain = alpha * log(physical) + beta`` — fits
  domains with sub-linear returns (energy efficiency, peripheral overheads,
  algorithmic structure limits).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ProjectionError
from repro.obs.trace import span
from repro.validate import (
    guarded_numpy,
    require_all_finite,
    require_finite,
    require_positive,
    require_well_conditioned,
)
from repro.wall.pareto import upper_frontier


class ProjectionKind(enum.Enum):
    """Which Eq 5/6 frontier model."""

    LINEAR = "linear"
    LOGARITHMIC = "log"


@dataclass(frozen=True)
class FrontierFit:
    """A fitted frontier model ``gain = alpha * f(physical) + beta``."""

    kind: ProjectionKind
    alpha: float
    beta: float
    n_points: int
    residual: float  # RMS residual over the frontier points
    #: Largest gain among the fitted frontier points; :meth:`predict` never
    #: returns less.  ``-inf`` (the default, for fits constructed by hand)
    #: disables the clamp.
    max_fitted_gain: float = float("-inf")

    def predict(self, physical: float) -> float:
        """Projected gain at *physical* capability.

        Clamped below at the largest fitted gain so a projection never
        regresses under the already-achieved frontier (projections are about
        *future* capability, which is always to the right of the data).
        """
        require_positive(physical, "physical capability", ProjectionError)
        if self.kind is ProjectionKind.LINEAR:
            model = self.alpha * physical + self.beta
        else:
            model = self.alpha * math.log(physical) + self.beta
        return require_finite(
            max(model, self.max_fitted_gain),
            f"{self.kind.value} projection at {physical!r}",
            ProjectionError,
        )

    def describe(self) -> str:
        operand = "x" if self.kind is ProjectionKind.LINEAR else "log(x)"
        return (
            f"{self.kind.value}: gain = {self.alpha:.4g} * {operand} + "
            f"{self.beta:.4g}  (n={self.n_points}, rms={self.residual:.3g})"
        )


def fit_frontier(
    points: Sequence[Tuple[float, float]], kind: ProjectionKind
) -> FrontierFit:
    """Least-squares fit of one Eq 5/6 model on the upper Pareto frontier."""
    with span("wall.fit_frontier", kind=kind.value, points=len(points)):
        return _fit_frontier(points, kind)


def _fit_frontier(
    points: Sequence[Tuple[float, float]], kind: ProjectionKind
) -> FrontierFit:
    for x, y in points:
        require_finite(x, "frontier point physical", ProjectionError)
        require_finite(y, "frontier point gain", ProjectionError)
    frontier = upper_frontier(points)
    if len(frontier) < 2:
        raise ProjectionError(
            f"need >= 2 frontier points to fit a projection, got {len(frontier)}"
        )
    xs = np.asarray([p[0] for p in frontier], dtype=float)
    ys = np.asarray([p[1] for p in frontier], dtype=float)
    if kind is ProjectionKind.LOGARITHMIC:
        if np.any(xs <= 0):
            raise ProjectionError("logarithmic projection needs positive physicals")
        design = np.log(xs)
    else:
        design = xs
    require_well_conditioned(
        design, f"{kind.value} frontier design", ProjectionError
    )
    with guarded_numpy(ProjectionError, f"{kind.value} frontier fit"):
        alpha, beta = np.polyfit(design, ys, deg=1)
        residual = float(np.sqrt(np.mean((alpha * design + beta - ys) ** 2)))
    require_all_finite(
        (alpha, beta, residual), "frontier fit coefficients", ProjectionError
    )
    return FrontierFit(
        kind=kind,
        alpha=float(alpha),
        beta=float(beta),
        n_points=len(frontier),
        residual=residual,
        max_fitted_gain=float(ys.max()),
    )


def fit_projections(
    points: Sequence[Tuple[float, float]],
) -> Tuple[FrontierFit, FrontierFit]:
    """Both frontier models, (linear, logarithmic)."""
    return (
        fit_frontier(points, ProjectionKind.LINEAR),
        fit_frontier(points, ProjectionKind.LOGARITHMIC),
    )
