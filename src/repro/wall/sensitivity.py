"""Sensitivity of the accelerator-wall projections to Table V parameters.

The wall depends on assumed physical limits (largest economic die, power
budget, clock).  This module sweeps those assumptions around their Table V
values and reports how the projected headroom moves — quantifying how
robust each domain's wall is to the exact end-of-scaling parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cmos.model import CmosPotentialModel
from repro.cmos.nodes import FINAL_NODE
from repro.wall.limits import _limits, accelerator_wall


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbed wall evaluation."""

    domain: str
    metric: str
    die_scale: float
    tdp_scale: float
    frequency_scale: float
    physical_limit: float
    headroom_low: float
    headroom_high: float


def wall_sensitivity(
    domain: str,
    model: Optional[CmosPotentialModel] = None,
    metric: str = "performance",
    die_scales: Sequence[float] = (0.5, 1.0, 2.0),
    tdp_scales: Sequence[float] = (0.5, 1.0, 2.0),
    frequency_scales: Sequence[float] = (1.0,),
) -> List[SensitivityPoint]:
    """Sweep Table V assumptions for one domain.

    Scales multiply the domain's Table V die size, TDP budget, and clock.
    The projection fits are computed once from the unperturbed empirical
    series; only the physical-limit evaluation point moves.
    """
    cmos = model if model is not None else CmosPotentialModel.paper()
    baseline_report = accelerator_wall(domain, cmos, metric)
    row = _limits()[domain]
    study = row.study_factory()
    base_chip = study.chips[0]

    if metric == "performance":
        physical_metric = study.physical_performance_metric
        die = row.max_die_mm2
    else:
        physical_metric = "energy_efficiency"
        die = row.min_die_mm2

    base_gains = cmos.evaluate_spec(base_chip.spec, capped=study.capped).gains
    base_value = base_gains.metric(physical_metric)

    points: List[SensitivityPoint] = []
    for die_scale in die_scales:
        for tdp_scale in tdp_scales:
            for frequency_scale in frequency_scales:
                limit = cmos.evaluate(
                    FINAL_NODE,
                    row.frequency_mhz * frequency_scale,
                    area_mm2=die * die_scale,
                    tdp_w=(
                        row.tdp_w * tdp_scale
                        if row.limit_cap is not None
                        else None
                    ),
                    cap_mode=row.limit_cap or "analytic",
                )
                physical_limit = limit.metric(physical_metric) / base_value
                projected_log = max(
                    baseline_report.current_best,
                    baseline_report.log_fit.predict(physical_limit),
                )
                projected_linear = max(
                    baseline_report.current_best,
                    baseline_report.linear_fit.predict(physical_limit),
                )
                low, high = sorted(
                    (
                        projected_log / baseline_report.current_best,
                        projected_linear / baseline_report.current_best,
                    )
                )
                points.append(
                    SensitivityPoint(
                        domain=domain,
                        metric=metric,
                        die_scale=die_scale,
                        tdp_scale=tdp_scale,
                        frequency_scale=frequency_scale,
                        physical_limit=physical_limit,
                        headroom_low=low,
                        headroom_high=high,
                    )
                )
    return points


def headroom_spread(points: Sequence[SensitivityPoint]) -> Tuple[float, float]:
    """(min low, max high) headroom across a sensitivity sweep."""
    if not points:
        raise ValueError("empty sensitivity sweep")
    return (
        min(p.headroom_low for p in points),
        max(p.headroom_high for p in points),
    )
