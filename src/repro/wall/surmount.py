"""Surmounting the wall: multi-chip-module (MCM) scaling past the die limit.

The paper closes by calling for "novel solutions to surmount the
accelerator wall", and its related work points at multi-chip-module GPUs
(Arunkumar et al., cited [79]) as the post-monolithic path.  This module
quantifies how far MCM integration moves each domain's wall: N chiplets of
the largest economic die, each at the final node, with a per-hop
inter-chiplet communication tax on throughput and a packaging power
overhead — then the domain's frontier models are re-evaluated at the
extended physical limit.

The headline result mirrors the MCM-GPU paper's: chiplets buy a few more
"virtual nodes" of *performance* scaling (throughput is parallel), but they
do **not** move the energy-efficiency wall — communication and packaging
overheads make a 4-chiplet module strictly *less* efficient per op than one
die, so the efficiency limits of Section VII stand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cmos.model import CmosPotentialModel
from repro.errors import ProjectionError
from repro.wall.limits import WallReport, _limits, accelerator_wall

#: Throughput retained per chiplet relative to monolithic scaling, per the
#: MCM-GPU paper's regime (~10% loss at 4 chiplets from inter-module traffic).
COMM_EFFICIENCY_PER_CHIPLET: float = 0.965

#: Extra power per additional chiplet (SerDes links, package regulation),
#: as a fraction of one chiplet's budget.
PACKAGING_POWER_OVERHEAD: float = 0.08


@dataclass(frozen=True)
class McmWall:
    """The wall with and without multi-chip integration."""

    domain: str
    n_chiplets: int
    monolithic: WallReport
    mcm_physical_limit: float
    mcm_projected_log: float
    mcm_projected_linear: float
    efficiency_factor: float  # MCM ops/J relative to one monolithic die

    @property
    def extra_headroom(self) -> float:
        """How much further the linear wall moves with MCM (x)."""
        return self.mcm_projected_linear / self.monolithic.projected_linear

    @property
    def moves_efficiency_wall(self) -> bool:
        """Whether MCM improves the energy-efficiency limit (it should not)."""
        return self.efficiency_factor > 1.0

    def describe(self) -> str:
        return (
            f"{self.domain}: {self.n_chiplets} chiplets move the linear "
            f"performance wall {self.extra_headroom:.2f}x further "
            f"({self.monolithic.projected_linear:.4g} -> "
            f"{self.mcm_projected_linear:.4g} {self.monolithic.gain_unit}); "
            f"energy efficiency x{self.efficiency_factor:.2f} (the "
            "efficiency wall does not move)"
        )


def mcm_wall(
    domain: str,
    n_chiplets: int = 4,
    model: Optional[CmosPotentialModel] = None,
) -> McmWall:
    """Project *domain*'s performance wall with an N-chiplet module.

    The module's physical capability is ``N x comm_eff^(N-1)`` of one
    largest-die chiplet (each chiplet keeps its own Table V power budget,
    as MCM packages do); the domain's already-fitted frontier models are
    evaluated at that extended limit.
    """
    if n_chiplets < 1:
        raise ProjectionError(f"need >= 1 chiplet, got {n_chiplets}")
    cmos = model if model is not None else CmosPotentialModel.paper()
    monolithic = accelerator_wall(domain, cmos, metric="performance")

    comm_efficiency = COMM_EFFICIENCY_PER_CHIPLET ** (n_chiplets - 1)
    mcm_limit = monolithic.physical_limit * n_chiplets * comm_efficiency
    projected_log = max(
        monolithic.current_best, monolithic.log_fit.predict(mcm_limit)
    )
    projected_linear = max(
        monolithic.current_best, monolithic.linear_fit.predict(mcm_limit)
    )
    # Energy per op: same silicon doing comm_eff x the work, plus packaging
    # power — efficiency strictly degrades with chiplet count.
    power_factor = 1.0 + PACKAGING_POWER_OVERHEAD * (n_chiplets - 1) / n_chiplets
    efficiency_factor = comm_efficiency / power_factor

    return McmWall(
        domain=domain,
        n_chiplets=n_chiplets,
        monolithic=monolithic,
        mcm_physical_limit=mcm_limit,
        mcm_projected_log=projected_log,
        mcm_projected_linear=projected_linear,
        efficiency_factor=efficiency_factor,
    )


def mcm_walls_all_domains(
    n_chiplets: int = 4,
    model: Optional[CmosPotentialModel] = None,
) -> List[McmWall]:
    """MCM extension for every Table V domain."""
    cmos = model if model is not None else CmosPotentialModel.paper()
    return [mcm_wall(domain, n_chiplets, cmos) for domain in _limits()]
