"""Time-to-wall estimation: when does each domain hit its limit?

Combines three ingredients the library already has:

* the CMOS roadmap cadence (first-silicon year per node, from the synthetic
  population's node-year table),
* each domain's wall projection (remaining headroom at 5nm), and
* each domain's historical gain cadence (the measured gain trend per year),

to estimate the calendar year at which the domain's projected wall is
reached if its historical pace continued — the practical "how long do we
have" question the paper's conclusion poses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.cmos.model import CmosPotentialModel
from repro.errors import ProjectionError
from repro.validate import require_finite, require_positive
from repro.wall.limits import WallReport, _limits, accelerator_wall


@dataclass(frozen=True)
class TimeToWall:
    """Estimated schedule for one domain hitting its wall."""

    domain: str
    metric: str
    annual_gain_rate: float        # historical gain multiple per year
    headroom_low: float
    headroom_high: float
    years_to_wall_low: float
    years_to_wall_high: float
    last_observation_year: float

    @property
    def wall_year_range(self) -> "tuple[float, float]":
        return (
            self.last_observation_year + self.years_to_wall_low,
            self.last_observation_year + self.years_to_wall_high,
        )

    def describe(self) -> str:
        low_year, high_year = self.wall_year_range
        return (
            f"{self.domain}/{self.metric}: historical pace "
            f"{self.annual_gain_rate:.2f}x/yr; headroom "
            f"{self.headroom_low:.1f}-{self.headroom_high:.1f}x -> wall "
            f"reached ~{low_year:.0f}-{high_year:.0f} at that pace"
        )


def _annual_gain_rate(study, model: CmosPotentialModel) -> "tuple[float, float]":
    """(gain multiple per year, last observation year) from a study."""
    series = study.performance_series(model)
    dated = [(p.year, p.gain) for p in series if p.year is not None]
    if len(dated) < 2:
        raise ProjectionError(
            f"study {study.name!r} lacks dated chips for a gain cadence"
        )
    dated.sort()
    for year, gain in dated:
        require_finite(year, "observation year", ProjectionError)
        require_positive(gain, "observed gain", ProjectionError)
    (first_year, first_gain), (last_year, last_gain) = dated[0], dated[-1]
    span = last_year - first_year
    if span <= 0 or last_gain <= first_gain:
        raise ProjectionError(
            f"study {study.name!r} has no positive dated gain trend"
        )
    rate = (last_gain / first_gain) ** (1.0 / span)
    require_finite(rate, "annual gain rate", ProjectionError)
    return rate, float(last_year)


def time_to_wall(
    domain: str,
    model: Optional[CmosPotentialModel] = None,
    metric: str = "performance",
) -> TimeToWall:
    """Estimate when *domain* exhausts its projected headroom.

    Assumes the domain's historical compound gain rate continues until the
    wall; the paper argues the rate actually *slows* as CMOS contributions
    end, so these are optimistic (earliest) wall dates under the log bound
    and latest under the linear bound.
    """
    cmos = model if model is not None else CmosPotentialModel.paper()
    report: WallReport = accelerator_wall(domain, cmos, metric)
    study = _limits()[domain].study_factory()
    rate, last_year = _annual_gain_rate(study, cmos)
    low, high = report.headroom
    require_positive(low, "headroom (low)", ProjectionError)
    require_positive(high, "headroom (high)", ProjectionError)
    log_rate = math.log(rate)
    if log_rate <= 0.0:
        raise ProjectionError(
            f"study {study.name!r}: annual gain rate {rate!r} is not > 1; "
            "a flat trend never reaches the wall"
        )
    years_low = math.log(low) / log_rate if low > 1 else 0.0
    years_high = math.log(high) / log_rate if high > 1 else 0.0
    require_finite(years_low, "years to wall (low)", ProjectionError)
    require_finite(years_high, "years to wall (high)", ProjectionError)
    return TimeToWall(
        domain=domain,
        metric=metric,
        annual_gain_rate=rate,
        headroom_low=low,
        headroom_high=high,
        years_to_wall_low=years_low,
        years_to_wall_high=years_high,
        last_observation_year=last_year,
    )


def time_to_wall_all_domains(
    model: Optional[CmosPotentialModel] = None,
) -> List[TimeToWall]:
    """Time-to-wall for every Table V domain (performance metric)."""
    cmos = model if model is not None else CmosPotentialModel.paper()
    return [time_to_wall(domain, cmos) for domain in _limits()]
