"""The 16 accelerator benchmark kernels of paper Table IV.

Each module implements one kernel twice: a *traced* build (concolic execution
under :class:`repro.accel.trace.Tracer`, yielding the dynamic DFG the
scheduler consumes) and a plain *reference* implementation used by the test
suite to check that the traced execution computes the right answer.

Kernels are drawn from the suites the paper cites (MachSuite, SHOC,
CortexSuite, PARSEC) and re-implemented from their textbook definitions —
see DESIGN.md's substitution table.
"""

from repro.workloads.registry import (
    WORKLOADS,
    Workload,
    build_all_kernels,
    build_kernel,
    get_workload,
)

__all__ = [
    "WORKLOADS",
    "Workload",
    "build_all_kernels",
    "build_kernel",
    "get_workload",
]
