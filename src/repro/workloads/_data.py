"""Deterministic input-data generation shared by the workload kernels."""

from __future__ import annotations

from typing import List

import numpy as np


def rng(seed: int) -> np.random.Generator:
    """Deterministic generator; every kernel offsets its own default seed."""
    return np.random.default_rng(seed)


def floats(seed: int, n: int, lo: float = -1.0, hi: float = 1.0) -> List[float]:
    """n uniform floats in [lo, hi)."""
    return [float(x) for x in rng(seed).uniform(lo, hi, size=n)]


def positive_floats(seed: int, n: int, lo: float = 0.1, hi: float = 2.0) -> List[float]:
    """n uniform floats bounded away from zero (safe divisors/coordinates)."""
    return [float(x) for x in rng(seed).uniform(lo, hi, size=n)]


def ints(seed: int, n: int, lo: int = 0, hi: int = 255) -> List[int]:
    """n uniform integers in [lo, hi]."""
    return [int(x) for x in rng(seed).integers(lo, hi + 1, size=n)]


def random_graph(seed: int, n_vertices: int, n_edges: int) -> List[tuple]:
    """A connected-ish random digraph as an edge list with float weights.

    A spanning chain guarantees reachability from vertex 0, then extra random
    edges are layered on top (deduplicated).
    """
    generator = rng(seed)
    edges = {}
    for v in range(1, n_vertices):
        u = int(generator.integers(0, v))
        edges[(u, v)] = float(generator.uniform(0.5, 2.0))
    while len(edges) < n_edges:
        u = int(generator.integers(0, n_vertices))
        v = int(generator.integers(0, n_vertices))
        if u != v:
            edges.setdefault((u, v), float(generator.uniform(0.5, 2.0)))
    return [(u, v, w) for (u, v), w in sorted(edges.items())]
