"""AES — AES-128 single-block encryption (MachSuite ``aes``).

Full FIPS-197 cipher: key expansion, 10 rounds of SubBytes (S-box gathers),
ShiftRows (wiring), MixColumns (xtime/xor networks) and AddRoundKey.  The
algorithm body is written once against an abstract byte-operations adapter
and instantiated twice: over plain integers (the reference) and over traced
values (the accelerator kernel), so both paths execute the same code.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.accel.trace import TracedKernel, Tracer

#: FIPS-197 Appendix C.1 test vector.
FIPS_KEY = bytes(range(16))
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class _IntOps:
    """Byte operations over plain integers (the reference instantiation)."""

    def xor(self, a, b):
        return a ^ b

    def sub(self, a):
        return _SBOX[a]

    def xtime(self, a):
        doubled = (a << 1) & 0xFF
        return doubled ^ 0x1B if a & 0x80 else doubled


class _TracedOps:
    """Byte operations over traced values (the accelerator instantiation)."""

    def __init__(self, tracer: Tracer):
        self.t = tracer
        self.sbox = tracer.array("sbox", _SBOX)
        self._mask = tracer.const(0xFF)
        self._poly = tracer.const(0x1B)
        self._zero = tracer.const(0)
        self._hi = tracer.const(0x80)
        self._one = tracer.const(1)

    def xor(self, a, b):
        return a ^ b

    def sub(self, a):
        return self.sbox.gather(a)

    def xtime(self, a):
        doubled = (a << self._one) & self._mask
        overflow = (a & self._hi).ne(self._zero)
        return self.t.select(overflow, doubled ^ self._poly, doubled)


def _expand_key(key: Sequence, ops) -> List[List]:
    """FIPS-197 key schedule: 11 round keys of 16 bytes."""
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [ops.sub(b) for b in temp]  # SubWord
            temp[0] = ops.xor(temp[0], _RCON[i // 4 - 1])
        words.append([ops.xor(words[i - 4][j], temp[j]) for j in range(4)])
    return [
        [byte for word in words[4 * r : 4 * r + 4] for byte in word]
        for r in range(11)
    ]


def _encrypt_block(block: Sequence, key: Sequence, ops) -> List:
    """The cipher body, generic over the byte-operations adapter."""
    round_keys = _expand_key(key, ops)
    state = [ops.xor(b, k) for b, k in zip(block, round_keys[0])]

    def shift_rows(s: List) -> List:
        # Column-major state: byte (row, col) lives at index col*4 + row.
        return [s[(((i // 4) + (i % 4)) % 4) * 4 + (i % 4)] for i in range(16)]

    def mix_column(col: List) -> List:
        total = ops.xor(ops.xor(col[0], col[1]), ops.xor(col[2], col[3]))
        out = []
        for i in range(4):
            doubled = ops.xtime(ops.xor(col[i], col[(i + 1) % 4]))
            out.append(ops.xor(col[i], ops.xor(total, doubled)))
        return out

    for round_index in range(1, 11):
        state = [ops.sub(b) for b in state]
        state = shift_rows(state)
        if round_index < 10:
            mixed = []
            for c in range(4):
                mixed.extend(mix_column(state[4 * c : 4 * c + 4]))
            state = mixed
        state = [ops.xor(b, k) for b, k in zip(state, round_keys[round_index])]
    return state


def reference(plaintext: bytes = FIPS_PLAINTEXT, key: bytes = FIPS_KEY) -> bytes:
    """Reference AES-128 encryption over plain integers."""
    return bytes(_encrypt_block(list(plaintext), list(key), _IntOps()))


def build(plaintext: bytes = FIPS_PLAINTEXT, key: bytes = FIPS_KEY) -> TracedKernel:
    """Trace AES-128 encryption of one block."""
    if len(plaintext) != 16 or len(key) != 16:
        raise ValueError("AES-128 needs a 16-byte block and a 16-byte key")
    t = Tracer("aes")
    block_arr = t.array("block", list(plaintext))
    key_arr = t.array("key", list(key))
    ops = _TracedOps(t)
    block = [block_arr.read(i) for i in range(16)]
    key_values = [key_arr.read(i) for i in range(16)]
    ciphertext = _encrypt_block(block, key_values, ops)
    for i, byte in enumerate(ciphertext):
        t.output(byte, f"ct[{i}]")
    return t.kernel()


def build_inputs():
    return FIPS_PLAINTEXT, FIPS_KEY
