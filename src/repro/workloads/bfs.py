"""BFS — breadth-first search level assignment (MachSuite ``bfs``).

Frontier expansion over a deterministic random digraph.  Control flow
(frontier membership) is concrete, as in a dynamic trace; the level updates
(compare + select) are traced, so the DFG records the real dependence chain
between BFS levels.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import random_graph

DEFAULT_VERTICES = 24
DEFAULT_EDGES = 60
_SEED = 901
_UNREACHED = 999


def reference(edges: List[Tuple[int, int, float]], n_vertices: int) -> List[int]:
    """Plain BFS levels from vertex 0 (``_UNREACHED`` when unreachable)."""
    adjacency: Dict[int, List[int]] = {v: [] for v in range(n_vertices)}
    for u, v, _ in edges:
        adjacency[u].append(v)
    levels = [_UNREACHED] * n_vertices
    levels[0] = 0
    frontier = [0]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for u in frontier:
            for v in adjacency[u]:
                if levels[v] == _UNREACHED:
                    levels[v] = depth
                    nxt.append(v)
        frontier = nxt
    return levels


def build(
    n_vertices: int = DEFAULT_VERTICES,
    n_edges: int = DEFAULT_EDGES,
    seed: int = _SEED,
) -> TracedKernel:
    """Trace BFS level assignment from vertex 0."""
    edges = random_graph(seed, n_vertices, n_edges)
    adjacency: Dict[int, List[int]] = {v: [] for v in range(n_vertices)}
    for u, v, _ in edges:
        adjacency[u].append(v)

    t = Tracer("bfs")
    unreached = t.const(_UNREACHED)
    levels = t.array("levels", length=n_vertices)
    for v in range(n_vertices):
        levels.write(v, unreached)
    levels.write(0, t.const(0))

    frontier = [0]
    depth = 0
    while frontier:
        depth += 1
        depth_value = t.const(depth)
        nxt = []
        for u in frontier:
            for v in adjacency[u]:
                current = levels.read(v)
                not_seen = current.eq(unreached)
                levels.write(v, t.select(not_seen, depth_value, current))
                if not_seen.concrete:
                    nxt.append(v)
        frontier = nxt

    for v in range(n_vertices):
        t.output(levels.read(v), f"level[{v}]")
    return t.kernel()


def build_inputs(
    n_vertices: int = DEFAULT_VERTICES,
    n_edges: int = DEFAULT_EDGES,
    seed: int = _SEED,
):
    return random_graph(seed, n_vertices, n_edges), n_vertices
