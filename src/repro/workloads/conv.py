"""2D convolution, direct vs Winograd — the algorithm layer of the stack.

The paper's FPGA CNN study highlights algorithmic specialization: applying
the Winograd transform to 3x3 convolutions "improves throughput by
minimizing the complexity of convolutional operations" (Section IV-C,
FPGA2017*).  This module implements both algorithms as traced kernels over
the *same* computation (identical outputs), so the DSE can quantify the
CSR of an algorithm change: Winograd F(2x2, 3x3) needs 16 multiplies per
2x2 output tile where the direct form needs 36.

The filter is a hardware constant; Winograd's filter transform
``U = G g G^T`` is therefore precomputed at build time (as a real
accelerator would), and only the input transform ``V = B^T d B`` (additions),
the Hadamard product ``M = U . V`` (the 16 multiplies), and the output
transform ``Y = A^T M A`` (additions) are traced.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import floats

DEFAULT_N = 8  # input image side; output is (n-2) x (n-2)
_SEED = 2101

#: Winograd F(2x2, 3x3) transform matrices.
_BT = np.array(
    [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]], dtype=float
)
_G = np.array(
    [[1, 0, 0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0, 0, 1]], dtype=float
)
_AT = np.array([[1, 1, 1, 0], [0, 1, -1, -1]], dtype=float)

#: A fixed, asymmetric 3x3 filter (so transform mistakes cannot cancel).
FILTER = np.array(
    [[0.25, -0.125, 0.0625], [0.5, 0.75, -0.25], [-0.0625, 0.125, 0.375]]
)


def reference(image: List[float], n: int) -> List[float]:
    """Valid 3x3 convolution (cross-correlation form), row-major output."""
    img = np.asarray(image, dtype=float).reshape(n, n)
    out = []
    for i in range(n - 2):
        for j in range(n - 2):
            out.append(float(np.sum(img[i : i + 3, j : j + 3] * FILTER)))
    return out


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    return floats(seed, n * n), n


def build_direct(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace the direct 9-multiply-per-output convolution."""
    image, _ = build_inputs(n, seed)
    t = Tracer("conv-direct")
    img = t.array("img", image)
    coeffs = [[t.const(float(FILTER[a, b])) for b in range(3)] for a in range(3)]
    for i in range(n - 2):
        for j in range(n - 2):
            acc = None
            for a in range(3):
                for b in range(3):
                    term = coeffs[a][b] * img.read((i + a) * n + (j + b))
                    acc = term if acc is None else acc + term
            t.output(acc, f"y[{i},{j}]")
    return t.kernel()


def _mat_apply(
    rows: Sequence[Sequence[float]], values: List[List[Value]], tracer: Tracer
) -> List[List[Value]]:
    """Multiply a small constant matrix into a grid of traced values.

    Coefficients are restricted to {0, +/-1, +/-0.5 ...}; +/-1 entries
    trace as pure additions/subtractions (wiring in hardware), other
    magnitudes as constant multiplies.
    """
    out: List[List[Value]] = []
    for row in rows:
        out_row: List[Value] = []
        for col in range(len(values[0])):
            acc = None
            for k, coeff in enumerate(row):
                if coeff == 0:
                    continue
                value = values[k][col]
                if coeff == 1:
                    term = value
                elif coeff == -1:
                    term = -value
                else:
                    term = tracer.const(float(coeff)) * value
                acc = term if acc is None else acc + term
            assert acc is not None, "transform row was all zeros"
            out_row.append(acc)
        out.append(out_row)
    return out


def _transpose(values: List[List[Value]]) -> List[List[Value]]:
    return [list(row) for row in zip(*values)]


def build_winograd(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace the Winograd F(2x2, 3x3) convolution (16 multiplies/tile)."""
    if (n - 2) % 2:
        raise ValueError("Winograd F(2x2,3x3) needs an even output size")
    image, _ = build_inputs(n, seed)
    t = Tracer("conv-winograd")
    img = t.array("img", image)
    # Precomputed filter transform U = G g G^T (hardware constants).
    u_const = _G @ FILTER @ _G.T
    u = [[t.const(float(u_const[a, b])) for b in range(4)] for a in range(4)]

    for ti in range(0, n - 2, 2):
        for tj in range(0, n - 2, 2):
            tile = [
                [img.read((ti + a) * n + (tj + b)) for b in range(4)]
                for a in range(4)
            ]
            # V = B^T d B  — additions only.
            v = _mat_apply(_BT, tile, t)
            v = _transpose(_mat_apply(_BT, _transpose(v), t))
            # M = U . V  — the tile's 16 multiplies.
            m = [[u[a][b] * v[a][b] for b in range(4)] for a in range(4)]
            # Y = A^T M A — additions only.
            y = _mat_apply(_AT, m, t)
            y = _transpose(_mat_apply(_AT, _transpose(y), t))
            for a in range(2):
                for b in range(2):
                    t.output(y[a][b], f"y[{ti + a},{tj + b}]")
    return t.kernel()


def multiply_count(kernel: TracedKernel) -> int:
    """Number of multiply vertices in a traced kernel's DFG."""
    return sum(1 for node in kernel.dfg.nodes() if node.op == "mul")
