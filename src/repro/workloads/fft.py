"""FFT — iterative radix-2 Cooley-Tukey transform (MachSuite ``fft``).

Complex values are traced as (real, imaginary) pairs; twiddle factors are
compile-time constants, as in a fixed-size hardware FFT.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import floats

DEFAULT_N = 32
_SEED = 1001


def reference(real: List[float], imag: List[float]) -> Tuple[List[float], List[float]]:
    """DFT via numpy for result checking."""
    spectrum = np.fft.fft(np.asarray(real) + 1j * np.asarray(imag))
    return [float(x) for x in spectrum.real], [float(x) for x in spectrum.imag]


def _bit_reverse(index: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def build(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace an *n*-point FFT (n must be a power of two)."""
    if n & (n - 1) or n < 2:
        raise ValueError(f"FFT size must be a power of two >= 2, got {n}")
    bits = n.bit_length() - 1
    real_data = floats(seed, n)
    imag_data = floats(seed + 1, n)

    t = Tracer("fft")
    re_in = t.array("re", real_data)
    im_in = t.array("im", imag_data)
    # Bit-reversal permutation (pure wiring: no traced ops).
    re: List[Value] = [re_in.read(_bit_reverse(i, bits)) for i in range(n)]
    im: List[Value] = [im_in.read(_bit_reverse(i, bits)) for i in range(n)]

    size = 2
    while size <= n:
        half = size // 2
        for start in range(0, n, size):
            for k in range(half):
                w = cmath.exp(-2j * math.pi * k / size)
                wr, wi = t.const(w.real), t.const(w.imag)
                a, b = start + k, start + k + half
                # (tr + i*ti) = w * x[b]
                tr = wr * re[b] - wi * im[b]
                ti = wr * im[b] + wi * re[b]
                re[a], re[b] = re[a] + tr, re[a] - tr
                im[a], im[b] = im[a] + ti, im[a] - ti
        size *= 2

    for i in range(n):
        t.output(re[i], f"re[{i}]")
        t.output(im[i], f"im[{i}]")
    return t.kernel()


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    return floats(seed, n), floats(seed + 1, n)
