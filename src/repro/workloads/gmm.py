"""GMM — general matrix-matrix multiplication (MachSuite ``gemm``).

``C = A @ B`` over square matrices, with each dot product accumulated as a
balanced tree so the DFG exposes the kernel's full parallelism.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import floats

DEFAULT_N = 8
_SEED = 1101


def reference(a: List[float], b: List[float], n: int) -> List[float]:
    """Row-major ``C = A @ B`` via numpy."""
    result = np.asarray(a).reshape(n, n) @ np.asarray(b).reshape(n, n)
    return [float(x) for x in result.ravel()]


def _tree_sum(terms: List[Value]) -> Value:
    while len(terms) > 1:
        nxt = [terms[i] + terms[i + 1] for i in range(0, len(terms) - 1, 2)]
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]


def build(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace an ``n x n`` GEMM."""
    a_data = floats(seed, n * n)
    b_data = floats(seed + 1, n * n)
    t = Tracer("gmm")
    a = t.array("A", a_data)
    b = t.array("B", b_data)
    for i in range(n):
        for j in range(n):
            terms = [a.read(i * n + k) * b.read(k * n + j) for k in range(n)]
            t.output(_tree_sum(terms), f"C[{i},{j}]")
    return t.kernel()


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    return floats(seed, n * n), floats(seed + 1, n * n), n
