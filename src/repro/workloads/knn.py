"""KNN — k-nearest-neighbours distance kernel (MachSuite/CortexSuite style).

Squared Euclidean distances from one query to a point set, followed by a
traced selection network extracting the k smallest distances.
"""

from __future__ import annotations

from typing import List

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import floats

DEFAULT_POINTS = 32
DEFAULT_DIMS = 4
DEFAULT_K = 4
_SEED = 501


def reference(
    points: List[List[float]], query: List[float], k: int
) -> List[float]:
    """The k smallest squared distances, ascending."""
    distances = [
        sum((p - q) ** 2 for p, q in zip(point, query)) for point in points
    ]
    return sorted(distances)[:k]


def build(
    n_points: int = DEFAULT_POINTS,
    dims: int = DEFAULT_DIMS,
    k: int = DEFAULT_K,
    seed: int = _SEED,
) -> TracedKernel:
    """Trace distance computation plus k-minimum selection."""
    point_data = [floats(seed + i, dims) for i in range(n_points)]
    query_data = floats(seed + n_points, dims)

    t = Tracer("knn")
    query = t.array("query", query_data)
    distances: List[Value] = []
    for index, coords in enumerate(point_data):
        point = t.array(f"p{index}", coords)
        acc = None
        for d in range(dims):
            diff = point.read(d) - query.read(d)
            term = diff * diff
            acc = term if acc is None else acc + term
        distances.append(acc)

    # Selection: k passes of traced minimum extraction.  After each pass the
    # winner is replaced by +inf so the next pass finds the runner-up.
    big = t.const(1e30)
    working = list(distances)
    for rank in range(k):
        best = working[0]
        best_index = 0
        for i in range(1, len(working)):
            smaller = working[i] < best
            best = t.select(smaller, working[i], best)
            if smaller.concrete:
                best_index = i
        t.output(best, f"nn[{rank}]")
        working[best_index] = big
    return t.kernel()


def build_inputs(
    n_points: int = DEFAULT_POINTS,
    dims: int = DEFAULT_DIMS,
    k: int = DEFAULT_K,
    seed: int = _SEED,
):
    points = [floats(seed + i, dims) for i in range(n_points)]
    query = floats(seed + n_points, dims)
    return points, query, k
