"""MDY — molecular dynamics Lennard-Jones force kernel (SHOC ``md``).

Per-particle force accumulation over a fixed neighbour list:
``F += (48/r^14 - 24/r^8) * d`` per axis (unit-parameter LJ form).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import positive_floats, rng

DEFAULT_PARTICLES = 16
DEFAULT_NEIGHBOURS = 6
_SEED = 401


def _positions(n: int, seed: int) -> List[Tuple[float, float, float]]:
    xs = positive_floats(seed, n, 0.5, 4.0)
    ys = positive_floats(seed + 1, n, 0.5, 4.0)
    zs = positive_floats(seed + 2, n, 0.5, 4.0)
    return list(zip(xs, ys, zs))


def _neighbour_list(n: int, k: int, seed: int) -> List[List[int]]:
    generator = rng(seed + 3)
    neighbours = []
    for i in range(n):
        others = [j for j in range(n) if j != i]
        picks = generator.choice(others, size=min(k, len(others)), replace=False)
        neighbours.append(sorted(int(j) for j in picks))
    return neighbours


def reference(
    positions: List[Tuple[float, float, float]], neighbours: List[List[int]]
) -> List[Tuple[float, float, float]]:
    """Plain-Python LJ force accumulation."""
    forces = []
    for i, (xi, yi, zi) in enumerate(positions):
        fx = fy = fz = 0.0
        for j in neighbours[i]:
            xj, yj, zj = positions[j]
            dx, dy, dz = xi - xj, yi - yj, zi - zj
            r2 = dx * dx + dy * dy + dz * dz
            inv_r2 = 1.0 / r2
            inv_r6 = inv_r2 * inv_r2 * inv_r2
            scale = (48.0 * inv_r6 - 24.0) * inv_r6 * inv_r2
            fx += scale * dx
            fy += scale * dy
            fz += scale * dz
        forces.append((fx, fy, fz))
    return forces


def build(
    n_particles: int = DEFAULT_PARTICLES,
    n_neighbours: int = DEFAULT_NEIGHBOURS,
    seed: int = _SEED,
) -> TracedKernel:
    """Trace the LJ force kernel over the deterministic particle system."""
    positions = _positions(n_particles, seed)
    neighbours = _neighbour_list(n_particles, n_neighbours, seed)

    t = Tracer("mdy")
    x = t.array("x", [p[0] for p in positions])
    y = t.array("y", [p[1] for p in positions])
    z = t.array("z", [p[2] for p in positions])
    c48 = t.const(48.0)
    c24 = t.const(24.0)
    one = t.const(1.0)
    for i in range(n_particles):
        fx = fy = fz = None
        for j in neighbours[i]:
            dx = x.read(i) - x.read(j)
            dy = y.read(i) - y.read(j)
            dz = z.read(i) - z.read(j)
            r2 = dx * dx + dy * dy + dz * dz
            inv_r2 = one / r2
            inv_r6 = inv_r2 * inv_r2 * inv_r2
            scale = (c48 * inv_r6 - c24) * inv_r6 * inv_r2
            tx, ty, tz = scale * dx, scale * dy, scale * dz
            fx = tx if fx is None else fx + tx
            fy = ty if fy is None else fy + ty
            fz = tz if fz is None else fz + tz
        t.output(fx, f"fx[{i}]")
        t.output(fy, f"fy[{i}]")
        t.output(fz, f"fz[{i}]")
    return t.kernel()


def build_inputs(
    n_particles: int = DEFAULT_PARTICLES,
    n_neighbours: int = DEFAULT_NEIGHBOURS,
    seed: int = _SEED,
):
    return _positions(n_particles, seed), _neighbour_list(
        n_particles, n_neighbours, seed
    )
