"""NWN — Needleman-Wunsch global sequence alignment (MachSuite ``nw``).

Dynamic-programming score matrix over two random nucleotide sequences; the
three-way max recurrence and the match/mismatch scoring are fully traced.
"""

from __future__ import annotations

from typing import List

from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import ints

DEFAULT_LEN = 12
MATCH = 1
MISMATCH = -1
GAP = -1
_SEED = 701


def reference(seq_a: List[int], seq_b: List[int]) -> int:
    """Plain DP alignment score."""
    rows, cols = len(seq_a) + 1, len(seq_b) + 1
    score = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        score[i][0] = i * GAP
    for j in range(cols):
        score[0][j] = j * GAP
    for i in range(1, rows):
        for j in range(1, cols):
            sub = MATCH if seq_a[i - 1] == seq_b[j - 1] else MISMATCH
            score[i][j] = max(
                score[i - 1][j - 1] + sub,
                score[i - 1][j] + GAP,
                score[i][j - 1] + GAP,
            )
    return score[rows - 1][cols - 1]


def build(length: int = DEFAULT_LEN, seed: int = _SEED) -> TracedKernel:
    """Trace the alignment of two *length*-long sequences."""
    seq_a = ints(seed, length, 0, 3)
    seq_b = ints(seed + 1, length, 0, 3)
    t = Tracer("nwn")
    a = t.array("a", seq_a)
    b = t.array("b", seq_b)
    match = t.const(MATCH)
    mismatch = t.const(MISMATCH)
    gap = t.const(GAP)

    rows, cols = length + 1, length + 1
    score = [[t.const(i * GAP) if j == 0 else None for j in range(cols)] for i in range(rows)]
    for j in range(cols):
        score[0][j] = t.const(j * GAP)
    for i in range(1, rows):
        for j in range(1, cols):
            is_match = a.read(i - 1).eq(b.read(j - 1))
            sub = t.select(is_match, match, mismatch)
            diagonal = score[i - 1][j - 1] + sub
            up = score[i - 1][j] + gap
            left = score[i][j - 1] + gap
            score[i][j] = t.maximum(diagonal, t.maximum(up, left))
    t.output(score[rows - 1][cols - 1], "score")
    return t.kernel()


def build_inputs(length: int = DEFAULT_LEN, seed: int = _SEED):
    return ints(seed, length, 0, 3), ints(seed + 1, length, 0, 3)
