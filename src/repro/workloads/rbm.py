"""RBM — restricted Boltzmann machine hidden-layer inference (CortexSuite).

One visible-to-hidden pass: ``h = sigmoid(W @ v + b)``, the dense
matrix-vector + activation core the paper's machine-learning kernel
exercises.
"""

from __future__ import annotations

import math
from typing import List

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import floats

DEFAULT_VISIBLE = 16
DEFAULT_HIDDEN = 8
_SEED = 301


def reference(
    weights: List[float], bias: List[float], visible: List[float], n_hidden: int
) -> List[float]:
    """Plain-Python forward pass."""
    n_visible = len(visible)
    hidden = []
    for h in range(n_hidden):
        acc = bias[h]
        for v in range(n_visible):
            acc += weights[h * n_visible + v] * visible[v]
        hidden.append(1.0 / (1.0 + math.exp(-acc)))
    return hidden


def _tree_sum(terms: List[Value]) -> Value:
    while len(terms) > 1:
        nxt = [terms[i] + terms[i + 1] for i in range(0, len(terms) - 1, 2)]
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]


def build(
    n_visible: int = DEFAULT_VISIBLE,
    n_hidden: int = DEFAULT_HIDDEN,
    seed: int = _SEED,
) -> TracedKernel:
    """Trace one hidden-layer inference pass."""
    weight_data = floats(seed, n_hidden * n_visible)
    bias_data = floats(seed + 1, n_hidden)
    visible_data = floats(seed + 2, n_visible)

    t = Tracer("rbm")
    weights = t.array("W", weight_data)
    bias = t.array("b", bias_data)
    visible = t.array("v", visible_data)
    for h in range(n_hidden):
        terms = [
            weights.read(h * n_visible + v) * visible.read(v)
            for v in range(n_visible)
        ]
        pre_activation = _tree_sum(terms) + bias.read(h)
        t.output(t.sigmoid(pre_activation), f"h[{h}]")
    return t.kernel()


def build_inputs(
    n_visible: int = DEFAULT_VISIBLE,
    n_hidden: int = DEFAULT_HIDDEN,
    seed: int = _SEED,
):
    return (
        floats(seed, n_hidden * n_visible),
        floats(seed + 1, n_hidden),
        floats(seed + 2, n_visible),
        n_hidden,
    )
