"""RED — parallel reduction microbenchmark (SHOC): tree sum of a vector.

Expressed as a balanced binary reduction tree (the natural spatial mapping
an accelerator uses), so the DFG exposes ``n/2`` parallelism at the first
stage and ``log2(n)`` depth.
"""

from __future__ import annotations

from typing import List

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import floats

DEFAULT_N = 64
_SEED = 1701


def reference(data: List[float]) -> float:
    return float(sum(data))


def build(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace a balanced tree reduction over *n* elements."""
    data = floats(seed, n)
    t = Tracer("red")
    arr = t.array("x", data)
    level: List[Value] = [arr.read(i) for i in range(n)]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i] + level[i + 1])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    t.output(level[0], "sum")
    return t.kernel()


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    return (floats(seed, n),)
