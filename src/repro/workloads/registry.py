"""Registry of the Table IV benchmark kernels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.accel.trace import TracedKernel
from repro.errors import DatasetError
from repro.workloads import (
    aes, bfs, fft, gmm, knn, mdy, nwn, rbm, red, sad, smv, srt, ssp, s2d, s3d, trd,
)


@dataclass(frozen=True)
class Workload:
    """One Table IV row: name, domain, and the traced-kernel builder."""

    abbrev: str
    name: str
    domain: str
    builder: Callable[..., TracedKernel]

    def build(self, **kwargs) -> TracedKernel:
        """Trace the kernel with its default (or overridden) parameters."""
        return self.builder(**kwargs)


#: Table IV, in the paper's row order.
WORKLOADS: Tuple[Workload, ...] = (
    Workload("AES", "Advanced Encryption Standard", "Cryptography", aes.build),
    Workload("BFS", "Breadth-First Search", "Graph Processing", bfs.build),
    Workload("FFT", "Fast Fourier Transform", "Signal Processing", fft.build),
    Workload("GMM", "General Matrix Multiplication", "Linear Algebra", gmm.build),
    Workload("MDY", "Molecular Dynamics", "Molecular Dynamics", mdy.build),
    Workload("KNN", "K-Nearest Neighbors", "Data Mining", knn.build),
    Workload("NWN", "Needleman-Wunsch", "Bioinformatics", nwn.build),
    Workload("RBM", "Restricted Boltzmann machine", "Machine Learning", rbm.build),
    Workload("RED", "Reduction", "Microbenchmarking", red.build),
    Workload("SAD", "Sum of Absolute Differences", "Video Processing", sad.build),
    Workload("SRT", "Merge Sort", "Algorithms", srt.build),
    Workload("SMV", "Sparse Matrix-Vector Multiply", "Linear Algebra", smv.build),
    Workload("SSP", "Single Source, Shortest Path", "Graph Processing", ssp.build),
    Workload("S2D", "2D Stencil", "Image Processing", s2d.build),
    Workload("S3D", "3D Stencil", "Image Processing", s3d.build),
    Workload("TRD", "Triad", "Microbenchmarking", trd.build),
)

_BY_ABBREV: Dict[str, Workload] = {w.abbrev: w for w in WORKLOADS}


def get_workload(abbrev: str) -> Workload:
    """Look up a Table IV workload by abbreviation (case-insensitive)."""
    try:
        return _BY_ABBREV[abbrev.upper()]
    except KeyError:
        raise DatasetError(
            f"unknown workload {abbrev!r}; known: {sorted(_BY_ABBREV)}"
        ) from None


def build_kernel(abbrev: str, **kwargs) -> TracedKernel:
    """Trace one workload by abbreviation."""
    return get_workload(abbrev).build(**kwargs)


def build_all_kernels() -> List[TracedKernel]:
    """Trace the full Table IV suite (default parameters)."""
    return [workload.build() for workload in WORKLOADS]
