"""S2D — 9-point 2D stencil (MachSuite ``stencil2d``).

Weighted 3x3 convolution over the interior of a square grid.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import floats

DEFAULT_N = 10
#: 3x3 filter coefficients (row-major), a mild sharpening kernel.
COEFFS = (0.0625, 0.125, 0.0625, 0.125, 0.25, 0.125, 0.0625, 0.125, 0.0625)
_SEED = 1401


def reference(grid: List[float], n: int) -> List[float]:
    """Interior (n-2)x(n-2) filtered values, row-major."""
    g = np.asarray(grid).reshape(n, n)
    k = np.asarray(COEFFS).reshape(3, 3)
    out = []
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            out.append(float(np.sum(g[i - 1 : i + 2, j - 1 : j + 2] * k)))
    return out


def build(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace the stencil over an ``n x n`` grid."""
    grid_data = floats(seed, n * n)
    t = Tracer("s2d")
    grid = t.array("grid", grid_data)
    coeffs = [t.const(c) for c in COEFFS]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            acc = None
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    k = (di + 1) * 3 + (dj + 1)
                    term = coeffs[k] * grid.read((i + di) * n + (j + dj))
                    acc = term if acc is None else acc + term
            t.output(acc, f"out[{i},{j}]")
    return t.kernel()


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    return floats(seed, n * n), n
