"""S3D — 7-point 3D stencil (MachSuite ``stencil3d``; paper Figs 12-13).

``out = C0 * center + C1 * sum(6 face neighbours)`` over the interior of a
cubic lattice — the kernel the paper uses for its Fig 13 sweep case study.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import floats

DEFAULT_N = 6
C0 = 0.5
C1 = 0.0833
_SEED = 1501


def reference(grid: List[float], n: int) -> List[float]:
    """Interior (n-2)^3 stencil values, x-major."""
    g = np.asarray(grid).reshape(n, n, n)
    out = []
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            for k in range(1, n - 1):
                neighbours = (
                    g[i - 1, j, k] + g[i + 1, j, k]
                    + g[i, j - 1, k] + g[i, j + 1, k]
                    + g[i, j, k - 1] + g[i, j, k + 1]
                )
                out.append(float(C0 * g[i, j, k] + C1 * neighbours))
    return out


def build(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace the stencil over an ``n^3`` lattice."""
    grid_data = floats(seed, n**3)
    t = Tracer("s3d")
    grid = t.array("grid", grid_data)
    c0 = t.const(C0)
    c1 = t.const(C1)

    def at(i: int, j: int, k: int):
        return grid.read((i * n + j) * n + k)

    for i in range(1, n - 1):
        for j in range(1, n - 1):
            for k in range(1, n - 1):
                left_right = at(i - 1, j, k) + at(i + 1, j, k)
                up_down = at(i, j - 1, k) + at(i, j + 1, k)
                front_back = at(i, j, k - 1) + at(i, j, k + 1)
                neighbours = left_right + (up_down + front_back)
                t.output(c0 * at(i, j, k) + c1 * neighbours, f"out[{i},{j},{k}]")
    return t.kernel()


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    return floats(seed, n**3), n
