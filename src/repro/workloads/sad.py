"""SAD — sum of absolute differences (PARSEC x264 motion estimation core).

Compares a reference 8x8 block against a candidate block: per-pixel absolute
difference, tree-reduced to one score.
"""

from __future__ import annotations

from typing import List

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import ints

DEFAULT_BLOCK = 8
DEFAULT_CANDIDATES = 4
_SEED = 1201


def reference(ref: List[int], candidates: List[List[int]]) -> List[int]:
    """SAD score per candidate block."""
    return [sum(abs(r - c) for r, c in zip(ref, cand)) for cand in candidates]


def _tree_sum(terms: List[Value]) -> Value:
    while len(terms) > 1:
        nxt = [terms[i] + terms[i + 1] for i in range(0, len(terms) - 1, 2)]
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]


def build(
    block: int = DEFAULT_BLOCK,
    candidates: int = DEFAULT_CANDIDATES,
    seed: int = _SEED,
) -> TracedKernel:
    """Trace SAD of *candidates* blocks against one reference block."""
    n = block * block
    ref_data = ints(seed, n)
    t = Tracer("sad")
    ref = t.array("ref", ref_data)
    for c in range(candidates):
        cand = t.array(f"cand{c}", ints(seed + 1 + c, n))
        diffs = [abs(ref.read(i) - cand.read(i)) for i in range(n)]
        t.output(_tree_sum(diffs), f"sad[{c}]")
    return t.kernel()


def build_inputs(
    block: int = DEFAULT_BLOCK,
    candidates: int = DEFAULT_CANDIDATES,
    seed: int = _SEED,
):
    n = block * block
    return ints(seed, n), [ints(seed + 1 + c, n) for c in range(candidates)]
