"""SHA-256 compression function — the Bitcoin mining core (paper §IV-D).

A full FIPS-180-4 single-block SHA-256, written once against a
byte-operations adapter and instantiated over plain integers (reference)
and traced values (the accelerator kernel), like :mod:`repro.workloads.aes`.
Bitcoin mining hashes a candidate block header twice through this function;
the paper's "confined computation" discussion is about the limited number of
ways this fixed dataflow can be mapped to hardware.

Not part of the Table IV registry (the paper's DSE suite); used by the
mining-accelerator extension study and its benches.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.accel.trace import TracedKernel, Tracer, Value

#: FIPS-180-4 round constants.
_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

#: Initial hash state.
_H0 = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
]

_MASK32 = 0xFFFFFFFF

#: FIPS-180-4 test vector: SHA-256("abc"), already padded to one block.
ABC_BLOCK_WORDS = [
    0x61626380, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x18,
]
ABC_DIGEST = [
    0xBA7816BF, 0x8F01CFEA, 0x414140DE, 0x5DAE2223,
    0xB00361A3, 0x96177A9C, 0xB410FF61, 0xF20015AD,
]


class _IntOps:
    """32-bit word operations over plain integers."""

    def add(self, *values):
        total = 0
        for value in values:
            total += value
        return total & _MASK32

    def xor(self, a, b):
        return a ^ b

    def land(self, a, b):
        return a & b

    def lnot(self, a):
        return a ^ _MASK32

    def rotr(self, a, n):
        return ((a >> n) | (a << (32 - n))) & _MASK32

    def shr(self, a, n):
        return a >> n


class _TracedOps:
    """32-bit word operations over traced values."""

    def __init__(self, tracer: Tracer):
        self.t = tracer
        self._mask = tracer.const(_MASK32)

    def add(self, *values):
        total = self.t.lift(values[0])
        for value in values[1:]:
            total = total + value
        return total & self._mask

    def xor(self, a, b):
        return self.t.lift(a) ^ b

    def land(self, a, b):
        return self.t.lift(a) & b

    def lnot(self, a):
        return self.t.lift(a) ^ self._mask

    def rotr(self, a, n):
        a = self.t.lift(a)
        left = a >> self.t.const(n)
        right = (a << self.t.const(32 - n)) & self._mask
        return left | right

    def shr(self, a, n):
        return self.t.lift(a) >> self.t.const(n)


def _compress(block_words: Sequence, ops, rounds: int = 64) -> List:
    """One SHA-256 compression over a 16-word block (generic over ops).

    *rounds* < 64 yields a reduced-round variant (cryptographically broken
    but structurally identical), used to keep DSE traces small.
    """
    w = list(block_words)
    for i in range(16, rounds):
        s0 = ops.xor(
            ops.xor(ops.rotr(w[i - 15], 7), ops.rotr(w[i - 15], 18)),
            ops.shr(w[i - 15], 3),
        )
        s1 = ops.xor(
            ops.xor(ops.rotr(w[i - 2], 17), ops.rotr(w[i - 2], 19)),
            ops.shr(w[i - 2], 10),
        )
        w.append(ops.add(w[i - 16], s0, w[i - 7], s1))

    a, b, c, d, e, f, g, h = _H0
    state = [a, b, c, d, e, f, g, h]
    a, b, c, d, e, f, g, h = state
    for i in range(rounds):
        big_s1 = ops.xor(
            ops.xor(ops.rotr(e, 6), ops.rotr(e, 11)), ops.rotr(e, 25)
        )
        choose = ops.xor(ops.land(e, f), ops.land(ops.lnot(e), g))
        temp1 = ops.add(h, big_s1, choose, _K[i], w[i])
        big_s0 = ops.xor(
            ops.xor(ops.rotr(a, 2), ops.rotr(a, 13)), ops.rotr(a, 22)
        )
        majority = ops.xor(
            ops.xor(ops.land(a, b), ops.land(a, c)), ops.land(b, c)
        )
        temp2 = ops.add(big_s0, majority)
        h, g, f, e = g, f, e, ops.add(d, temp1)
        d, c, b, a = c, b, a, ops.add(temp1, temp2)

    return [
        ops.add(x, y)
        for x, y in zip(_H0, [a, b, c, d, e, f, g, h])
    ]


def reference(
    block_words: Sequence[int] = ABC_BLOCK_WORDS, rounds: int = 64
) -> List[int]:
    """Reference compression over plain integers."""
    return _compress(list(block_words), _IntOps(), rounds)


def build(
    block_words: Sequence[int] = ABC_BLOCK_WORDS, rounds: int = 64
) -> TracedKernel:
    """Trace one SHA-256 compression (optionally reduced-round)."""
    if len(block_words) != 16:
        raise ValueError("SHA-256 block must be 16 x 32-bit words")
    if not (16 <= rounds <= 64):
        raise ValueError("rounds must lie in [16, 64]")
    t = Tracer("sha256")
    arr = t.array("block", list(block_words))
    words: List[Value] = [arr.read(i) for i in range(16)]
    digest = _compress(words, _TracedOps(t), rounds)
    for i, word in enumerate(digest):
        t.output(word, f"h[{i}]")
    return t.kernel()


def double_sha_header(nonce: int = 0, rounds: int = 64) -> TracedKernel:
    """Trace the Bitcoin mining inner loop: SHA-256 over a header block
    whose last word is the nonce (single compression per stage, the
    per-nonce marginal work of a miner with precomputed midstate)."""
    block = list(ABC_BLOCK_WORDS)
    block[3] = nonce & _MASK32
    t = Tracer("btc-double-sha")
    arr = t.array("header", block)
    words = [arr.read(i) for i in range(16)]
    ops = _TracedOps(t)
    first = _compress(words, ops, rounds)
    # Second compression: digest (8 words) + fixed padding words.
    padded = first + [t.const(x) for x in (0x80000000, 0, 0, 0, 0, 0, 0, 0x100)]
    second = _compress(padded, ops, rounds)
    for i, word in enumerate(second):
        t.output(word, f"hash[{i}]")
    return t.kernel()
