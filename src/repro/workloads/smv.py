"""SMV — sparse matrix-vector multiply in CSR form (MachSuite ``spmv``).

Column indices are traced values feeding ``gather`` accesses, so the DFG
records the data-dependent addressing that makes SpMV memory-irregular.
"""

from __future__ import annotations

from typing import List, Tuple


from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import rng

DEFAULT_N = 16
DEFAULT_DENSITY = 0.2
_SEED = 1301


def make_csr(
    n: int = DEFAULT_N, density: float = DEFAULT_DENSITY, seed: int = _SEED
) -> Tuple[List[float], List[int], List[int], List[float]]:
    """Deterministic CSR matrix (values, col_idx, row_ptr) and dense vector.

    Every row gets at least one entry so no output is trivially zero.
    """
    generator = rng(seed)
    values: List[float] = []
    col_idx: List[int] = []
    row_ptr: List[int] = [0]
    for _ in range(n):
        cols = sorted(
            set(int(c) for c in generator.integers(0, n, size=max(1, int(n * density))))
        )
        for c in cols:
            values.append(float(generator.uniform(-1.0, 1.0)))
            col_idx.append(c)
        row_ptr.append(len(values))
    x = [float(v) for v in generator.uniform(-1.0, 1.0, size=n)]
    return values, col_idx, row_ptr, x


def reference(
    values: List[float], col_idx: List[int], row_ptr: List[int], x: List[float]
) -> List[float]:
    """Dense re-expansion check of ``y = A @ x``."""
    n = len(row_ptr) - 1
    y = []
    for row in range(n):
        acc = 0.0
        for k in range(row_ptr[row], row_ptr[row + 1]):
            acc += values[k] * x[col_idx[k]]
        y.append(acc)
    return y


def build(
    n: int = DEFAULT_N, density: float = DEFAULT_DENSITY, seed: int = _SEED
) -> TracedKernel:
    """Trace ``y = A @ x`` over the deterministic CSR matrix."""
    values, col_idx, row_ptr, x_data = make_csr(n, density, seed)
    t = Tracer("smv")
    vals = t.array("vals", values)
    cols = t.array("cols", col_idx)
    x = t.array("x", x_data)
    for row in range(n):
        acc: Value = t.const(0.0)
        for k in range(row_ptr[row], row_ptr[row + 1]):
            xk = x.gather(cols.read(k))
            acc = acc + vals.read(k) * xk
        t.output(acc, f"y[{row}]")
    return t.kernel()


def build_inputs(
    n: int = DEFAULT_N, density: float = DEFAULT_DENSITY, seed: int = _SEED
):
    return make_csr(n, density, seed)
