"""SRT — merge sort (MachSuite ``sort``).

Bottom-up merge sort over a vector of traced values.  Comparisons are traced
(and drive the concrete merge), so the DFG is the dependence structure of
one dynamic sorting execution.
"""

from __future__ import annotations

from typing import List

from repro.accel.trace import TracedKernel, Tracer, Value
from repro.workloads._data import floats

DEFAULT_N = 32
_SEED = 601


def reference(data: List[float]) -> List[float]:
    return sorted(data)


def _merge(t: Tracer, left: List[Value], right: List[Value]) -> List[Value]:
    merged: List[Value] = []
    i = j = 0
    while i < len(left) and j < len(right):
        take_left = left[i] <= right[j]
        # The select records both candidates as data dependences; the
        # concrete branch advances the correct cursor.
        merged.append(t.select(take_left, left[i], right[j]))
        if take_left.concrete:
            i += 1
        else:
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def build(n: int = DEFAULT_N, seed: int = _SEED) -> TracedKernel:
    """Trace a bottom-up merge sort of *n* values."""
    data = floats(seed, n)
    t = Tracer("srt")
    arr = t.array("x", data)
    runs: List[List[Value]] = [[arr.read(i)] for i in range(n)]
    while len(runs) > 1:
        nxt = []
        for i in range(0, len(runs) - 1, 2):
            nxt.append(_merge(t, runs[i], runs[i + 1]))
        if len(runs) % 2:
            nxt.append(runs[-1])
        runs = nxt
    for index, value in enumerate(runs[0]):
        t.output(value, f"sorted[{index}]")
    return t.kernel()


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    return (floats(seed, n),)
