"""SSP — single-source shortest paths (paper-internal benchmark).

Bellman-Ford relaxation over a weighted random digraph: every edge
relaxation (add + min) is traced for all ``|V| - 1`` rounds, matching the
hardware-friendly fixed-iteration formulation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import random_graph

DEFAULT_VERTICES = 12
DEFAULT_EDGES = 28
_INFINITY = 1e9
_SEED = 801


def reference(edges: List[Tuple[int, int, float]], n_vertices: int) -> List[float]:
    """Plain Bellman-Ford distances from vertex 0."""
    dist = [_INFINITY] * n_vertices
    dist[0] = 0.0
    for _ in range(n_vertices - 1):
        for u, v, w in edges:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
    return dist


def build(
    n_vertices: int = DEFAULT_VERTICES,
    n_edges: int = DEFAULT_EDGES,
    seed: int = _SEED,
) -> TracedKernel:
    """Trace Bellman-Ford from vertex 0."""
    edges = random_graph(seed, n_vertices, n_edges)
    t = Tracer("ssp")
    dist = t.array("dist", length=n_vertices)
    dist.write(0, t.const(0.0))
    for v in range(1, n_vertices):
        dist.write(v, t.const(_INFINITY))
    weights = t.array("w", [w for _, _, w in edges])
    for _ in range(n_vertices - 1):
        for index, (u, v, _) in enumerate(edges):
            candidate = dist.read(u) + weights.read(index)
            dist.write(v, t.minimum(dist.read(v), candidate))
    for v in range(n_vertices):
        t.output(dist.read(v), f"dist[{v}]")
    return t.kernel()


def build_inputs(
    n_vertices: int = DEFAULT_VERTICES,
    n_edges: int = DEFAULT_EDGES,
    seed: int = _SEED,
):
    return random_graph(seed, n_vertices, n_edges), n_vertices
