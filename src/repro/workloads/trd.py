"""TRD — STREAM Triad microbenchmark (SHOC): ``a[i] = b[i] + s * c[i]``."""

from __future__ import annotations

from typing import List

from repro.accel.trace import TracedKernel, Tracer
from repro.workloads._data import floats

DEFAULT_N = 64
DEFAULT_SCALAR = 1.5
_SEED = 1601


def reference(b: List[float], c: List[float], scalar: float) -> List[float]:
    """Plain-Python triad for result checking."""
    return [bi + scalar * ci for bi, ci in zip(b, c)]


def build(n: int = DEFAULT_N, scalar: float = DEFAULT_SCALAR, seed: int = _SEED) -> TracedKernel:
    """Trace a triad over *n* elements."""
    b_data = floats(seed, n)
    c_data = floats(seed + 1, n)
    t = Tracer("trd")
    b = t.array("b", b_data)
    c = t.array("c", c_data)
    s = t.const(scalar)
    a = t.array("a", length=n)
    for i in range(n):
        a.write(i, b.read(i) + s * c.read(i))
    for i in range(n):
        t.output(a.read(i), f"a[{i}]")
    return t.kernel()


def build_inputs(n: int = DEFAULT_N, seed: int = _SEED):
    """The same inputs :func:`build` uses, for reference checking."""
    return floats(seed, n), floats(seed + 1, n)
