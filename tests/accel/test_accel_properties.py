"""Hypothesis property tests over the accelerator model."""

import math
import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.resources import ResourceLibrary
from repro.accel.scheduler import schedule
from repro.accel.trace import Tracer
from repro.cmos.gains import GainsModel
from repro.dfg.analysis import stage_levels

LIB = ResourceLibrary()
GAINS = GainsModel()


# -- tracer semantics ----------------------------------------------------------

_BINOPS = [
    ("add", operator.add),
    ("sub", operator.sub),
    ("mul", operator.mul),
    ("min", min),
    ("max", max),
]


@st.composite
def expression_results(draw):
    """Build a random expression over traced and plain floats in lockstep."""
    t = Tracer("expr")
    n_leaves = draw(st.integers(min_value=2, max_value=8))
    plain = [
        draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
        for _ in range(n_leaves)
    ]
    traced = [t.input(f"v{i}", value) for i, value in enumerate(plain)]
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        op_name, fn = draw(st.sampled_from(_BINOPS))
        i = draw(st.integers(min_value=0, max_value=len(plain) - 1))
        j = draw(st.integers(min_value=0, max_value=len(plain) - 1))
        plain.append(fn(plain[i], plain[j]))
        if op_name in ("min", "max"):
            traced.append(t.binary(op_name, traced[i], traced[j]))
        else:
            traced.append(t.binary(op_name, traced[i], traced[j]))
    return t, plain, traced


@given(expression_results())
@settings(max_examples=60, deadline=None)
def test_tracer_concrete_values_match_python(data):
    _t, plain, traced = data
    for expected, value in zip(plain, traced):
        if math.isinf(expected):
            continue  # overflow edge: comparison is meaningless
        assert value.concrete == pytest.approx(expected, rel=1e-12, abs=1e-12)


@given(expression_results())
@settings(max_examples=40, deadline=None)
def test_traced_expression_schedules(data):
    t, _plain, traced = data
    t.output(traced[-1])
    kernel = t.kernel()
    result = schedule(kernel.dfg, partition=4, library=LIB)
    assert result.cycles >= 1
    assert result.total_ops == len(kernel.dfg)


# -- scheduler invariants ---------------------------------------------------------


def _tree_kernel(width, depth):
    t = Tracer("tree")
    level = [t.input(f"x{i}", float(i)) for i in range(width)]
    for _ in range(depth):
        level = [
            level[i] + level[(i + 1) % len(level)] for i in range(len(level))
        ]
    for value in level:
        t.output(value)
    return t.kernel()


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.sampled_from([1, 2, 4, 8, 16]),
)
@settings(max_examples=40, deadline=None)
def test_cycles_bounded_by_critical_path_and_serial_time(width, depth, partition):
    kernel = _tree_kernel(width, depth)
    result = schedule(kernel.dfg, partition=partition, library=LIB)
    levels = stage_levels(kernel.dfg)
    # Lower bound: every vertex on the critical path runs serially and the
    # cheapest op takes one cycle.
    assert result.cycles >= max(levels.values())
    # Upper bound: fully serial execution at the slowest op latency.
    slowest = 12  # divider latency, the largest in the library
    assert result.cycles <= len(kernel.dfg) * slowest


@given(st.integers(min_value=2, max_value=10))
@settings(max_examples=20, deadline=None)
def test_unlimited_partition_is_a_fixpoint(width):
    kernel = _tree_kernel(width, 2)
    big = schedule(kernel.dfg, partition=1024, library=LIB)
    bigger = schedule(kernel.dfg, partition=4096, library=LIB)
    assert big.cycles == bigger.cycles


# -- gains-model monotonicity -------------------------------------------------------

nodes = st.sampled_from([45.0, 28.0, 16.0, 10.0, 7.0, 5.0])
areas = st.floats(min_value=10.0, max_value=800.0)
freqs = st.floats(min_value=200.0, max_value=3000.0)
tdps = st.floats(min_value=5.0, max_value=800.0)


@given(nodes, areas, freqs, tdps)
@settings(max_examples=60, deadline=None)
def test_capping_never_increases_throughput(node, area, freq, tdp):
    capped = GAINS.evaluate(node, freq, area_mm2=area, tdp_w=tdp)
    uncapped = GAINS.evaluate(node, freq, area_mm2=area)
    assert capped.throughput <= uncapped.throughput * (1 + 1e-9)
    assert 0 < capped.active_fraction <= 1.0


@given(nodes, areas, freqs)
@settings(max_examples=60, deadline=None)
def test_throughput_monotone_in_area_uncapped(node, area, freq):
    smaller = GAINS.evaluate(node, freq, area_mm2=area)
    larger = GAINS.evaluate(node, freq, area_mm2=area * 1.5)
    assert larger.throughput > smaller.throughput


@given(nodes, areas, tdps)
@settings(max_examples=60, deadline=None)
def test_more_tdp_never_hurts(node, area, tdp):
    lo = GAINS.evaluate(node, 1000.0, area_mm2=area, tdp_w=tdp)
    hi = GAINS.evaluate(node, 1000.0, area_mm2=area, tdp_w=tdp * 2)
    assert hi.throughput >= lo.throughput * (1 - 1e-9)


@given(nodes, areas, freqs, tdps)
@settings(max_examples=60, deadline=None)
def test_power_accounting_positive_and_bounded(node, area, freq, tdp):
    gains = GAINS.evaluate(node, freq, area_mm2=area, tdp_w=tdp)
    uncapped = GAINS.evaluate(node, freq, area_mm2=area)
    assert gains.power_w > 0
    # Capping can only shed power, never add it.
    assert gains.power_w <= uncapped.power_w * (1 + 1e-9)
    if gains.tdp_limited:
        assert gains.active_fraction < 1.0
