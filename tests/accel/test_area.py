"""Tests for the design-area model."""

import pytest

from repro.accel.area import estimate_area, throughput_per_area
from repro.accel.design import DesignPoint
from repro.workloads import gmm, trd


@pytest.fixture(scope="module")
def kernel():
    return gmm.build(n=4)


class TestEstimateArea:
    def test_breakdown_sums(self, kernel):
        report = estimate_area(kernel, DesignPoint(node_nm=45, partition=4))
        assert report.total_mm2 == pytest.approx(
            report.compute_mm2 + report.memory_ports_mm2 + report.storage_mm2
        )
        assert report.total_mm2 > 0

    def test_node_shrink_is_quadratic(self, kernel):
        design45 = DesignPoint(node_nm=45, partition=4)
        design5 = DesignPoint(node_nm=5, partition=4)
        big = estimate_area(kernel, design45)
        small = estimate_area(kernel, design5)
        # Storage shrinks exactly with node^2 (fusion can shift compute).
        assert small.storage_mm2 / big.storage_mm2 == pytest.approx(
            (5 / 45) ** 2
        )
        assert small.total_mm2 < big.total_mm2

    def test_partitioning_costs_area(self, kernel):
        narrow = estimate_area(kernel, DesignPoint(node_nm=45, partition=1))
        wide = estimate_area(kernel, DesignPoint(node_nm=45, partition=32))
        assert wide.compute_mm2 > narrow.compute_mm2
        assert wide.memory_ports_mm2 > narrow.memory_ports_mm2

    def test_simplification_narrows_datapaths(self, kernel):
        plain = estimate_area(kernel, DesignPoint(node_nm=45, partition=4,
                                                  simplification=1))
        narrow = estimate_area(kernel, DesignPoint(node_nm=45, partition=4,
                                                   simplification=9))
        assert narrow.compute_mm2 < plain.compute_mm2


class TestThroughputPerArea:
    def test_positive(self, kernel):
        assert throughput_per_area(kernel, DesignPoint(node_nm=45, partition=4)) > 0

    def test_new_node_wins_per_area(self, kernel):
        # Fig 1's driver: density x speed compound into per-area gains.
        old = throughput_per_area(kernel, DesignPoint(node_nm=45, partition=16))
        new = throughput_per_area(kernel, DesignPoint(node_nm=5, partition=16))
        assert new > 10 * old

    def test_overpartitioning_wastes_area(self):
        # A serial kernel gains nothing from lanes but still pays for them.
        t_kernel = trd.build(n=8)
        modest = throughput_per_area(
            t_kernel, DesignPoint(node_nm=45, partition=8)
        )
        extreme = throughput_per_area(
            t_kernel, DesignPoint(node_nm=45, partition=512)
        )
        assert extreme <= modest * 1.05
