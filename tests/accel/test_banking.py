"""Tests for banked-scratchpad scheduling (memory partitioning)."""

import pytest

from repro.accel.resources import OpClass, ResourceLibrary
from repro.accel.scheduler import schedule
from repro.accel.trace import Tracer


@pytest.fixture(scope="module")
def lib():
    return ResourceLibrary()


def memory_heavy_kernel(n=32):
    """n independent element reads feeding one reduction."""
    t = Tracer("membound")
    arr = t.array("x", [float(i) for i in range(n)])
    values = [arr.read(i) for i in range(n)]
    while len(values) > 1:
        values = [
            values[i] + values[i + 1] for i in range(0, len(values) - 1, 2)
        ] + ([values[-1]] if len(values) % 2 else [])
    t.output(values[0])
    return t.kernel()


class TestBankedMemory:
    def test_banked_never_faster_than_pooled_at_same_ports_on_average(self, lib):
        # Banking adds placement constraints; across a range of partition
        # factors the banked schedule must not be systematically faster.
        kernel = memory_heavy_kernel()
        deltas = []
        for p in (2, 4, 8, 16):
            pooled = schedule(kernel.dfg, partition=p, library=lib).cycles
            banked = schedule(
                kernel.dfg, partition=p, library=lib, banked_memory=True
            ).cycles
            deltas.append(banked - pooled)
        assert sum(deltas) >= 0

    def test_banked_single_partition_equals_pooled(self, lib):
        # One bank == one pooled port.
        kernel = memory_heavy_kernel(8)
        pooled = schedule(kernel.dfg, partition=1, library=lib).cycles
        banked = schedule(
            kernel.dfg, partition=1, library=lib, banked_memory=True
        ).cycles
        assert banked == pooled

    def test_bank_conflicts_slow_down_skewed_placement(self, lib):
        # All loads share a label -> all map to one bank: worst case.
        t = Tracer("skew")
        values = [t.input("same-label", float(i)) for i in range(16)]
        total = values[0]
        for v in values[1:]:
            total = total + v
        t.output(total)
        kernel = t.kernel()
        pooled = schedule(kernel.dfg, partition=16, library=lib).cycles
        banked = schedule(
            kernel.dfg, partition=16, library=lib, banked_memory=True
        ).cycles
        assert banked > pooled

    def test_provisioned_banks_bounded_by_partition(self, lib):
        kernel = memory_heavy_kernel(32)
        result = schedule(
            kernel.dfg, partition=8, library=lib, banked_memory=True
        )
        assert 1 <= result.provisioned[OpClass.MEMORY] <= 8

    def test_banking_preserves_op_accounting(self, lib):
        kernel = memory_heavy_kernel(16)
        pooled = schedule(kernel.dfg, partition=4, library=lib)
        banked = schedule(
            kernel.dfg, partition=4, library=lib, banked_memory=True
        )
        assert pooled.op_counts == banked.op_counts
        assert pooled.total_ops == banked.total_ops
