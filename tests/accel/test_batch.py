"""Tests for the vectorized batch evaluator (`repro.accel.batch`).

The batch path's whole contract is *bit-identity* with the scalar oracle:
for any kernel and any design grid, `BatchEvaluator.evaluate(...).reports()`
must equal per-point `evaluate_design` exactly — same cycles, dynamic
energy, leakage, clock, op counts, and therefore the same derived
runtime/power/gain numbers.  These tests pin that contract with fixed
grids, a hypothesis harness over random DFGs x random grids, the
structural-dedup bookkeeping, and the cache/store integration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.batch import BatchEvaluator, MacroGraph, evaluate_batch
from repro.accel.cache import ScheduleStore
from repro.accel.design import DesignPoint
from repro.accel.power import evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.accel.scheduler import schedule as run_schedule
from repro.accel.sweep import ScheduleCache, default_design_grid, sweep
from repro.accel.trace import TracedKernel
from repro.dfg.graph import Dfg, NodeKind
from repro.dfg.transforms import dead_code_eliminate
from repro.workloads import s3d, trd

GRID = dict(
    nodes=(45.0, 14.0, 5.0),
    partitions=(1, 4, 16, 64, 1024),
    simplifications=(1, 5, 9, 13),
)


@pytest.fixture(scope="module")
def kernel():
    return trd.build(n=16)


@pytest.fixture(scope="module")
def grid():
    # Mixed heterogeneity exercises every fusion window the library emits.
    return default_design_grid(**GRID) + default_design_grid(
        heterogeneity=False, **GRID
    )


@pytest.fixture(scope="module")
def scalar(kernel, grid):
    lib = ResourceLibrary()
    cache = ScheduleCache(kernel, lib)
    return tuple(
        evaluate_design(kernel, d, lib, precomputed=cache.get(d)) for d in grid
    )


class TestBitIdentity:
    def test_reports_equal_scalar_oracle(self, kernel, grid, scalar):
        reports = BatchEvaluator(kernel).evaluate(grid).reports()
        assert reports == scalar

    def test_derived_metrics_equal(self, kernel, grid, scalar):
        # PowerReport equality covers the raw fields; the derived
        # properties are pure functions of them, pinned here explicitly.
        for batch, ref in zip(
            BatchEvaluator(kernel).evaluate(grid).reports(), scalar
        ):
            assert batch.runtime_s == ref.runtime_s
            assert batch.power_w == ref.power_w
            assert batch.energy_nj == ref.energy_nj
            assert batch.throughput_ops == ref.throughput_ops
            assert batch.energy_efficiency == ref.energy_efficiency

    def test_result_columns_match_reports(self, kernel, grid):
        result = BatchEvaluator(kernel).evaluate(grid)
        reports = result.reports()
        assert len(result) == len(grid)
        assert result.cycles.tolist() == [r.cycles for r in reports]
        assert result.runtime_s().tolist() == [r.runtime_s for r in reports]

    def test_module_level_helper(self, kernel, grid, scalar):
        assert evaluate_batch(kernel, grid).reports() == scalar

    def test_empty_grid(self, kernel):
        result = BatchEvaluator(kernel).evaluate([])
        assert len(result) == 0
        assert result.reports() == ()
        assert result.structures == 0

    def test_sweep_vectorized_matches_scalar_path(self, kernel, grid):
        vectorized = sweep(kernel, grid)
        scalar = sweep(kernel, grid, vectorize=False)
        assert vectorized.reports == scalar.reports
        assert vectorized.stats.design_points == scalar.stats.design_points


class TestStructuralDedup:
    def test_structures_counts_unique_keys(self, kernel, grid):
        cache = ScheduleCache(kernel, ResourceLibrary())
        expected = {cache.structural_key(d) for d in grid}
        result = BatchEvaluator(kernel).evaluate(grid)
        assert result.structures == len(expected)
        assert result.structures < len(grid)

    def test_structural_key_caps_partition(self, kernel):
        cache = ScheduleCache(kernel, ResourceLibrary())
        small = DesignPoint(node_nm=45.0, partition=1, simplification=1)
        huge = DesignPoint(node_nm=45.0, partition=524288, simplification=1)
        capped = DesignPoint(
            node_nm=45.0, partition=cache.partition_cap, simplification=1
        )
        assert cache.structural_key(huge) == cache.structural_key(capped)
        assert cache.structural_key(small) != cache.structural_key(huge)

    def test_structural_key_ignores_energy_knobs(self, kernel):
        # Below the pipeline knee, simplification is energy-only; nodes
        # only matter through the fusion window.
        cache = ScheduleCache(kernel, ResourceLibrary())
        a = DesignPoint(node_nm=45.0, partition=16, simplification=1)
        b = DesignPoint(node_nm=45.0, partition=16, simplification=5)
        assert cache.structural_key(a) == cache.structural_key(b)

    def test_memo_accounting_covers_every_point(self, kernel, grid):
        evaluator = BatchEvaluator(kernel)
        result = evaluator.evaluate(grid)
        cache = evaluator.cache
        assert cache.memo_hits + cache.memo_misses == len(grid)
        assert cache.memo_misses == result.structures

    def test_repeat_call_accounting_and_equality(self, kernel, grid):
        evaluator = BatchEvaluator(kernel)
        first = evaluator.evaluate(grid).reports()
        cache = evaluator.cache
        looked = cache.memo_hits + cache.memo_misses
        again = evaluator.evaluate(grid[:7]).reports()
        assert again == first[:7]
        # Every point of the repeat call coalesced onto resolved structures.
        assert cache.memo_hits + cache.memo_misses == looked + 7

    def test_record_coalesced_counts_hits(self, kernel):
        cache = ScheduleCache(kernel, ResourceLibrary())
        cache.record_coalesced(5)
        assert cache.memo_hits == 5
        cache.record_coalesced(0)
        cache.record_coalesced(-3)
        assert cache.memo_hits == 5


class TestMacroGraph:
    @pytest.mark.parametrize("window", [1, 2, 4])
    @pytest.mark.parametrize("partition", [1, 2, 7, 64, 4096])
    @pytest.mark.parametrize("extra", [0, 4])
    def test_matches_list_scheduler(self, kernel, window, partition, extra):
        lib = ResourceLibrary()
        fast = MacroGraph(kernel.dfg, lib, window).schedule(partition, extra)
        reference = run_schedule(
            kernel.dfg,
            partition=partition,
            library=lib,
            fusion_window=window,
            latency_extra=extra,
        )
        assert fast == reference

    def test_saturation_boundary(self, kernel):
        # Partitions straddling the saturation point (where the event loop
        # hands over to the critical-path shortcut) must agree with the
        # scheduler on both sides.
        lib = ResourceLibrary()
        graph = MacroGraph(kernel.dfg, lib, 2)
        for partition in (
            max(1, graph.saturation - 1),
            graph.saturation,
            graph.saturation + 1,
        ):
            assert graph.schedule(partition) == run_schedule(
                kernel.dfg, partition=partition, library=lib, fusion_window=2
            )

    def test_rejects_bad_partition(self, kernel):
        graph = MacroGraph(kernel.dfg, ResourceLibrary(), 2)
        with pytest.raises(ValueError):
            graph.schedule(0)


class TestCacheIntegration:
    def test_shared_cache_with_scalar_path(self, kernel, grid):
        # A cache warmed by the scalar path serves the batch path and
        # vice versa: same structural keys, same schedules.
        lib = ResourceLibrary()
        cache = ScheduleCache(kernel, lib)
        scalar = tuple(
            evaluate_design(kernel, d, lib, precomputed=cache.get(d))
            for d in grid
        )
        evaluator = BatchEvaluator(kernel, cache=cache)
        assert evaluator.evaluate(grid).reports() == scalar
        # Every batch point was a memo hit on the warmed cache.
        assert cache.memo_misses == len(
            {cache.structural_key(d) for d in grid}
        )

    def test_warm_store_round_trip(self, tmp_path, kernel, grid):
        lib = ResourceLibrary()
        cold_cache = ScheduleCache(kernel, lib, store=ScheduleStore(tmp_path))
        cold = BatchEvaluator(kernel, cache=cold_cache).evaluate(grid)
        assert cold_cache.store.writes > 0

        warm_cache = ScheduleCache(kernel, lib, store=ScheduleStore(tmp_path))
        warm = BatchEvaluator(kernel, cache=warm_cache).evaluate(grid)
        assert warm.reports() == cold.reports()
        assert warm_cache.store.hits == warm.structures
        assert warm_cache.schedule_s == 0.0  # every schedule came from disk

    def test_store_fingerprints_computed_once_per_miss(self, tmp_path, kernel):
        cache = ScheduleCache(kernel, ResourceLibrary(), store=ScheduleStore(tmp_path))
        calls = []
        original = type(cache)._store_fingerprints

        def counting(self):
            calls.append(1)
            return original(self)

        type(cache)._store_fingerprints = counting
        try:
            cache.get(DesignPoint(node_nm=45.0, partition=4, simplification=1))
        finally:
            type(cache)._store_fingerprints = original
        # One invocation covers both the store lookup and the store put of
        # the same miss.
        assert len(calls) == 1

    def test_library_conflict_rejected(self, kernel):
        cache = ScheduleCache(kernel, ResourceLibrary())
        with pytest.raises(ValueError, match="library"):
            BatchEvaluator(kernel, library=ResourceLibrary(), cache=cache)


# -- hypothesis: random DFGs x random grids -----------------------------------

OPS = ["add", "mul", "sub", "div", "exp", "min"]


@st.composite
def random_kernel(draw):
    """A random traced kernel: layered DAG construction keeps it acyclic."""
    n_inputs = draw(st.integers(min_value=1, max_value=3))
    n_compute = draw(st.integers(min_value=1, max_value=14))
    g = Dfg("random")
    available = [g.add_input(f"in{i}") for i in range(n_inputs)]
    for _ in range(n_compute):
        n_operands = draw(
            st.integers(min_value=1, max_value=min(3, len(available)))
        )
        operands = draw(
            st.lists(
                st.sampled_from(available),
                min_size=n_operands,
                max_size=n_operands,
                unique=True,
            )
        )
        available.append(g.add_compute(draw(st.sampled_from(OPS)), operands))
    for nid in list(g.node_ids()):
        node = g.node(nid)
        if node.kind is NodeKind.COMPUTE and not g.successors(nid):
            g.add_output(nid)
    g = dead_code_eliminate(g)
    reads = draw(st.integers(min_value=0, max_value=64))
    writes = draw(st.integers(min_value=0, max_value=64))
    return TracedKernel(
        name=g.name, dfg=g, memory_reads=reads, memory_writes=writes
    )


@st.composite
def random_grid(draw):
    designs = draw(
        st.lists(
            st.builds(
                DesignPoint,
                node_nm=st.sampled_from([45.0, 22.0, 10.0, 5.0]),
                partition=st.sampled_from([1, 2, 8, 64, 4096, 524288]),
                simplification=st.integers(min_value=1, max_value=13),
                heterogeneity=st.booleans(),
            ),
            min_size=1,
            max_size=24,
        )
    )
    return designs


@given(kernel=random_kernel(), designs=random_grid())
@settings(max_examples=60, deadline=None)
def test_batch_matches_scalar_on_random_inputs(kernel, designs):
    lib = ResourceLibrary()
    cache = ScheduleCache(kernel, lib)
    scalar = tuple(
        evaluate_design(kernel, d, lib, precomputed=cache.get(d))
        for d in designs
    )
    assert BatchEvaluator(kernel).evaluate(designs).reports() == scalar


@given(kernel=random_kernel())
@settings(max_examples=40, deadline=None)
def test_macro_graph_matches_scheduler_on_random_dfgs(kernel):
    lib = ResourceLibrary()
    for window in (1, 3):
        graph = MacroGraph(kernel.dfg, lib, window)
        for partition in (1, 2, graph.saturation, 4096):
            for extra in (0, 2):
                assert graph.schedule(partition, extra) == run_schedule(
                    kernel.dfg,
                    partition=partition,
                    library=lib,
                    fusion_window=window,
                    latency_extra=extra,
                )


class TestEngineVectorization:
    def test_scalar_oracle_flag_matches(self, kernel, grid):
        from repro.accel.engine import SweepEngine

        vectorized = SweepEngine(jobs=1, use_cache=False).sweep(kernel, grid)
        oracle = SweepEngine(jobs=1, use_cache=False, vectorize=False).sweep(
            kernel, grid
        )
        assert vectorized.reports == oracle.reports

    def test_parallel_vectorized_matches_serial(self, grid):
        from repro.accel.engine import SweepEngine

        kernel = s3d.build()
        serial = SweepEngine(jobs=1, use_cache=False).sweep(kernel, grid)
        parallel = SweepEngine(jobs=2, use_cache=False).sweep(kernel, grid)
        assert parallel.reports == serial.reports
        stats = parallel.stats
        assert stats.memo_hits + stats.memo_misses == len(grid)

    def test_provenance_records_vectorize(self):
        from repro.accel.engine import SweepEngine

        assert SweepEngine(jobs=1).provenance()["vectorize"] is True
        assert (
            SweepEngine(jobs=1, vectorize=False).provenance()["vectorize"]
            is False
        )
