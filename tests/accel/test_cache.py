"""Tests for the persistent content-addressed DSE cache.

Covers the raw :class:`DiskCache` (round trip, staleness, corruption), the
schedule/trace stores, the fingerprint functions, and the acceptance
property that a warm rerun of a sweep is served from disk with identical
results.
"""

import pickle
import warnings

import pytest

from repro.accel.cache import (
    ENV_CACHE_DIR,
    DiskCache,
    KernelTraceStore,
    ScheduleStore,
    default_cache_dir,
    dfg_fingerprint,
    kernel_fingerprint,
    library_fingerprint,
    resolve_cache_dir,
)
from repro.accel.engine import SweepEngine
from repro.accel.resources import ResourceLibrary
from repro.accel.sweep import ScheduleCache, default_design_grid, sweep
from repro.workloads import WORKLOADS, s3d, trd

GRID = dict(
    nodes=(45.0, 5.0),
    partitions=(1, 4, 16),
    simplifications=(1, 5, 13),
)


@pytest.fixture(scope="module")
def kernel():
    return trd.build(n=16)


class TestCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        assert resolve_cache_dir() == tmp_path / "env-cache"

    def test_explicit_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env-cache"))
        assert resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert default_cache_dir().name == "accelerator-wall"


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)

    def test_sharded_layout(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "cafe" + "0" * 60
        assert cache.path_for(key) == tmp_path / "ca" / f"{key}.pkl"

    def test_version_mismatch_is_miss_and_discards(self, tmp_path):
        key = "ab" + "0" * 62
        DiskCache(tmp_path, version=1).put(key, "old")
        newer = DiskCache(tmp_path, version=2)
        assert newer.get(key) is None
        assert newer.misses == 1
        assert not newer.path_for(key).exists()  # stale entry pruned

    def test_corrupted_entry_is_miss_and_discards(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, "good")
        path = cache.path_for(key)
        path.write_bytes(b"\x80\x04 not a pickle")
        assert cache.get(key) is None
        assert not path.exists()
        # And a recompute can repopulate the slot.
        cache.put(key, "recomputed")
        assert cache.get(key) == "recomputed"

    def test_malformed_entry_shape_is_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        with open(path, "wb") as handle:
            pickle.dump(["no", "version", "tuple"], handle)
        assert cache.get(key) is None

    def test_put_into_unwritable_directory_is_silent_noop(self, tmp_path):
        # The "cache dir" is actually a file: every mkdir/mkstemp under it
        # fails with OSError, the same failure family as a read-only dir
        # (which root processes would bypass in CI containers).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = DiskCache(blocker / "cache")
        key = "ab" + "0" * 62
        cache.put(key, "value")  # must not raise: caching is best-effort
        assert cache.writes == 0
        assert cache.get(key) is None  # degrades to a miss, not an error
        assert blocker.read_text() == "not a directory"

    def test_readonly_directory_put_is_silent_noop(self, tmp_path):
        import os

        if os.geteuid() == 0:
            pytest.skip("root bypasses file permissions")
        ro_dir = tmp_path / "ro"
        ro_dir.mkdir()
        os.chmod(ro_dir, 0o500)
        try:
            cache = DiskCache(ro_dir)
            key = "ab" + "0" * 62
            cache.put(key, "value")
            assert cache.writes == 0
            assert cache.get(key) is None
        finally:
            os.chmod(ro_dir, 0o700)

    def test_unpicklable_value_is_dropped_not_raised(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        unpicklable = lambda: None  # noqa: E731 - locals cannot be pickled
        cache.put(key, unpicklable)  # must not raise: caching is best-effort
        # The atomic-write temp file must not leak, and no partial entry
        # may be visible under the key.
        assert list(tmp_path.rglob("*.tmp")) == []
        assert cache.get(key) is None
        assert cache.writes == 0
        assert cache.drops == 1
        # The slot still works for a well-behaved value afterwards.
        cache.put(key, "recovered")
        assert cache.get(key) == "recovered"

    def test_reduce_raising_value_is_dropped_not_raised(self, tmp_path):
        # Values whose __reduce__ raises produce arbitrary exception types
        # (not just PicklingError); none may escape the best-effort put.
        class Hostile:
            def __reduce__(self):
                raise RuntimeError("refuses to pickle")

        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, Hostile())
        assert cache.drops == 1
        assert cache.writes == 0
        assert list(tmp_path.rglob("*.tmp")) == []
        assert cache.get(key) is None
        cache.put(key, "recovered")
        assert cache.get(key) == "recovered"

    def test_keyboard_interrupt_during_put_still_propagates(self, tmp_path):
        class Impatient:
            def __reduce__(self):
                raise KeyboardInterrupt

        cache = DiskCache(tmp_path)
        key = "ab" + "0" * 62
        with pytest.raises(KeyboardInterrupt):
            cache.put(key, Impatient())
        # Even then the temp file is discarded.
        assert list(tmp_path.rglob("*.tmp")) == []
        assert cache.drops == 0

    def test_store_wrappers_surface_drops(self, tmp_path):
        store = ScheduleStore(tmp_path)
        store._disk.put("ab" + "0" * 62, lambda: None)
        assert store.drops == 1
        traces = KernelTraceStore(tmp_path)
        assert traces.drops == 0


class TestFingerprints:
    def test_stable_across_retrace(self):
        assert kernel_fingerprint(trd.build(n=16)) == kernel_fingerprint(
            trd.build(n=16)
        )

    def test_input_seed_changes_fingerprint(self):
        assert kernel_fingerprint(trd.build(n=16)) != kernel_fingerprint(
            trd.build(n=32)
        )

    def test_distinct_kernels_distinct_fingerprints(self):
        fps = {kernel_fingerprint(w.build()) for w in WORKLOADS}
        assert len(fps) == len(WORKLOADS)

    def test_dfg_fingerprint_is_structural(self, kernel):
        assert dfg_fingerprint(kernel.dfg) == dfg_fingerprint(
            trd.build(n=16).dfg
        )

    def test_library_fingerprint_stable(self):
        assert library_fingerprint(ResourceLibrary()) == library_fingerprint(
            ResourceLibrary()
        )


class TestScheduleStore:
    def test_round_trip_via_schedule_cache(self, tmp_path, kernel):
        library = ResourceLibrary()
        design = default_design_grid(**GRID)[0]

        cold = ScheduleCache(kernel, library, store=ScheduleStore(tmp_path))
        first = cold.get(design)
        assert cold.store.misses == 1 and cold.store.writes == 1

        warm = ScheduleCache(kernel, library, store=ScheduleStore(tmp_path))
        second = warm.get(design)
        assert warm.store.hits == 1
        assert second.cycles == first.cycles
        assert second.op_counts == first.op_counts

    def test_counters_surface_store_activity(self, tmp_path, kernel):
        cache = ScheduleCache(
            kernel, ResourceLibrary(), store=ScheduleStore(tmp_path)
        )
        cache.get(default_design_grid(**GRID)[0])
        counters = cache.counters()
        assert counters["cache_misses"] == 1
        assert counters["memo_misses"] == 1


class TestKernelTraceStore:
    def test_round_trip(self, tmp_path):
        store = KernelTraceStore(tmp_path)
        assert store.get("TRD", n=16) is None
        kernel = trd.build(n=16)
        store.put("TRD", kernel, n=16)
        cached = store.get("TRD", n=16)
        assert cached is not None
        assert kernel_fingerprint(cached) == kernel_fingerprint(kernel)

    def test_build_kwargs_distinguish_entries(self, tmp_path):
        store = KernelTraceStore(tmp_path)
        store.put("TRD", trd.build(n=16), n=16)
        assert store.get("TRD", n=32) is None

    def test_engine_trace_uses_store(self, tmp_path):
        engine = SweepEngine(jobs=1, cache_dir=tmp_path)
        workload = next(w for w in WORKLOADS if w.abbrev == "S3D")
        first = engine.trace(workload)
        second = engine.trace(workload)
        assert kernel_fingerprint(first) == kernel_fingerprint(second)
        assert any((tmp_path / "traces").rglob("*.pkl"))


class TestWarmSweep:
    def test_cold_equals_warm_with_hits(self, tmp_path, kernel):
        grid = default_design_grid(**GRID)
        cold = SweepEngine(jobs=1, cache_dir=tmp_path).sweep(kernel, grid)
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses > 0

        warm = SweepEngine(jobs=1, cache_dir=tmp_path).sweep(kernel, grid)
        assert warm.reports == cold.reports
        assert warm.stats.cache_hits > 0
        assert warm.stats.hit_rate == 1.0
        assert warm.stats.schedule_s == 0.0  # every schedule came from disk

    def test_cache_matches_uncached_results(self, tmp_path, kernel):
        grid = default_design_grid(**GRID)
        cached = SweepEngine(jobs=1, cache_dir=tmp_path).sweep(kernel, grid)
        assert cached.reports == sweep(kernel, grid).reports

    def test_parallel_warm_reuses_serial_cache(self, tmp_path):
        kernel = s3d.build()
        grid = default_design_grid(**GRID)
        cold = SweepEngine(jobs=1, cache_dir=tmp_path).sweep(kernel, grid)
        warm = SweepEngine(jobs=2, cache_dir=tmp_path).sweep(kernel, grid)
        assert warm.reports == cold.reports
        assert warm.stats.cache_hits > 0

    def test_corrupted_store_recomputes(self, tmp_path, kernel):
        grid = default_design_grid(**GRID)
        reference = SweepEngine(jobs=1, cache_dir=tmp_path).sweep(kernel, grid)
        for path in (tmp_path / "schedules").rglob("*.pkl"):
            path.write_bytes(b"garbage")
        again = SweepEngine(jobs=1, cache_dir=tmp_path).sweep(kernel, grid)
        assert again.reports == reference.reports
        assert again.stats.cache_hits == 0


class TestDeprecatedAlias:
    def test_underscore_name_warns_but_works(self, kernel):
        from repro.accel.sweep import _ScheduleCache

        with pytest.warns(DeprecationWarning):
            cache = _ScheduleCache(kernel, ResourceLibrary())
        design = default_design_grid(**GRID)[0]
        reference = ScheduleCache(kernel, ResourceLibrary())
        assert cache.get(design).cycles == reference.get(design).cycles

    def test_public_name_does_not_warn(self, kernel):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ScheduleCache(kernel, ResourceLibrary())
