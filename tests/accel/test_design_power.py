"""Unit tests for design points and the power model."""

import pytest

from repro.accel.design import (
    MAX_PARTITION_FACTOR,
    DesignPoint,
    baseline_design,
)
from repro.accel.power import evaluate_design
from repro.accel.resources import ResourceLibrary
from repro.errors import InvalidDesignPointError
from repro.workloads import trd


@pytest.fixture(scope="module")
def kernel():
    return trd.build(n=16)


@pytest.fixture(scope="module")
def lib():
    return ResourceLibrary()


class TestDesignPoint:
    def test_defaults(self):
        d = DesignPoint(node_nm=45)
        assert d.partition == 1 and d.simplification == 1 and d.heterogeneity

    def test_node_parsed(self):
        assert DesignPoint(node_nm="28nm").node_nm == 28.0

    def test_partition_must_be_power_of_two(self):
        with pytest.raises(InvalidDesignPointError):
            DesignPoint(node_nm=45, partition=3)

    def test_partition_range(self):
        DesignPoint(node_nm=45, partition=MAX_PARTITION_FACTOR)
        with pytest.raises(InvalidDesignPointError):
            DesignPoint(node_nm=45, partition=MAX_PARTITION_FACTOR * 2)

    def test_simplification_range(self):
        with pytest.raises(InvalidDesignPointError):
            DesignPoint(node_nm=45, simplification=14)
        with pytest.raises(InvalidDesignPointError):
            DesignPoint(node_nm=45, simplification=0)

    def test_with_helpers(self):
        d = DesignPoint(node_nm=45, partition=4, simplification=3)
        assert d.with_node(5).node_nm == 5.0
        assert d.with_partition(8).partition == 8
        assert d.with_simplification(1).simplification == 1
        assert not d.without_heterogeneity().heterogeneity

    def test_baseline_design(self):
        base = baseline_design()
        assert base.partition == 1
        assert base.simplification == 1
        assert not base.heterogeneity

    def test_describe(self):
        d = DesignPoint(node_nm=7, partition=16, simplification=5)
        assert d.describe() == "7nm/P16/S5+hetero"


class TestPowerReport:
    def test_energy_identity(self, kernel, lib):
        report = evaluate_design(kernel, DesignPoint(node_nm=45), lib)
        assert report.energy_nj == pytest.approx(
            report.dynamic_energy_nj + report.leakage_energy_nj
        )

    def test_power_is_energy_over_time(self, kernel, lib):
        report = evaluate_design(kernel, DesignPoint(node_nm=45), lib)
        assert report.power_w == pytest.approx(
            report.energy_nj * 1e-9 / report.runtime_s
        )

    def test_runtime_from_cycles_and_clock(self, kernel, lib):
        report = evaluate_design(kernel, DesignPoint(node_nm=45), lib)
        assert report.runtime_s == pytest.approx(
            report.cycles / (report.clock_mhz * 1e6)
        )

    def test_throughput_and_efficiency(self, kernel, lib):
        report = evaluate_design(kernel, DesignPoint(node_nm=45), lib)
        assert report.throughput_ops == pytest.approx(
            report.total_ops / report.runtime_s
        )
        assert report.energy_efficiency == pytest.approx(
            report.total_ops / (report.energy_nj * 1e-9)
        )

    def test_newer_node_is_faster_and_leaner(self, kernel, lib):
        old = evaluate_design(kernel, DesignPoint(node_nm=45, partition=4), lib)
        new = evaluate_design(kernel, DesignPoint(node_nm=5, partition=4), lib)
        assert new.runtime_s < old.runtime_s
        assert new.dynamic_energy_nj < old.dynamic_energy_nj

    def test_partitioning_improves_runtime(self, kernel, lib):
        p1 = evaluate_design(kernel, DesignPoint(node_nm=45, partition=1), lib)
        p16 = evaluate_design(kernel, DesignPoint(node_nm=45, partition=16), lib)
        assert p16.runtime_s < p1.runtime_s

    def test_simplification_saves_energy_not_runtime(self, kernel, lib):
        s1 = evaluate_design(
            kernel, DesignPoint(node_nm=45, partition=4, simplification=1), lib
        )
        s8 = evaluate_design(
            kernel, DesignPoint(node_nm=45, partition=4, simplification=8), lib
        )
        assert s8.dynamic_energy_nj < s1.dynamic_energy_nj
        assert s8.runtime_s == pytest.approx(s1.runtime_s)

    def test_extreme_simplification_hurts_runtime(self, kernel, lib):
        s9 = evaluate_design(
            kernel, DesignPoint(node_nm=45, partition=4, simplification=9), lib
        )
        s13 = evaluate_design(
            kernel, DesignPoint(node_nm=45, partition=4, simplification=13), lib
        )
        assert s13.runtime_s > s9.runtime_s

    def test_memory_accesses_charged(self, lib):
        # Two kernels with identical DFGs but different re-read counts must
        # differ in dynamic energy.
        from repro.accel.trace import Tracer

        def build(rereads):
            t = Tracer("m")
            arr = t.array("x", [1.0, 2.0])
            for _ in range(rereads):
                arr.read(0)
            t.output(arr.read(0) + arr.read(1))
            return t.kernel()

        few = evaluate_design(build(0), DesignPoint(node_nm=45), lib)
        many = evaluate_design(build(50), DesignPoint(node_nm=45), lib)
        assert many.dynamic_energy_nj > few.dynamic_energy_nj

    def test_default_library_created_when_missing(self, kernel):
        report = evaluate_design(kernel, DesignPoint(node_nm=45))
        assert report.cycles > 0
