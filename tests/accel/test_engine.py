"""Tests for the parallel sweep engine and incremental Pareto frontier.

The engine's core contract is equivalence: any ``jobs`` count and any cache
state must produce results bit-identical to the plain serial sweep, and the
streaming :class:`ParetoAccumulator` must agree with the batch reference
:func:`pareto_points` on every input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.attribution import attribute_all, attribute_gains
from repro.accel.engine import SweepEngine, resolve_jobs
from repro.accel.resources import ResourceLibrary
from repro.accel.sweep import (
    ParetoAccumulator,
    ScheduleCache,
    SweepStats,
    default_design_grid,
    pareto_points,
    sweep,
)
from repro.errors import ValidationError
from repro.workloads import s3d, trd

GRID = dict(
    nodes=(45.0, 14.0, 5.0),
    partitions=(1, 4, 16, 64),
    simplifications=(1, 5, 9, 13),
)
SMALL = dict(partitions=(1, 8), simplifications=(1, 5))


@pytest.fixture(scope="module")
def kernel():
    return trd.build(n=16)


@pytest.fixture(scope="module")
def grid():
    return default_design_grid(**GRID)


@pytest.fixture(scope="module")
def serial(kernel, grid):
    return sweep(kernel, grid)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("jobs", [None, 0, -1])
    def test_all_cores(self, jobs):
        assert resolve_jobs(jobs) >= 1


class TestSweepEquivalence:
    def test_engine_serial_matches_plain_sweep(self, kernel, grid, serial):
        result = SweepEngine(jobs=1, use_cache=False).sweep(kernel, grid)
        assert result.reports == serial.reports

    def test_parallel_matches_serial_bit_identical(self, kernel, grid, serial):
        result = SweepEngine(jobs=2, use_cache=False).sweep(kernel, grid)
        assert result.reports == serial.reports
        assert result == serial  # stats excluded from equality

    def test_sweep_jobs_kwarg_routes_through_engine(self, kernel, grid, serial):
        result = sweep(kernel, grid, jobs=2, use_cache=False)
        assert result.reports == serial.reports
        assert result.stats.jobs == 2

    def test_parallel_stats_populated(self, kernel, grid):
        engine = SweepEngine(jobs=2, use_cache=False)
        result = engine.sweep(kernel, grid)
        stats = result.stats
        assert stats.design_points == len(grid)
        assert stats.jobs == 2
        assert stats.chunks > 1
        assert stats.elapsed_s > 0
        assert stats.memo_hits + stats.memo_misses == len(grid)
        assert engine.last_stats is stats
        assert engine.stats.design_points == len(grid)

    def test_streamed_frontier_matches_batch(self, kernel, grid, serial):
        result = SweepEngine(jobs=2, use_cache=False).sweep(kernel, grid)
        assert result.pareto_frontier() == serial.pareto_frontier()
        reference = pareto_points(serial.runtime_power_points())
        assert [p for _, _, p in reference] == result.pareto_frontier()

    def test_sweep_many_matches_individual(self, grid):
        kernels = [trd.build(n=16), s3d.build()]
        engine = SweepEngine(jobs=2, use_cache=False)
        results = engine.sweep_many(kernels, grid)
        assert [r.kernel for r in results] == [k.name for k in kernels]
        for kernel, result in zip(kernels, results):
            assert result.reports == sweep(kernel, grid).reports


class TestAttributionEquivalence:
    def test_parallel_matches_serial(self):
        kernels = [trd.build(n=16), s3d.build()]
        serial = [attribute_gains(k, **SMALL) for k in kernels]
        engine = SweepEngine(jobs=2, use_cache=False)
        parallel = engine.attribute_all(kernels, **SMALL)
        assert parallel == serial
        stats = engine.last_stats
        assert stats.design_points > 0
        assert stats.chunks == len(kernels)

    def test_attribute_all_jobs_kwarg(self):
        kernels = [trd.build(n=16)]
        assert attribute_all(kernels, jobs=2, use_cache=False, **SMALL) == [
            attribute_gains(kernels[0], **SMALL)
        ]

    def test_engine_attribute_single(self):
        kernel = trd.build(n=16)
        engine = SweepEngine(jobs=1, use_cache=False)
        assert engine.attribute(kernel, **SMALL) == attribute_gains(
            kernel, **SMALL
        )


class TestStatsAccounting:
    """Regressions for the jobs/elapsed accounting bugs.

    ``jobs`` must report the workers *actually used* (serial fallbacks
    report 1), ``elapsed_s`` is always the wall time of the operation,
    and every public entry point records exactly once.
    """

    def test_single_point_grid_reports_serial_jobs(self, kernel, grid):
        engine = SweepEngine(jobs=4, use_cache=False)
        result = engine.sweep(kernel, grid[:1])
        assert result.stats.jobs == 1  # serial fallback, not self.jobs
        assert result.stats.chunks == 1

    def test_empty_grid_reports_serial_jobs(self, kernel):
        engine = SweepEngine(jobs=4, use_cache=False)
        result = engine.sweep(kernel, [])
        assert result.stats.jobs == 1
        assert result.stats.design_points == 0

    def test_parallel_uses_at_most_chunk_count_workers(self, kernel, grid):
        # More workers than chunks: report what was actually spawned.
        engine = SweepEngine(jobs=64, use_cache=False, chunk_size=len(grid))
        result = engine.sweep(kernel, grid)
        assert result.stats.chunks == 1
        assert result.stats.jobs == 1

    def test_sweep_many_serial_records_once(self, grid):
        kernels = [trd.build(n=16), s3d.build()]
        engine = SweepEngine(jobs=1, use_cache=False)
        results = engine.sweep_many(kernels, grid)
        stats = engine.last_stats
        assert stats is not None
        assert stats.jobs == 1  # serial path: one worker actually used
        # One recorded operation covering all kernels, not one per kernel.
        assert engine.stats.design_points == len(grid) * len(kernels)
        assert stats.design_points == len(grid) * len(kernels)
        # Wall-clock elapsed: the whole run, bounded below by any child.
        assert stats.elapsed_s >= max(r.stats.elapsed_s for r in results)

    def test_sweep_many_parallel_reports_workers_used(self, grid):
        kernels = [trd.build(n=16), s3d.build()]
        engine = SweepEngine(jobs=8, use_cache=False)
        engine.sweep_many(kernels, grid)
        assert engine.last_stats.jobs == 2  # min(jobs, kernels)

    def test_attribute_all_serial_reports_one_job(self):
        kernels = [trd.build(n=16), s3d.build()]
        engine = SweepEngine(jobs=1, use_cache=False)
        engine.attribute_all(kernels, **SMALL)
        assert engine.last_stats.jobs == 1

    def test_attribute_all_parallel_reports_workers_used(self):
        kernels = [trd.build(n=16), s3d.build()]
        engine = SweepEngine(jobs=8, use_cache=False)
        engine.attribute_all(kernels, **SMALL)
        assert engine.last_stats.jobs == 2  # min(jobs, kernels)


class TestInjectedCacheGuard:
    def test_sweep_rejects_cache_with_jobs(self, kernel, grid):
        cache = ScheduleCache(kernel, ResourceLibrary())
        with pytest.raises(ValidationError, match="silently ignored"):
            sweep(kernel, grid, cache=cache, jobs=2)

    def test_sweep_rejects_cache_with_cache_dir(self, kernel, grid, tmp_path):
        cache = ScheduleCache(kernel, ResourceLibrary())
        with pytest.raises(ValidationError):
            sweep(kernel, grid, cache=cache, cache_dir=tmp_path)

    def test_sweep_rejects_cache_with_use_cache(self, kernel, grid):
        cache = ScheduleCache(kernel, ResourceLibrary())
        with pytest.raises(ValidationError):
            sweep(kernel, grid, cache=cache, use_cache=True)

    def test_sweep_accepts_cache_serial_uncached(self, kernel, serial):
        cache = ScheduleCache(kernel, ResourceLibrary())
        result = sweep(kernel, default_design_grid(**GRID), cache=cache)
        assert result.reports == serial.reports
        # The injected cache was actually consulted.
        assert cache.memo_hits + cache.memo_misses > 0


class TestSweepStats:
    def test_merge_accumulates(self):
        a = SweepStats(design_points=2, chunks=1, cache_hits=1, cache_misses=1)
        b = SweepStats(design_points=3, chunks=2, cache_hits=3, cache_misses=0)
        a.merge(b)
        assert a.design_points == 5
        assert a.chunks == 3
        assert a.hit_rate == pytest.approx(0.8)

    def test_hit_rate_zero_when_cache_off(self):
        assert SweepStats().hit_rate == 0.0
        assert SweepStats().memo_hit_rate == 0.0

    def test_describe_mentions_key_numbers(self):
        text = SweepStats(design_points=7, jobs=2, cache_hits=5).describe()
        assert "7 design points" in text
        assert "jobs=2" in text


# A coordinate pool with deliberate collisions, so equal-x and equal-point
# ties are exercised, mixed with arbitrary floats.
coord = st.one_of(
    st.sampled_from([0.0, 1.0, 2.0, 3.0]),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


class TestParetoAccumulator:
    def test_dominated_insert_rejected(self):
        acc = ParetoAccumulator()
        assert acc.add(1.0, 1.0, "a")
        assert not acc.add(2.0, 2.0, "b")
        assert acc.payloads() == ["a"]

    def test_insert_evicts_dominated(self):
        acc = ParetoAccumulator()
        acc.add(2.0, 2.0, "old")
        assert acc.add(1.0, 1.0, "new")
        assert acc.payloads() == ["new"]

    def test_equal_point_keeps_first(self):
        acc = ParetoAccumulator()
        acc.add(1.0, 1.0, "first")
        assert not acc.add(1.0, 1.0, "second")
        assert acc.payloads() == ["first"]

    def test_tradeoff_points_coexist(self):
        acc = ParetoAccumulator()
        acc.add(1.0, 5.0, "fast")
        acc.add(5.0, 1.0, "frugal")
        assert len(acc) == 2
        assert acc.frontier() == [(1.0, 5.0, "fast"), (5.0, 1.0, "frugal")]

    def test_extend_matches_add(self):
        points = [(3.0, 1.0, "a"), (1.0, 3.0, "b"), (2.0, 2.0, "c")]
        acc = ParetoAccumulator()
        acc.extend(points)
        assert acc.frontier() == pareto_points(points)

    @given(st.lists(st.tuples(coord, coord)))
    @settings(max_examples=300, deadline=None)
    def test_equivalent_to_batch_reference(self, raw):
        points = [(x, y, i) for i, (x, y) in enumerate(raw)]
        acc = ParetoAccumulator()
        for point in points:
            acc.add(*point)
        assert acc.frontier() == pareto_points(points)
