"""Unit tests for the resource library."""

import pytest

from repro.accel.resources import (
    BASE_CLOCK_MHZ,
    PIPELINE_KNEE,
    OpClass,
    ResourceLibrary,
    op_class,
)
from repro.errors import InvalidDesignPointError


@pytest.fixture(scope="module")
def lib():
    return ResourceLibrary()


class TestOpClasses:
    def test_arithmetic_mapping(self):
        assert op_class("add") is OpClass.ALU
        assert op_class("mul") is OpClass.MULTIPLIER
        assert op_class("div") is OpClass.DIVIDER
        assert op_class("sqrt") is OpClass.DIVIDER
        assert op_class("sigmoid") is OpClass.SPECIAL
        assert op_class("load") is OpClass.MEMORY
        assert op_class("store") is OpClass.MEMORY
        assert op_class("fused") is OpClass.ALU

    def test_unknown_op_rejected(self):
        with pytest.raises(InvalidDesignPointError):
            op_class("teleport")

    def test_costs_ordering(self, lib):
        # Dividers are slower and hungrier than multipliers than ALUs.
        alu = lib.costs(OpClass.ALU)
        mul = lib.costs(OpClass.MULTIPLIER)
        div = lib.costs(OpClass.DIVIDER)
        assert alu.latency_cycles < mul.latency_cycles < div.latency_cycles
        assert alu.energy_nj < mul.energy_nj < div.energy_nj


class TestNodeScaling:
    def test_clock_at_reference(self, lib):
        assert lib.clock_mhz(45) == pytest.approx(BASE_CLOCK_MHZ)

    def test_clock_faster_at_newer_nodes(self, lib):
        assert lib.clock_mhz(5) > lib.clock_mhz(45) > lib.clock_mhz(180)

    def test_energy_scale_improves_with_node(self, lib):
        assert lib.energy_scale(5, 1) < lib.energy_scale(45, 1)

    def test_leakage_scale_improves_with_node(self, lib):
        assert lib.leakage_scale(5, 1) < lib.leakage_scale(45, 1)

    def test_op_energy_combines_class_and_node(self, lib):
        alu_45 = lib.op_energy_nj("add", 45, 1)
        alu_5 = lib.op_energy_nj("add", 5, 1)
        assert alu_5 < alu_45
        assert lib.op_energy_nj("div", 45, 1) > alu_45


class TestSimplification:
    def test_energy_decreases_with_degree(self, lib):
        values = [lib.energy_scale(45, s) for s in range(1, 14)]
        assert values == sorted(values, reverse=True)

    def test_energy_saving_floors(self, lib):
        # The floor prevents unbounded savings at extreme degrees.
        assert lib.energy_scale(45, 13) >= 0.3 * lib.energy_scale(45, 1) * 0.9

    def test_leakage_decreases_with_degree(self, lib):
        assert lib.leakage_scale(45, 9) < lib.leakage_scale(45, 1)

    def test_latency_extra_zero_before_knee(self, lib):
        for degree in range(1, PIPELINE_KNEE + 1):
            assert lib.latency_extra(degree) == 0

    def test_latency_extra_grows_after_knee(self, lib):
        assert lib.latency_extra(PIPELINE_KNEE + 1) == 1
        assert lib.latency_extra(13) == 13 - PIPELINE_KNEE


class TestFusionWindow:
    def test_disabled_heterogeneity_gives_window_one(self, lib):
        assert lib.fusion_window(5, heterogeneity=False) == 1

    def test_window_grows_with_node_speed(self, lib):
        assert lib.fusion_window(5, True) > lib.fusion_window(45, True) >= 1

    def test_window_at_reference(self, lib):
        assert lib.fusion_window(45, True) == 2
