"""Unit tests for the resource-constrained list scheduler."""

import pytest

from repro.accel.resources import OpClass, ResourceLibrary
from repro.accel.scheduler import _fuse_chains, schedule
from repro.accel.trace import Tracer
from repro.dfg.graph import Dfg


@pytest.fixture(scope="module")
def lib():
    return ResourceLibrary()


def wide_kernel(n=16):
    """n independent adds: fully parallel."""
    t = Tracer("wide")
    arr = t.array("x", [float(i) for i in range(n)])
    one = t.const(1.0)
    for i in range(n):
        t.output(arr.read(i) + one)
    return t.kernel()


def chain_kernel(n=16):
    """n dependent adds: fully serial."""
    t = Tracer("chain")
    acc = t.input("x", 0.0)
    one = t.const(1.0)
    for _ in range(n):
        acc = acc + one
    t.output(acc)
    return t.kernel()


class TestResourceConstraints:
    def test_more_units_never_slower(self, lib):
        kernel = wide_kernel()
        cycles = [
            schedule(kernel.dfg, partition=p, library=lib).cycles
            for p in (1, 2, 4, 8, 16)
        ]
        assert cycles == sorted(cycles, reverse=True)
        assert cycles[0] > cycles[-1]

    def test_parallel_kernel_saturates(self, lib):
        kernel = wide_kernel()
        at_width = schedule(kernel.dfg, partition=64, library=lib).cycles
        beyond = schedule(kernel.dfg, partition=512, library=lib).cycles
        assert at_width == beyond

    def test_serial_chain_does_not_benefit_from_partitioning(self, lib):
        kernel = chain_kernel()
        narrow = schedule(kernel.dfg, partition=1, library=lib).cycles
        wide = schedule(kernel.dfg, partition=64, library=lib).cycles
        # Only the independent input loads can overlap; the add chain cannot.
        assert wide >= narrow - 4
        assert wide >= 16  # 16 dependent 1-cycle adds at minimum

    def test_cycles_lower_bounded_by_critical_path(self, lib):
        kernel = chain_kernel(8)
        result = schedule(kernel.dfg, partition=1024, library=lib)
        # load(2) + 8 adds + store(2) = at least 12 cycles.
        assert result.cycles >= 12

    def test_bad_partition_rejected(self, lib):
        kernel = wide_kernel(2)
        with pytest.raises(ValueError):
            schedule(kernel.dfg, partition=0, library=lib)


class TestOpAccounting:
    def test_op_counts_cover_all_nodes(self, lib):
        kernel = wide_kernel(8)
        result = schedule(kernel.dfg, partition=4, library=lib)
        assert result.total_ops == len(kernel.dfg)
        assert result.op_counts["add"] == 8

    def test_inputs_counted_as_loads(self, lib):
        kernel = wide_kernel(8)
        result = schedule(kernel.dfg, partition=4, library=lib)
        # 8 array elements + 1 const.
        assert result.op_counts["load"] == 9
        assert result.op_counts["store"] == 8

    def test_provisioned_units_capped_by_demand(self, lib):
        kernel = wide_kernel(8)
        result = schedule(kernel.dfg, partition=1024, library=lib)
        assert result.provisioned[OpClass.ALU] == 8
        assert result.provisioned[OpClass.MEMORY] == 17

    def test_provisioned_units_capped_by_partition(self, lib):
        kernel = wide_kernel(8)
        result = schedule(kernel.dfg, partition=2, library=lib)
        assert result.provisioned[OpClass.ALU] == 2

    def test_unused_classes_not_provisioned(self, lib):
        kernel = wide_kernel(4)
        result = schedule(kernel.dfg, partition=2, library=lib)
        assert OpClass.DIVIDER not in result.provisioned


class TestFusion:
    def test_chain_fusion_reduces_macros(self, lib):
        kernel = chain_kernel(16)
        plain = schedule(kernel.dfg, partition=4, library=lib, fusion_window=1)
        fused = schedule(kernel.dfg, partition=4, library=lib, fusion_window=4)
        assert fused.n_macros < plain.n_macros
        assert fused.fused_away > 0
        assert fused.cycles < plain.cycles

    def test_fusion_respects_window(self):
        g = Dfg("chain")
        a = g.add_input()
        b = g.add_compute("add", [a])
        c = g.add_compute("add", [b])
        d = g.add_compute("add", [c])
        e = g.add_compute("add", [d])
        g.add_output(e)
        macros = _fuse_chains(g, window=2)
        # Chains capped at 2 members: 4 adds -> 2 macros.
        add_macros = {macros[n] for n in (b, c, d, e)}
        assert len(add_macros) == 2

    def test_fusion_only_chains_single_consumers(self):
        g = Dfg("fanout")
        a = g.add_input()
        b = g.add_compute("add", [a])
        c = g.add_compute("add", [b])
        d = g.add_compute("add", [b])  # b has two consumers
        g.add_output(c)
        g.add_output(d)
        macros = _fuse_chains(g, window=4)
        assert macros[b] == b  # cannot fuse into either consumer
        assert macros[c] == c and macros[d] == d

    def test_window_one_is_identity(self):
        g = Dfg("chain")
        a = g.add_input()
        b = g.add_compute("add", [a])
        g.add_output(b)
        macros = _fuse_chains(g, window=1)
        assert all(macros[n] == n for n in g.node_ids())

    def test_multiplies_not_fused(self, lib):
        t = Tracer("muls")
        x = t.input("x", 2.0)
        y = x * x
        z = y * y
        t.output(z)
        kernel = t.kernel()
        result = schedule(kernel.dfg, partition=4, library=lib, fusion_window=8)
        assert result.fused_away == 0


class TestLatencyExtra:
    def test_deep_pipelining_increases_cycles(self, lib):
        kernel = chain_kernel(8)
        base = schedule(kernel.dfg, partition=4, library=lib, latency_extra=0)
        deep = schedule(kernel.dfg, partition=4, library=lib, latency_extra=3)
        assert deep.cycles > base.cycles

    def test_all_kernels_schedule(self, lib, all_kernels):
        for name, kernel in all_kernels.items():
            result = schedule(kernel.dfg, partition=8, library=lib)
            assert result.cycles > 0, name
            assert result.total_ops == len(kernel.dfg), name
