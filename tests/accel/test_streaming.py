"""Tests for the streaming (pipelined) evaluation mode."""

import pytest

from repro.accel.design import DesignPoint
from repro.accel.power import evaluate_design
from repro.accel.resources import OpClass
from repro.accel.streaming import evaluate_streaming, initiation_interval
from repro.workloads import gmm, trd


@pytest.fixture(scope="module")
def kernel():
    return gmm.build(n=4)


class TestInitiationInterval:
    def test_ii_at_most_fill_latency(self, kernel):
        report = evaluate_streaming(kernel, DesignPoint(node_nm=45, partition=4))
        assert report.initiation_interval <= report.fill_latency_cycles

    def test_ii_shrinks_with_partitioning(self, kernel):
        narrow = evaluate_streaming(kernel, DesignPoint(node_nm=45, partition=1))
        wide = evaluate_streaming(kernel, DesignPoint(node_nm=45, partition=64))
        assert wide.initiation_interval < narrow.initiation_interval

    def test_bottleneck_identified(self, kernel):
        report = evaluate_streaming(kernel, DesignPoint(node_nm=45, partition=4))
        assert isinstance(report.bottleneck, OpClass)

    def test_memory_bound_kernel_bottlenecks_on_memory(self):
        # Triad does almost no compute per element: memory ports dominate.
        report = evaluate_streaming(
            trd.build(n=32), DesignPoint(node_nm=45, partition=2)
        )
        assert report.bottleneck is OpClass.MEMORY


class TestSteadyState:
    def test_streaming_beats_back_to_back(self, kernel):
        design = DesignPoint(node_nm=45, partition=8)
        streaming = evaluate_streaming(kernel, design)
        single = evaluate_design(kernel, design)
        assert streaming.throughput_ops > single.throughput_ops
        assert streaming.speedup_over_latency_mode > 1.0

    def test_power_decomposition(self, kernel):
        design = DesignPoint(node_nm=45, partition=8)
        report = evaluate_streaming(kernel, design)
        dynamic = (
            report.energy_per_invocation_nj
            * 1e-9
            * report.invocations_per_second
        )
        assert report.power_w == pytest.approx(dynamic + report.leakage_power_w)

    def test_efficiency_definition(self, kernel):
        report = evaluate_streaming(kernel, DesignPoint(node_nm=45, partition=8))
        assert report.energy_efficiency == pytest.approx(
            report.throughput_ops / report.power_w
        )

    def test_newer_node_streams_faster(self, kernel):
        old = evaluate_streaming(kernel, DesignPoint(node_nm=45, partition=8))
        new = evaluate_streaming(kernel, DesignPoint(node_nm=5, partition=8))
        assert new.throughput_ops > old.throughput_ops

    def test_default_library(self, kernel):
        report = evaluate_streaming(kernel, DesignPoint(node_nm=45))
        assert report.invocations_per_second > 0
