"""Unit tests for sweeps, Pareto extraction, and gain attribution."""

import pytest

from repro.accel.attribution import CONCEPTS, attribute_gains, find_best_design
from repro.accel.design import DesignPoint
from repro.accel.sweep import (
    default_design_grid,
    pareto_points,
    sweep,
    table3_partitions,
    table3_simplifications,
)
from repro.workloads import s3d, trd

SMALL_PARTITIONS = (1, 4, 16, 64)
SMALL_SIMPLIFICATIONS = (1, 5, 9, 13)
SMALL_NODES = (45.0, 14.0, 5.0)


@pytest.fixture(scope="module")
def kernel():
    return trd.build(n=16)


@pytest.fixture(scope="module")
def small_sweep(kernel):
    grid = default_design_grid(
        nodes=SMALL_NODES,
        partitions=SMALL_PARTITIONS,
        simplifications=SMALL_SIMPLIFICATIONS,
    )
    return sweep(kernel, grid)


class TestTable3:
    def test_partition_factors(self):
        factors = table3_partitions()
        assert factors[0] == 1
        assert factors[-1] == 524288
        assert len(factors) == 20
        assert all(b == 2 * a for a, b in zip(factors, factors[1:]))

    def test_simplification_degrees(self):
        assert table3_simplifications() == tuple(range(1, 14))

    def test_default_grid_size(self):
        grid = default_design_grid(nodes=(45.0,), partitions=(1, 2),
                                   simplifications=(1, 2, 3))
        assert len(grid) == 6

    def test_full_grid_matches_paper_dimensions(self):
        grid = default_design_grid()
        assert len(grid) == 7 * 20 * 13


class TestSweep:
    def test_sweep_covers_grid(self, small_sweep):
        expected = len(SMALL_NODES) * len(SMALL_PARTITIONS) * len(SMALL_SIMPLIFICATIONS)
        assert len(small_sweep) == expected

    def test_best_throughput_has_high_partition(self, small_sweep):
        best = small_sweep.best_throughput()
        assert best.design.partition >= 16
        assert best.design.node_nm == 5.0

    def test_best_energy_efficiency_at_newest_node(self, small_sweep):
        best = small_sweep.best_energy_efficiency()
        assert best.design.node_nm == 5.0

    def test_runtime_power_points_shape(self, small_sweep):
        points = small_sweep.runtime_power_points()
        assert len(points) == len(small_sweep)
        for runtime, power, report in points:
            assert runtime == report.runtime_s
            assert power == report.power_w

    def test_pareto_frontier_subset_and_nondominated(self, small_sweep):
        frontier = small_sweep.pareto_frontier()
        assert 0 < len(frontier) <= len(small_sweep)
        for a in frontier:
            dominated = any(
                (b.runtime_s <= a.runtime_s and b.power_w < a.power_w)
                or (b.runtime_s < a.runtime_s and b.power_w <= a.power_w)
                for b in small_sweep
            )
            assert not dominated

    def test_schedule_cache_consistency(self, kernel):
        # A design swept alone must match the same design inside a grid.
        design = DesignPoint(node_nm=14, partition=16, simplification=5)
        alone = sweep(kernel, [design]).reports[0]
        from repro.accel.power import evaluate_design

        direct = evaluate_design(kernel, design)
        assert alone.cycles == direct.cycles
        assert alone.dynamic_energy_nj == pytest.approx(direct.dynamic_energy_nj)


class TestParetoPoints:
    def test_single_point(self):
        assert pareto_points([(1.0, 1.0, "a")]) == [(1.0, 1.0, "a")]

    def test_dominated_point_removed(self):
        points = [(1.0, 1.0, "good"), (2.0, 2.0, "bad")]
        assert [p[2] for p in pareto_points(points)] == ["good"]

    def test_tradeoff_points_kept(self):
        points = [(1.0, 5.0, "fast"), (5.0, 1.0, "frugal")]
        assert len(pareto_points(points)) == 2

    def test_ties_keep_first(self):
        points = [(1.0, 1.0, "a"), (1.0, 1.0, "b")]
        assert len(pareto_points(points)) == 1


class TestAttribution:
    @pytest.fixture(scope="class")
    def perf_attr(self):
        return attribute_gains(
            s3d.build(),
            metric="throughput",
            partitions=SMALL_PARTITIONS,
            simplifications=SMALL_SIMPLIFICATIONS,
        )

    @pytest.fixture(scope="class")
    def eff_attr(self):
        return attribute_gains(
            s3d.build(),
            metric="energy_efficiency",
            partitions=SMALL_PARTITIONS,
            simplifications=SMALL_SIMPLIFICATIONS,
        )

    def test_total_gain_substantial(self, perf_attr):
        assert perf_attr.total_gain > 10

    def test_factors_cover_concepts(self, perf_attr):
        assert set(perf_attr.factors) == set(CONCEPTS)
        assert all(f >= 1.0 for f in perf_attr.factors.values())

    def test_shares_sum_to_100(self, perf_attr):
        assert sum(perf_attr.shares.values()) == pytest.approx(100.0)

    def test_partitioning_dominates_performance(self, perf_attr):
        # Paper Fig 14a: partitioning is the primary performance source.
        shares = perf_attr.shares
        assert shares["partitioning"] == max(shares.values())
        assert shares["partitioning"] > 50

    def test_cmos_saving_dominates_efficiency(self, eff_attr):
        # Paper Fig 14b: CMOS saving dominates energy efficiency.
        shares = eff_attr.shares
        assert shares["cmos_saving"] == max(shares.values())

    def test_csr_is_low(self, perf_attr, eff_attr):
        # Paper: "for both performance and energy efficiency, CSR is low".
        assert perf_attr.csr < 0.1 * perf_attr.total_gain
        assert eff_attr.csr < 0.5 * eff_attr.total_gain

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            attribute_gains(trd.build(n=8), metric="speed")

    def test_find_best_design_returns_consistent_pair(self):
        kernel = trd.build(n=8)
        design, report = find_best_design(
            kernel, "throughput", node_nm=5.0,
            partitions=(1, 8), simplifications=(1, 5),
        )
        assert report.design == design
