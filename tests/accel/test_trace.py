"""Unit tests for the concolic tracer."""


import pytest

from repro.accel.trace import Tracer
from repro.dfg.graph import NodeKind
from repro.errors import GraphStructureError


@pytest.fixture
def t():
    return Tracer("t")


class TestValues:
    def test_arithmetic_concrete(self, t):
        a = t.input("a", 3.0)
        b = t.input("b", 4.0)
        assert (a + b).concrete == 7.0
        assert (a - b).concrete == -1.0
        assert (a * b).concrete == 12.0
        assert (a / b).concrete == pytest.approx(0.75)

    def test_reflected_operators(self, t):
        a = t.input("a", 3.0)
        assert (10 + a).concrete == 13.0
        assert (10 - a).concrete == 7.0
        assert (2 * a).concrete == 6.0
        assert (12 / a).concrete == 4.0

    def test_bitwise(self, t):
        a = t.input("a", 0b1100)
        b = t.input("b", 0b1010)
        assert (a & b).concrete == 0b1000
        assert (a | b).concrete == 0b1110
        assert (a ^ b).concrete == 0b0110
        assert (a << t.const(1)).concrete == 0b11000
        assert (a >> t.const(2)).concrete == 0b11

    def test_comparisons_traced_and_boolean(self, t):
        a = t.input("a", 1.0)
        b = t.input("b", 2.0)
        cond = a < b
        assert bool(cond) is True
        assert cond.node_id in t.dfg
        assert (a.eq(b)).concrete is False
        assert (a.ne(b)).concrete is True

    def test_unary_ops(self, t):
        a = t.input("a", -2.0)
        assert (-a).concrete == 2.0
        assert abs(a).concrete == 2.0
        assert t.sqrt(t.const(9.0)).concrete == 3.0
        assert t.sigmoid(t.const(0.0)).concrete == pytest.approx(0.5)
        assert t.tanh(t.const(0.0)).concrete == 0.0
        assert t.relu(t.const(-5.0)).concrete == 0.0

    def test_min_max(self, t):
        a, b = t.input("a", 3), t.input("b", 7)
        assert t.minimum(a, b).concrete == 3
        assert t.maximum(a, b).concrete == 7

    def test_select_follows_condition(self, t):
        a, b = t.input("a", 1.0), t.input("b", 2.0)
        cond = a < b
        assert t.select(cond, a, b).concrete == 1.0
        assert t.select(b < a, a, b).concrete == 2.0

    def test_int_float_coercion(self, t):
        a = t.input("a", 2.7)
        assert int(a) == 2
        assert float(a) == 2.7

    def test_consts_are_deduplicated(self, t):
        assert t.const(5.0).node_id == t.const(5.0).node_id
        assert t.const(5.0).node_id != t.const(6.0).node_id

    def test_cross_tracer_mixing_rejected(self, t):
        other = Tracer("other")
        a = t.input("a", 1.0)
        b = other.input("b", 2.0)
        with pytest.raises(GraphStructureError):
            _ = a + b


class TestArrays:
    def test_read_write_roundtrip(self, t):
        arr = t.array("x", [1.0, 2.0, 3.0])
        assert arr.read(1).concrete == 2.0
        arr.write(1, t.const(9.0))
        assert arr.read(1).concrete == 9.0

    def test_read_counts_accesses(self, t):
        arr = t.array("x", [1.0, 2.0])
        arr.read(0)
        arr.read(0)
        assert t.memory_reads == 2

    def test_write_counts_accesses(self, t):
        arr = t.array("x", length=2)
        arr.write(0, 1.0)
        assert t.memory_writes == 1

    def test_lazy_elements_default_zero(self, t):
        arr = t.array("x", length=3)
        assert arr.read(2).concrete == 0.0

    def test_out_of_range_read_rejected(self, t):
        arr = t.array("x", [1.0])
        with pytest.raises(IndexError):
            arr.read(5)

    def test_gather_depends_on_index(self, t):
        arr = t.array("x", [10.0, 20.0, 30.0])
        idx = t.input("i", 2)
        loaded = arr.gather(idx)
        assert loaded.concrete == 30.0
        assert idx.node_id in t.dfg.predecessors(loaded.node_id)

    def test_scatter_records_dependence(self, t):
        arr = t.array("x", length=4)
        idx = t.input("i", 1)
        arr.scatter(idx, t.const(5.0))
        assert arr.read(1).concrete == 5.0
        assert t.memory_writes == 1

    def test_needs_data_or_length(self, t):
        with pytest.raises(GraphStructureError):
            t.array("x")

    def test_initialized_indices(self, t):
        arr = t.array("x", length=4)
        arr.write(2, 1.0)
        assert arr.initialized_indices() == [2]


class TestFinish:
    def test_kernel_bundles_counts_and_outputs(self, t):
        arr = t.array("x", [1.0, 2.0])
        total = arr.read(0) + arr.read(1)
        t.output(total, "sum")
        kernel = t.kernel()
        assert kernel.memory_reads == 2
        assert kernel.output_values == (3.0,)
        assert kernel.dfg.validate()

    def test_finish_requires_outputs(self, t):
        t.input("a", 1.0)
        with pytest.raises(GraphStructureError):
            t.finish()

    def test_finish_eliminates_dead_code(self, t):
        a = t.input("a", 1.0)
        _dead = a * t.const(2.0)
        live = a + t.const(1.0)
        t.output(live)
        dfg = t.finish()
        ops = [n.op for n in dfg.nodes() if n.kind is NodeKind.COMPUTE]
        assert ops == ["add"]
