"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.cmos.bootstrap import (
    bootstrap_power_law_exponent,
    bootstrap_projection,
    density_exponent_interval,
)
from repro.errors import FitError
from repro.wall.projection import ProjectionKind


class TestPowerLawBootstrap:
    def test_interval_contains_true_exponent(self):
        rng = np.random.default_rng(1)
        x = np.logspace(-1, 2, 200)
        y = 3.0 * x**0.9 * np.exp(rng.normal(0, 0.2, size=len(x)))
        interval = bootstrap_power_law_exponent(x, y, n_resamples=200, seed=2)
        assert 0.9 in interval
        assert interval.point == pytest.approx(0.9, abs=0.1)

    def test_noiseless_interval_is_tight(self):
        x = np.logspace(-1, 2, 50)
        y = 2.0 * x**0.7
        interval = bootstrap_power_law_exponent(x, y, n_resamples=100)
        assert interval.width < 1e-6

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(3)

        def interval_for(n):
            x = np.logspace(-1, 2, n)
            y = 2.0 * x**0.7 * np.exp(rng.normal(0, 0.3, size=n))
            return bootstrap_power_law_exponent(x, y, n_resamples=200, seed=4)

        assert interval_for(400).width < interval_for(40).width

    def test_deterministic_given_seed(self):
        x = np.logspace(-1, 2, 60)
        y = 2.0 * x**0.7 * (1 + 0.1 * np.sin(x))
        a = bootstrap_power_law_exponent(x, y, n_resamples=50, seed=7)
        b = bootstrap_power_law_exponent(x, y, n_resamples=50, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_too_few_points_rejected(self):
        with pytest.raises(FitError):
            bootstrap_power_law_exponent([1.0, 2.0], [1.0, 2.0])

    def test_describe(self):
        x = np.logspace(-1, 1, 30)
        interval = bootstrap_power_law_exponent(x, 2 * x, n_resamples=50)
        assert "[" in interval.describe() and "95%" in interval.describe()


class TestDatabaseInterval:
    def test_reference_population_exponent_ci(self, reference_db):
        interval = density_exponent_interval(
            reference_db, n_resamples=100, seed=5
        )
        # With n>2000 the CI is very tight around the refit exponent, which
        # itself sits within ~1% of the paper's 0.877 (area clamping skews
        # it slightly low).
        assert interval.point in interval
        assert interval.point == pytest.approx(0.877, abs=0.02)
        assert interval.width < 0.05


class TestProjectionBootstrap:
    @pytest.fixture
    def scatter(self):
        rng = np.random.default_rng(11)
        xs = np.linspace(1, 50, 40)
        return [
            (float(x), float(2.0 * x * np.exp(rng.normal(0, 0.15))))
            for x in xs
        ]

    def test_interval_brackets_point_estimate(self, scatter):
        interval = bootstrap_projection(
            scatter, physical_limit=100.0, n_resamples=200, seed=1
        )
        assert interval.low <= interval.point * 1.2
        assert interval.high >= interval.point * 0.8

    def test_log_kind_supported(self, scatter):
        interval = bootstrap_projection(
            scatter,
            physical_limit=100.0,
            kind=ProjectionKind.LOGARITHMIC,
            n_resamples=100,
            seed=1,
        )
        assert interval.n_resamples >= 50

    def test_too_few_points_rejected(self):
        with pytest.raises(FitError):
            bootstrap_projection([(1.0, 1.0)], 10.0)
