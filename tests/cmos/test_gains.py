"""Unit tests for the physical chip-gains model (Fig 3d)."""

import pytest

from repro.cmos.gains import GainsConfig, GainsModel


@pytest.fixture(scope="module")
def model():
    return GainsModel()


class TestEvaluateBasics:
    def test_area_or_transistors_required(self, model):
        with pytest.raises(ValueError):
            model.evaluate(45, 1000)

    def test_transistors_derive_area(self, model):
        gains = model.evaluate(45, 1000, transistors=1e8)
        assert gains.area_mm2 > 0
        assert gains.potential_transistors == pytest.approx(1e8)

    def test_area_derives_transistors(self, model):
        gains = model.evaluate(45, 1000, area_mm2=100)
        assert gains.potential_transistors > 0

    def test_rejects_bad_frequency(self, model):
        with pytest.raises(ValueError):
            model.evaluate(45, -5, area_mm2=100)

    def test_rejects_bad_tdp(self, model):
        with pytest.raises(ValueError):
            model.evaluate(45, 1000, area_mm2=100, tdp_w=0)

    def test_uncapped_fully_active(self, model):
        gains = model.evaluate(45, 1000, area_mm2=100)
        assert gains.active_fraction == pytest.approx(1.0)
        assert not gains.tdp_limited

    def test_generous_tdp_not_limited(self, model):
        gains = model.evaluate(45, 1000, area_mm2=25, tdp_w=10_000)
        assert not gains.tdp_limited
        assert gains.active_fraction == pytest.approx(1.0)

    def test_tight_tdp_limits(self, model):
        gains = model.evaluate(5, 1000, area_mm2=800, tdp_w=50)
        assert gains.tdp_limited
        assert gains.active_fraction < 0.2

    def test_power_never_exceeds_tdp_when_limited(self, model):
        gains = model.evaluate(5, 1000, area_mm2=800, tdp_w=200)
        assert gains.tdp_limited
        assert gains.power_w <= 200 * 1.001


class TestMetrics:
    def test_throughput_definition(self, model):
        gains = model.evaluate(45, 2000, area_mm2=100)
        assert gains.throughput == pytest.approx(gains.active_transistors * 2.0)

    def test_energy_efficiency_definition(self, model):
        gains = model.evaluate(45, 1000, area_mm2=100)
        assert gains.energy_efficiency == pytest.approx(
            gains.throughput / gains.power_w
        )

    def test_throughput_per_area(self, model):
        gains = model.evaluate(45, 1000, area_mm2=100)
        assert gains.throughput_per_area == pytest.approx(gains.throughput / 100)

    def test_metric_lookup(self, model):
        gains = model.evaluate(45, 1000, area_mm2=100)
        assert gains.metric("throughput") == gains.throughput
        assert gains.metric("energy_efficiency") == gains.energy_efficiency
        assert gains.metric("throughput_per_area") == gains.throughput_per_area

    def test_metric_lookup_unknown(self, model):
        gains = model.evaluate(45, 1000, area_mm2=100)
        with pytest.raises(ValueError):
            gains.metric("speedup")


class TestFig3dShapes:
    """The qualitative claims the paper makes about Fig 3d."""

    def test_uncapped_800mm2_5nm_is_about_1000x(self, model):
        base = model.evaluate(45, 1000, area_mm2=25)
        big = model.evaluate(5, 1000, area_mm2=800)
        ratio = big.throughput / base.throughput
        assert 700 < ratio < 1400

    def test_800w_envelope_cuts_throughput_by_most(self, model):
        # Paper: under an 800W envelope the ~1000x drops by ~70% to ~300x.
        base = model.evaluate(45, 1000, area_mm2=25)
        capped = model.evaluate(5, 1000, area_mm2=800, tdp_w=800)
        ratio = capped.throughput / base.throughput
        assert 150 < ratio < 500

    def test_small_chips_favor_energy_efficiency(self, model):
        base = model.evaluate(45, 1000, area_mm2=25)
        small = model.evaluate(5, 1000, area_mm2=25, tdp_w=50)
        large = model.evaluate(5, 1000, area_mm2=800, tdp_w=50)
        assert (
            small.energy_efficiency / base.energy_efficiency
            > large.energy_efficiency / base.energy_efficiency
        )

    def test_newer_node_improves_efficiency_at_fixed_size(self, model):
        old = model.evaluate(45, 1000, area_mm2=25)
        new = model.evaluate(5, 1000, area_mm2=25)
        assert new.energy_efficiency > old.energy_efficiency

    def test_under_tight_tdp_old_node_can_beat_new_large_chip(self, model):
        # Paper: high transistor count and static power of new nodes make
        # old nodes more appealing for large dies under restricted TDP.
        old = model.evaluate(45, 1000, area_mm2=800, tdp_w=100)
        new = model.evaluate(5, 1000, area_mm2=800, tdp_w=100)
        assert new.energy_efficiency < 10 * old.energy_efficiency


class TestConfigValidation:
    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            GainsConfig(ref_dynamic_density_w_mm2=-1.0)

    def test_bad_min_active_fraction_rejected(self):
        with pytest.raises(ValueError):
            GainsConfig(min_active_fraction=0.0)

    def test_min_active_fraction_floor_applies(self, model):
        # Absurdly tight TDP: throughput floored, never zero.
        gains = model.evaluate(5, 1000, area_mm2=800, tdp_w=0.001)
        assert gains.throughput > 0
